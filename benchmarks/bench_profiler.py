"""Continuous-profiler benchmark: sampler overhead + profiling surfaces.

Two questions, two gates:

1. **Does the sampler tax the hot path?**  Re-runs :mod:`bench_obs`'s
   core workloads (indexed ``find``, ``insert_one``, group-by
   ``aggregate``) with the process-global :class:`SamplingProfiler`
   running at its default 100 Hz.  CI gates ``find``/``insert`` against
   the *same* ``baseline_obs.json`` budget with a tightened 10%
   tolerance (via the gate's ``--only`` flag): a wall-clock sampler that
   visibly slows the code it samples defeats its purpose.  The
   multi-millisecond ``aggregate`` now also prices per-stage
   executionStats bookkeeping, so it is gated against its own
   profiler-attached number in ``baseline_profiler.json``.

2. **Are the profiling surfaces fast?**  Times one sampling pass over a
   dozen live threads (``sample_once``), rendering the folded stacks
   (``folded``), an ``aggregate(..., explain=True)`` per-stage report
   (``explain_pipeline``), and the store-wide ``lock_report`` — all
   gated against ``baseline_profiler.json``.

Writes ``BENCH_profiler.json`` at the repo root.  Run from the repo
root::

    PYTHONPATH=src:benchmarks python benchmarks/bench_profiler.py
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from typing import Dict, List, Optional

import bench_obs
from bench_obs import _build_collection, _timed, calibrate

from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.profiler import SamplingProfiler, start_profiler, stop_profiler

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_profiler.json")

PROFILER_HZ = 100.0
N_SAMPLED_THREADS = 12


def run_core_with_profiler(n_docs: int, iters: int) -> Dict[str, dict]:
    """bench_obs's find/insert/aggregate with the sampler at 100 Hz."""
    store, _coll = _build_collection(n_docs)
    start_profiler(hz=PROFILER_HZ)
    try:
        return bench_obs.run_benchmarks(n_docs, iters, store=store)
    finally:
        stop_profiler()
        store.close()


def run_profiling_surfaces(n_docs: int, iters: int) -> Dict[str, dict]:
    """Latency of the profiling read surfaces themselves."""
    store, coll = _build_collection(n_docs)

    # a realistic thread population for the sampling pass to walk
    stop = threading.Event()

    def parked() -> None:
        stop.wait()

    threads = [threading.Thread(target=parked, daemon=True)
               for _ in range(N_SAMPLED_THREADS)]
    for t in threads:
        t.start()
    profiler = SamplingProfiler(hz=PROFILER_HZ)

    def bench_sample_once(i: int) -> None:
        profiler.sample_once()

    def bench_folded(i: int) -> None:
        profiler.folded(limit=50)

    pipeline = [
        {"$match": {"nelements": {"$lte": 5}}},
        {"$group": {"_id": "$nelements",
                    "mean_gap": {"$avg": "$band_gap"},
                    "n": {"$sum": 1}}},
        {"$sort": {"mean_gap": 1}},
    ]

    def bench_explain_pipeline(i: int) -> None:
        coll.aggregate(pipeline, explain=True)

    def bench_lock_report(i: int) -> None:
        store.lock_report(limit=10)

    try:
        results = {
            "sample_once": _timed(bench_sample_once,
                                  max(iters // 3, 50), batch=10, repeats=5),
            "folded": _timed(bench_folded,
                             max(iters // 3, 50), batch=10, repeats=5),
            "explain_pipeline": _timed(bench_explain_pipeline,
                                       max(iters // 10, 10)),
            "lock_report": _timed(bench_lock_report,
                                  max(iters // 3, 50), batch=10, repeats=5),
        }
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=2.0)
        store.close()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the results JSON")
    parser.add_argument("--n-docs", type=int, default=bench_obs.N_DOCS)
    parser.add_argument("--iters", type=int, default=bench_obs.ITERS)
    args = parser.parse_args(argv)

    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        calibration_ms = calibrate()
        benchmarks = run_core_with_profiler(args.n_docs, args.iters)
        benchmarks.update(run_profiling_surfaces(args.n_docs, args.iters))
    finally:
        set_registry(previous)
    doc = {
        "meta": {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "n_docs": args.n_docs,
            "iters": args.iters,
            "profiler_hz": PROFILER_HZ,
            "n_sampled_threads": N_SAMPLED_THREADS,
            "calibration_ms": calibration_ms,
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, stats in benchmarks.items():
        print(f"{name:18s} p50 {stats['p50_ms']:8.4f} ms   "
              f"p95 {stats['p95_ms']:8.4f} ms   "
              f"p99 {stats['p99_ms']:8.4f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
