"""Query-planner benchmark: plan-cache warmup and covered-query reads.

Measures p50/p95/p99 wall latency of the planner's three headline paths
over a synthetic materials-shaped collection with a compound index:

* ``filter_sort_warm`` — a repeated two-field filter + sort whose plan is
  served from the plan cache (the steady-state production case).
* ``filter_sort_cold`` — the same query with the plan cache invalidated
  before every call, so candidate enumeration and the trial race run
  each time (planning overhead upper bound).
* ``covered`` — a projection answered entirely from index keys, versus
  ``fetched`` — the same rows with document fetches.
* ``collscan_forced`` — the same filter+sort hinted to ``$natural``; the
  acceptance floor is warm-cache p95 at least 2x faster than this.

Writes ``BENCH_planner.json`` at the repo root; CI compares it against
``benchmarks/baseline_planner.json`` with the shared calibration-scaled
20% p95 gate (:mod:`check_bench_regression`).

Run directly (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_planner.py
    PYTHONPATH=src python benchmarks/bench_planner.py --n-docs 50000
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

from bench_obs import _timed, calibrate
from repro.docstore import DocumentStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_planner.json")

N_DOCS = 5000
ITERS = 200
N_FORMULAS = 50


def _build_collection(n_docs: int):
    store = DocumentStore()
    coll = store["bench"]["materials"]
    coll.create_index([("formula", 1), ("e_above_hull", -1)])
    coll.insert_many([
        {
            "formula": f"F{i % N_FORMULAS}",
            "e_above_hull": (i * 37 % 1000) / 1000.0,
            "band_gap": (i * 13 % 80) / 10.0,
            "nsites": i % 11,
            # Materials documents are dominated by the structure payload;
            # a covered read's win is skipping this fetch+copy entirely.
            "structure": {
                "lattice": [[float(i % 7), 0.0, 0.0],
                            [0.0, float(i % 5), 0.0],
                            [0.0, 0.0, float(i % 3)]],
                "sites": [
                    {"species": f"El{j}", "xyz": [j * 0.1, j * 0.2, j * 0.3]}
                    for j in range(8)
                ],
            },
        }
        for i in range(n_docs)
    ])
    return store, coll


def run_benchmarks(n_docs: int = N_DOCS,
                   iters: int = ITERS) -> Dict[str, dict]:
    store, coll = _build_collection(n_docs)
    query_of = lambda i: {  # noqa: E731 - tiny per-iteration helper
        "formula": f"F{i % N_FORMULAS}",
        "e_above_hull": {"$lt": 0.5},
    }
    sort = [("e_above_hull", -1)]

    def bench_warm(i: int) -> None:
        coll.find(query_of(i)).sort(sort).to_list()

    def bench_cold(i: int) -> None:
        coll._planner.invalidate()
        coll.find(query_of(i)).sort(sort).to_list()

    def bench_covered(i: int) -> None:
        coll.find({"formula": f"F{i % N_FORMULAS}"},
                  {"formula": 1, "e_above_hull": 1, "_id": 0}).to_list()

    def bench_fetched(i: int) -> None:
        coll.find({"formula": f"F{i % N_FORMULAS}"},
                  {"formula": 1, "e_above_hull": 1}).to_list()

    def bench_collscan(i: int) -> None:
        coll.find(query_of(i), hint="$natural").sort(sort).to_list()

    coll.find(query_of(0)).sort(sort).to_list()  # prime the plan cache
    return {
        "filter_sort_warm": _timed(bench_warm, iters, batch=5, repeats=5),
        "filter_sort_cold": _timed(bench_cold, iters, batch=5, repeats=5),
        "covered": _timed(bench_covered, iters, batch=5, repeats=5),
        "fetched": _timed(bench_fetched, iters, batch=5, repeats=5),
        "collscan_forced": _timed(bench_collscan, max(iters // 4, 25)),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the results JSON")
    parser.add_argument("--n-docs", type=int, default=N_DOCS)
    parser.add_argument("--iters", type=int, default=ITERS)
    args = parser.parse_args(argv)

    calibration_ms = calibrate()
    benchmarks = run_benchmarks(args.n_docs, args.iters)
    doc = {
        "meta": {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "n_docs": args.n_docs,
            "iters": args.iters,
            "calibration_ms": calibration_ms,
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, stats in benchmarks.items():
        print(f"{name:18s} p50 {stats['p50_ms']:8.4f} ms   "
              f"p95 {stats['p95_ms']:8.4f} ms   "
              f"p99 {stats['p99_ms']:8.4f} ms")
    speedup = (benchmarks["collscan_forced"]["p95_ms"]
               / benchmarks["filter_sort_warm"]["p95_ms"])
    print(f"warm-cache IXSCAN vs forced COLLSCAN p95: {speedup:.1f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
