"""Figure 4: the Materials API URI — served end to end.

The paper's example is ``/rest/v1/materials/Fe2O3/vasp/energy``.  Our
synthetic population is seeded, so the bench first asks the store which
formulas exist, serves the canonical URI shape for one of them over real
HTTP, and measures the full round trip plus the in-process routing cost.
"""

import json
from urllib.request import urlopen

import pytest

from _pipeline import emit
from repro.api import MaterialsAPIServer


def test_fig4_materials_api(population, benchmark):
    api = population["api"]
    qe = population["query_engine"]
    formula = qe.query({}, properties=["reduced_formula"], limit=1)[0][
        "reduced_formula"
    ]
    uri = f"/rest/v1/materials/{formula}/vasp/energy"

    # In-process routing latency (what pytest-benchmark measures).
    envelope = benchmark(api.handle, uri)
    assert envelope["valid_response"]
    energy = envelope["response"][0]["energy"]

    # And once over a genuine HTTP socket.
    with MaterialsAPIServer(api) as server:
        with urlopen(server.base_url + uri, timeout=10) as response:
            status = response.status
            http_envelope = json.loads(response.read().decode())

    lines = [
        "the paper's URI anatomy, served:",
        f"  URI        : {uri}",
        "  preamble   : /rest      version: v1      application: materials",
        f"  identifier : {formula}  datatype: vasp  property: energy",
        f"  HTTP status: {status}",
        f"  energy     : {energy:.4f} eV",
        f"  material_id: {envelope['response'][0]['material_id']}",
    ]
    emit("fig4_materials_api", "\n".join(lines))

    assert status == 200
    assert http_envelope["valid_response"]
    assert http_envelope["response"][0]["energy"] == pytest.approx(energy)
    assert energy < 0
