"""Sharded-cluster benchmark: targeted vs scatter reads, migration cost.

Measures the subsystem the cluster exists for — §IV-D2's scale-out story —
over a 50k-document, 4-shard cluster with hashed sharding on
``material_id``:

* ``targeted_read`` — a shard-key point lookup, verified ``SINGLE_SHARD``
  via ``explain()`` before timing.  The acceptance floor is >= 3x the
  scatter-gather read throughput on 4 shards.
* ``scatter_read`` — the same point lookup expressed against a non-key
  copy of the field, so every shard must answer.
* ``targeted_sorted_page`` — a shard-key-constrained page with sort+limit
  (the Materials API's detail-page shape) going through the streaming
  k-way merge.
* ``insert_routed`` — routed single-document inserts (chunk lookup + one
  replica-set majority write).
* ``write_during_migration`` — routed insert latency while ``move_chunk``
  is migrating chunks under the writers' feet (copy -> delta drain ->
  locked commit), the migration-under-load half of the story.  The run's
  ``move_chunk_ms`` wall times land in the meta block.

Writes ``BENCH_cluster.json`` at the repo root; CI gates it against
``benchmarks/baseline_cluster.json`` with the shared calibration-scaled
p95 tolerance (:mod:`check_bench_regression`).

Run directly (from the repo root)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_cluster.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_cluster.py --n-docs 5000
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from typing import Dict

from bench_obs import _timed, calibrate
from repro.docstore import ShardedCluster

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_cluster.json")

N_DOCS = 50_000
N_SHARDS = 4
ITERS = 150


def _build_cluster(n_docs: int, n_shards: int = N_SHARDS):
    """4-shard cluster, 50k materials-shaped docs, indexed both ways."""
    cluster = ShardedCluster(n_replicas=3, split_threshold=n_docs)
    for i in range(n_shards):
        cluster.add_shard(f"s{i}")
    coll = cluster.shard_collection("mp.materials", "material_id")
    coll.create_index("material_id")
    coll.create_index("mid_copy")
    coll.create_index("formula")
    coll.insert_many([
        {
            "material_id": f"mp-{i}",
            # Same value, not the shard key: queries on it cannot be
            # routed and must scatter to every shard.
            "mid_copy": f"mp-{i}",
            "formula": f"F{i % 500}",
            "nelements": i % 7,
        }
        for i in range(n_docs)
    ])
    return cluster, coll


def run_benchmarks(n_docs: int = N_DOCS,
                   iters: int = ITERS) -> Dict[str, dict]:
    cluster, coll = _build_cluster(n_docs)
    meta: Dict[str, object] = {}

    # Routing sanity before timing anything: the targeted query must be
    # SINGLE_SHARD and the scatter probe must touch every shard.
    plan = coll.explain({"material_id": "mp-1"})
    assert plan["mode"] == "SINGLE_SHARD", plan
    scatter_plan = coll.explain({"mid_copy": "mp-1"})
    assert scatter_plan["mode"] == "SCATTER_GATHER", scatter_plan
    assert len(scatter_plan["shards"]) == N_SHARDS
    meta["single_shard_verified"] = True

    def bench_targeted(i: int) -> None:
        coll.find_one({"material_id": f"mp-{(i * 37) % n_docs}"})

    def bench_scatter(i: int) -> None:
        coll.find_one({"mid_copy": f"mp-{(i * 37) % n_docs}"})

    def bench_sorted_page(i: int) -> None:
        coll.find({"formula": f"F{i % 500}"},
                  sort=[("material_id", 1)], limit=10)

    insert_seq = [n_docs]

    def bench_insert(i: int) -> None:
        insert_seq[0] += 1
        coll.insert_one({"material_id": f"mp-{insert_seq[0]}",
                         "mid_copy": f"mp-{insert_seq[0]}",
                         "formula": "Fx", "nelements": 0})

    results = {
        "targeted_read": _timed(bench_targeted, iters, batch=10),
        "scatter_read": _timed(bench_scatter, max(iters // 3, 30), batch=4),
        "targeted_sorted_page": _timed(bench_sorted_page,
                                       max(iters // 3, 30), batch=4),
        "insert_routed": _timed(bench_insert, max(iters // 3, 30), batch=10),
    }

    # Ratio over p50: a shared runner's scheduler preemptions inflate the
    # short targeted batches far more than the long scatter batches, which
    # would understate the routing win at p95.
    speedup = (results["scatter_read"]["p50_ms"]
               / results["targeted_read"]["p50_ms"])
    meta["targeted_speedup_x"] = round(speedup, 2)

    # Migration under load: writers keep inserting while chunks move.
    stop = threading.Event()
    write_samples = []
    written = [0, 0]

    def writer(k: int) -> None:
        # Each writer owns a disjoint id range so the final count audit
        # needs no cross-thread counter.  Paced at ~500 inserts/s per
        # writer: an unthrottled tight loop on a single-core runner turns
        # the shared replica-set lock into a convoy that starves the
        # migration thread for minutes.
        base = 10 * n_docs * (k + 1)
        while not stop.is_set():
            doc_id = base + written[k]
            t0 = time.perf_counter()
            coll.insert_one({"material_id": f"mp-{doc_id}",
                             "mid_copy": f"mp-{doc_id}",
                             "formula": "Fm", "nelements": 1})
            write_samples.append((time.perf_counter() - t0) * 1e3)
            written[k] += 1
            stop.wait(0.002)

    threads = [threading.Thread(target=writer, args=(k,)) for k in range(2)]
    for t in threads:
        t.start()
    move_times = []
    try:
        for chunk in list(cluster.config.chunks("mp.materials"))[:3]:
            dest = f"s{(int(chunk.shard[1:]) + 1) % N_SHARDS}"
            t0 = time.perf_counter()
            cluster.move_chunk("mp.materials", chunk.chunk_id, dest)
            move_times.append((time.perf_counter() - t0) * 1e3)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=60)

    write_samples.sort()
    if write_samples:
        results["write_during_migration"] = {
            "p50_ms": write_samples[len(write_samples) // 2],
            "p95_ms": write_samples[int(len(write_samples) * 0.95) - 1],
            "p99_ms": write_samples[int(len(write_samples) * 0.99) - 1],
            "mean_ms": sum(write_samples) / len(write_samples),
            "iters": len(write_samples),
            "batch": 1,
            "repeats": 1,
        }
    meta["move_chunk_ms"] = [round(t, 2) for t in move_times]
    meta["migrated_docs"] = cluster.migrated_docs
    meta["stale_epoch_retries"] = cluster.stale_retries

    # Post-migration integrity: a migration that loses or duplicates
    # documents would make every latency number above meaningless.
    expected = insert_seq[0] + sum(written)
    assert coll.count_documents({}) == expected, (
        coll.count_documents({}), expected)

    cluster.stop()
    return {"benchmarks": results, "meta": meta}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-docs", type=int, default=N_DOCS)
    parser.add_argument("--iters", type=int, default=ITERS)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args()

    calibration = calibrate()
    run = run_benchmarks(n_docs=args.n_docs, iters=args.iters)
    payload = {
        "benchmarks": run["benchmarks"],
        "meta": {
            "calibration_ms": calibration,
            "n_docs": args.n_docs,
            "n_shards": N_SHARDS,
            "iters": args.iters,
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **run["meta"],
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    speedup = payload["meta"]["targeted_speedup_x"]
    print(f"wrote {args.out}")
    for name, stats in sorted(run["benchmarks"].items()):
        print(f"  {name:>24s}  p50={stats['p50_ms']:8.3f}ms  "
              f"p95={stats['p95_ms']:8.3f}ms")
    print(f"  targeted vs scatter speedup: {speedup}x "
          f"(floor 3x on {N_SHARDS} shards)")
    if speedup < 3.0:
        print("::warning::targeted read speedup below the 3x acceptance "
              "floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
