"""Continuous observability benchmark: core datastore op latencies.

Measures p50/p95/p99 wall latency of the three operations the fleet
health monitor watches hardest — indexed ``find``, ``insert_one``, and a
group-by ``aggregate`` — over a synthetic materials-shaped collection,
and writes ``BENCH_obs.json`` at the repo root.  CI re-runs this on every
push and fails the build when p95 regresses more than the tolerance in
:mod:`check_bench_regression` against the committed baseline
(``benchmarks/baseline_obs.json``).

Raw milliseconds are meaningless across runner generations, so the
harness also times a fixed pure-Python *calibration* workload.  The
regression gate scales the baseline by the calibration ratio before
comparing — a machine that is 2x slower on the calibration loop is
allowed 2x slower benchmark numbers.

Run directly (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Callable, Dict, List, Optional

from repro.docstore import DocumentStore
from repro.obs import percentile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_obs.json")

N_DOCS = 2000
ITERS = 300


def calibrate(rounds: int = 5) -> float:
    """Milliseconds for a fixed pure-Python workload (machine-speed
    yardstick; the gate normalizes by this)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc += i * i % 7
        data = [(i * 2654435761) % 1000 for i in range(20_000)]
        data.sort()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def _timed(fn: Callable[[int], None], iters: int, batch: int = 1,
           repeats: int = 3,
           setup: Optional[Callable[[], None]] = None) -> Dict[str, float]:
    """Latency stats for ``fn``: ``iters`` samples of ``batch`` calls each,
    best of ``repeats`` full passes.

    Batching lifts sub-100us operations above timer/scheduler noise;
    taking the *minimum* p95 across passes discards one-off interference
    spikes (a genuine code regression raises every pass, so it still
    raises the minimum); ``setup`` runs before each pass so benchmarks
    that mutate state start every pass from the same place; and the
    cyclic GC is paused during timing so collection pauses land between
    samples, not inside them.
    """
    passes: List[Dict[str, float]] = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        counter = 0
        samples: List[float] = []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(iters):
                t0 = time.perf_counter()
                for _ in range(batch):
                    fn(counter)
                    counter += 1
                samples.append((time.perf_counter() - t0) * 1e3 / batch)
        finally:
            if gc_was_enabled:
                gc.enable()
        passes.append({
            "p50_ms": percentile(samples, 50),
            "p95_ms": percentile(samples, 95),
            "p99_ms": percentile(samples, 99),
            "mean_ms": sum(samples) / len(samples),
        })
    best = min(passes, key=lambda s: s["p95_ms"])
    best["iters"] = iters
    best["batch"] = batch
    best["repeats"] = repeats
    return best


def _build_collection(n_docs: int):
    store = DocumentStore()
    coll = store["bench"]["materials"]
    coll.create_index("material_id", unique=True)
    coll.create_index("nelements")
    coll.insert_many([
        {
            "material_id": f"mp-{i}",
            "nelements": i % 7 + 1,
            "formation_energy_per_atom": (i * 37 % 500) / 100.0 - 2.5,
            "band_gap": (i * 13 % 80) / 10.0,
            "elasticity": {"G_VRH": i % 200, "K_VRH": i % 350},
        }
        for i in range(n_docs)
    ])
    return store, coll


def run_benchmarks(n_docs: int = N_DOCS,
                   iters: int = ITERS,
                   store: Optional[DocumentStore] = None) -> Dict[str, dict]:
    """Core-op latency stats.  Pass a pre-built ``store`` (with the bench
    collection already populated via :func:`_build_collection`) to measure
    the same workloads under extra machinery — :mod:`bench_telemetry`
    uses this to price the telemetry warehouse's recorder overhead."""
    if store is None:
        store, coll = _build_collection(n_docs)
    else:
        coll = store["bench"]["materials"]
    db = store["bench"]

    def bench_find(i: int) -> None:
        coll.find_one({"material_id": f"mp-{i * 7 % n_docs}"})

    # Inserts land in a scratch collection recreated before each pass, so
    # the write benchmark never grows the read benchmarks' collection and
    # every pass starts from the same (indexed, empty) state.
    def reset_inserts() -> None:
        db.drop_collection("inserts")
        db["inserts"].create_index("material_id", unique=True)

    def bench_insert(i: int) -> None:
        db["inserts"].insert_one({
            "material_id": f"mp-new-{i}",
            "nelements": i % 7 + 1,
            "band_gap": 0.0,
        })

    def bench_aggregate(i: int) -> None:
        coll.aggregate([
            {"$match": {"nelements": {"$lte": 5}}},
            {"$group": {"_id": "$nelements",
                        "mean_gap": {"$avg": "$band_gap"},
                        "n": {"$sum": 1}}},
        ])

    # The micro-ops (tens of us) need heavy batching and extra passes to
    # sit still under a 20% gate; aggregate (tens of ms) does not.
    return {
        "find": _timed(bench_find, max(iters // 3, 50), batch=100,
                       repeats=5),
        "insert": _timed(bench_insert, max(iters // 3, 50), batch=100,
                         repeats=5, setup=reset_inserts),
        "aggregate": _timed(bench_aggregate, max(iters // 10, 10)),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the results JSON")
    parser.add_argument("--n-docs", type=int, default=N_DOCS)
    parser.add_argument("--iters", type=int, default=ITERS)
    args = parser.parse_args(argv)

    calibration_ms = calibrate()
    benchmarks = run_benchmarks(args.n_docs, args.iters)
    doc = {
        "meta": {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "n_docs": args.n_docs,
            "iters": args.iters,
            "calibration_ms": calibration_ms,
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, stats in benchmarks.items():
        print(f"{name:10s} p50 {stats['p50_ms']:8.4f} ms   "
              f"p95 {stats['p95_ms']:8.4f} ms   "
              f"p99 {stats['p99_ms']:8.4f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
