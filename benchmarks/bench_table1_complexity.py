"""Table I: complexity and structure of selected collections.

Paper values (nodes / max depth / mean depth):
    battery prototypes 14 / 4 / 3.6
    MPS                94 / 6 / 4.8
    materials         208 / 10 / 6.0
    tasks            1077 / 12 / 7.4

We regenerate the same table from our pipeline's documents and assert the
*shape*: the complexity ordering battery < MPS ≤ materials < tasks-with-
provenance, with depths in the same few-to-double-digit band.  Absolute node
counts differ (our reduced task schema is leaner than 2012 production MP).
"""

import pytest

from _pipeline import emit
from repro.analysis import collection_complexity


def _battery_prototype_docs(db):
    """Battery *prototype* docs: the compact screening summaries.

    Mirrors the paper's small nested document (nodes ~14, depth 4): ids +
    a performance sub-document + the voltage-step list.
    """
    return [
        {
            "framework": d.get("framework"),
            "working_ion": d.get("working_ion"),
            "performance": {
                "average_voltage": d.get("average_voltage"),
                "capacity_grav": d.get("capacity_grav"),
            },
            "steps": [
                {"voltage": s["voltage"], "capacity": s["capacity_grav"]}
                for s in d.get("steps", [])
            ],
        }
        for d in db["batteries"].find({"battery_type": "intercalation"})
    ]


def _rows(population):
    db = population["db"]
    return [
        collection_complexity(_battery_prototype_docs(db), "battery prototypes"),
        collection_complexity(db["mps"].all_documents(), "MPS"),
        collection_complexity(db["materials"].all_documents(), "materials"),
        collection_complexity(db["tasks"].all_documents(), "tasks"),
    ]


PAPER = {
    "battery prototypes": (14, 4, 3.6),
    "MPS": (94, 6, 4.8),
    "materials": (208, 10, 6.0),
    "tasks": (1077, 12, 7.4),
}


def test_table1_complexity(population, benchmark):
    rows = benchmark(_rows, population)

    lines = [
        f"{'Collection':22s} {'Nodes':>7s} {'Depth':>6s} {'MeanD':>6s}   "
        f"{'paper(N/D/MD)':>18s}",
    ]
    for row in rows:
        p = PAPER[row["collection"]]
        lines.append(
            f"{row['collection']:22s} {row['nodes']:7d} {row['depth']:6d} "
            f"{row['mean_depth']:6.1f}   {p[0]:6d}/{p[1]:2d}/{p[2]:.1f}"
        )
    emit("table1_complexity", "\n".join(lines))

    by_name = {r["collection"]: r for r in rows}
    # Shape assertions mirroring the paper's ordering.
    assert by_name["battery prototypes"]["nodes"] < by_name["MPS"]["nodes"]
    assert by_name["MPS"]["nodes"] <= by_name["materials"]["nodes"] * 1.5
    assert by_name["tasks"]["nodes"] > by_name["materials"]["nodes"]
    assert by_name["tasks"]["depth"] >= by_name["battery prototypes"]["depth"]
    assert 2 <= by_name["battery prototypes"]["depth"] <= 6
    assert by_name["tasks"]["depth"] >= 4
