"""Figure 2: one datastore serving all four architectural roles at once.

The architecture figure's claim is qualitative — "all these components
coordinate through the datastore, which simultaneously acts as a message
queue, analytics engine, and web back-end DB" — so the bench drives all
four roles concurrently against a single store and asserts that each makes
progress with no cross-role failures:

1. parallel computation: launcher threads claiming/finishing jobs,
2. data analytics: MapReduce aggregations over tasks,
3. data dissemination: web-style QueryEngine reads,
4. data V&V: validation sweeps.
"""

import threading

import pytest

from _pipeline import ROBUST_INCAR, emit
from repro.builders import VnVRunner
from repro.datagen import SyntheticICSD
from repro.fireworks import Rocket, Workflow, vasp_firework


def _four_role_storm(population, n_new_jobs=30, n_reads=150, n_mr=8, n_vnv=3):
    db = population["db"]
    launchpad = population["launchpad"]
    qe = population["query_engine"]

    icsd = SyntheticICSD(seed=777)
    fresh = icsd.structures(n_new_jobs)
    launchpad.add_workflow(
        Workflow([
            vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in fresh
        ])
    )

    progress = {"compute": 0, "analytics": 0, "web": 0, "vnv": 0}
    errors = []

    def compute_role():
        rocket = Rocket(launchpad, worker_name="storm-rocket")
        try:
            progress["compute"] += rocket.rapidfire()
        except Exception as exc:  # noqa: BLE001 - collected for the report
            errors.append(("compute", exc))

    def analytics_role():
        try:
            for _ in range(n_mr):
                rows = db["tasks"].map_reduce(
                    mapper=lambda d: [(d.get("formula"), 1)],
                    reducer=lambda k, vs: sum(vs),
                )
                progress["analytics"] += len(rows)
        except Exception as exc:
            errors.append(("analytics", exc))

    def web_role():
        try:
            for i in range(n_reads):
                qe.query({"band_gap": {"$gte": (i % 30) / 10.0}},
                         limit=20, user=f"web{i % 7}")
                progress["web"] += 1
        except Exception as exc:
            errors.append(("web", exc))

    def vnv_role():
        try:
            runner = VnVRunner(db)
            for _ in range(n_vnv):
                runner.run_all()
                progress["vnv"] += 1
        except Exception as exc:
            errors.append(("vnv", exc))

    threads = [
        threading.Thread(target=fn)
        for fn in (compute_role, analytics_role, web_role, vnv_role)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return progress, errors


def test_fig2_four_roles(population, benchmark):
    progress, errors = benchmark.pedantic(
        _four_role_storm, args=(population,), rounds=1, iterations=1
    )
    lines = [
        "four concurrent roles against ONE datastore:",
        f"  parallel computation : {progress['compute']} jobs executed",
        f"  data analytics       : {progress['analytics']} MapReduce rows",
        f"  data dissemination   : {progress['web']} web queries served",
        f"  data V&V             : {progress['vnv']} validation sweeps",
        f"  cross-role errors    : {len(errors)}",
    ]
    emit("fig2_four_roles", "\n".join(lines))

    assert not errors, errors
    # Some of the 30 fresh structures may be Binder-duplicates of the
    # population (correct behaviour: pointers, not launches).
    assert progress["compute"] >= 15
    assert progress["analytics"] > 0
    assert progress["web"] == 150
    assert progress["vnv"] == 3
