"""Shared pipeline used by the benchmarks: one populated Materials Project.

Builds, once per benchmark session, a scaled-down but *complete* deployment:
synthetic ICSD inputs → MPS collection → FireWorks workflows executed by a
Rocket → tasks → materials/phase diagrams/batteries/XRD/band structures →
QueryEngine + Materials API.  Scale note: the paper's store held ~30,000
materials; benches run at ~1/100 scale and reproduce shapes, not magnitudes
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.api import MaterialsAPI, QueryEngine, QueryLog
from repro.builders import (
    BandStructureBuilder,
    BatteryBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    VnVRunner,
    XRDBuilder,
)
from repro.datagen import (
    SyntheticICSD,
    elemental_references,
    generate_battery_candidates,
)
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import mps_from_structure

#: Converges for every structure (gentlest SCF settings).
ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500,
                "EDIFF": 1e-5}


def build_population(n_icsd: int = 80, seed: int = 2012) -> Dict:
    """Run the full pipeline; returns handles to every layer."""
    store = DocumentStore()
    db = store["mp"]

    # (1) Inputs: synthetic ICSD + battery candidates + elemental refs.
    icsd = SyntheticICSD(seed=seed)
    structures = icsd.structures(n_icsd)
    candidates = generate_battery_candidates("Li")
    battery_structures = []
    for pair in candidates:
        battery_structures.extend([pair["discharged"], pair["charged"]])
    all_elements = sorted(
        {el for s in structures + battery_structures for el in s.elements}
    )
    refs = elemental_references(all_elements)

    seen = set()
    unique_structures = []
    for s in structures + battery_structures + refs:
        h = s.structure_hash()
        if h not in seen:
            seen.add(h)
            unique_structures.append(s)

    mps_records = [mps_from_structure(s) for s in unique_structures]
    db["mps"].insert_many(mps_records)

    # (2) Workflows through the engine (Binder dedup is active).
    launchpad = LaunchPad(db)
    fireworks = [
        vasp_firework(
            s, mps_id=record["mps_id"], incar=dict(ROBUST_INCAR),
            walltime_s=1e9, memory_mb=1e6,
        )
        for s, record in zip(unique_structures, mps_records)
    ]
    launchpad.add_workflow(Workflow(fireworks, name="population"))
    rocket = Rocket(launchpad, worker_name="bench-rocket")
    rocket.rapidfire()

    # (3) Builders.
    MaterialsBuilder(db).run()
    PhaseDiagramBuilder(db).run()
    BatteryBuilder(db, "Li").run_intercalation()
    BandStructureBuilder(db).run()

    # (4) Dissemination stack.
    query_log = QueryLog()
    qe = QueryEngine(
        db,
        aliases={"e_hull": "e_above_hull", "gap": "band_gap"},
        query_log=query_log,
    )
    api = MaterialsAPI(qe)

    return {
        "store": store,
        "db": db,
        "launchpad": launchpad,
        "rocket": rocket,
        "query_engine": qe,
        "query_log": query_log,
        "api": api,
        "n_structures": len(unique_structures),
    }


_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Write a reproduced table/figure to results/<name>.txt and stdout."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n===== {name} =====")
    print(text)
