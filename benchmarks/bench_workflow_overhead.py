"""§III-C claim: workflow/datastore overhead is negligible vs. calculation time.

"The queries to pull down inputs and update the database with new job
statuses execute in a negligible fraction of the time to perform the
calculations."

The Rocket keeps a ledger: real seconds spent on datastore operations
(checkout + status updates) vs. the *simulated* calculation walltime those
operations managed.  The bench reports the fraction and asserts it is well
under 1%, and also reports the raw per-launch datastore cost.
"""

import pytest

from _pipeline import ROBUST_INCAR, emit
from repro.datagen import SyntheticICSD
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.docstore import DocumentStore


def _run_batch(n_jobs=60):
    db = DocumentStore()["overhead"]
    launchpad = LaunchPad(db)
    structures = SyntheticICSD(seed=31).structures(n_jobs)
    launchpad.add_workflow(
        Workflow([
            vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in structures
        ])
    )
    rocket = Rocket(launchpad)
    rocket.rapidfire()
    return rocket


def test_workflow_overhead(benchmark):
    rocket = benchmark.pedantic(_run_batch, rounds=1, iterations=1)
    fraction = rocket.overhead_fraction()
    per_launch_ms = rocket.db_overhead_s / rocket.launches * 1e3
    lines = [
        f"launches                 : {rocket.launches}",
        f"datastore time (real)    : {rocket.db_overhead_s * 1e3:.1f} ms total, "
        f"{per_launch_ms:.2f} ms/launch",
        f"calculation time (sim)   : {rocket.simulated_calc_s / 3600:.1f} "
        f"CPU-hours equivalent",
        f"overhead fraction        : {fraction:.2e}  "
        f"(paper: 'negligible fraction')",
    ]
    emit("workflow_overhead", "\n".join(lines))
    assert rocket.launches >= 60
    assert fraction < 0.01
    assert per_launch_ms < 100
