"""Session-scoped fixtures for the benchmark suite."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from _pipeline import build_population


@pytest.fixture(scope="session")
def population():
    """One fully-populated Materials Project deployment per session."""
    return build_population(n_icsd=80)
