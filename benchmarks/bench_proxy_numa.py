"""§IV-A2: worker-node proxying and NUMA memory placement.

Part 1 — the proxy hop: compute nodes cannot reach the datastore directly
(enforced by the network policy), so their traffic crosses the proxy.  The
bench measures per-request latency direct vs. through the proxy over real
sockets, and confirms the policy denies the direct route.

Part 2 — NUMA: the paper reports that interleaving the database's memory
with ``numactl`` has "minimal impact".  The model compares a memory-bound
scan of a multi-domain working set under first-touch vs. interleave and
reports the interleave penalty relative to the all-local ideal.
"""

import time

import pytest

from _pipeline import emit
from repro.docstore import DatastoreProxy, DatastoreServer, DocumentStore
from repro.errors import NetworkPolicyError
from repro.hpc import NetworkPolicy, NUMAModel


def _measure(client, n=300):
    t0 = time.perf_counter()
    for _ in range(n):
        client.ping()
    return (time.perf_counter() - t0) / n * 1e3  # ms/request


def test_proxy_and_numa(benchmark):
    policy = NetworkPolicy()
    policy.register("c001", "compute")
    policy.register("mid00", "midrange")
    policy.register("db.lbl.gov", "external")

    store = DocumentStore()
    store["mp"]["tasks"].insert_many([{"i": i} for i in range(100)])
    lines = []
    with DatastoreServer(store) as server:
        # The policy denies the direct route from a compute node.
        denied = False
        try:
            policy.connect("c001", "db.lbl.gov", server.address)
        except NetworkPolicyError:
            denied = True
        assert denied

        direct = policy.connect("mid00", "db.lbl.gov", server.address)
        direct_ms = _measure(direct)
        direct.close()

        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            proxied_client = policy.connect("c001", "mid00", proxy.address)
            proxied_ms = benchmark.pedantic(
                _measure, args=(proxied_client,), rounds=1, iterations=1
            )
            proxied_client.close()
            forwarded = proxy.stats()["requests_forwarded"]

    lines += [
        "proxy hop (real sockets):",
        f"  compute -> DB direct : DENIED by network policy",
        f"  midrange -> DB       : {direct_ms:.3f} ms/request",
        f"  compute -> proxy -> DB: {proxied_ms:.3f} ms/request "
        f"({proxied_ms / direct_ms:.2f}x, {forwarded} requests forwarded)",
    ]

    numa = NUMAModel(n_domains=4, domain_capacity_mb=8192,
                     local_latency_ns=90, remote_latency_ns=150)
    working_set = 20000.0  # MB: "most of the system's memory"
    ft = numa.scan_time_s(working_set, "first_touch")
    il = numa.scan_time_s(working_set, "interleave")
    penalty = numa.interleave_penalty(working_set)
    lines += [
        "",
        "NUMA placement (4 domains, 20 GB working set, latency model):",
        f"  first-touch scan : {ft:.2f} s",
        f"  interleaved scan : {il:.2f} s  ({il / ft:.2f}x of first-touch)",
        f"  interleave penalty vs all-local ideal: {penalty:.2f}x "
        f"(paper: 'minimal impact')",
    ]
    emit("proxy_numa", "\n".join(lines))

    # Same order of magnitude as the direct path (loopback sockets are
    # noisy enough that a strict "slower than direct" bound flakes).
    assert proxied_ms < direct_ms * 10
    assert penalty <= 1.6
    assert abs(il / ft - 1.0) < 0.25  # interleave ~ first-touch for big sets
