"""§IV-B2: "Hadoop can be several times faster than the built-in MongoDB
MapReduce framework" — plus the staging trade-off.

One analytics job (per-chemical-system energy statistics over the tasks
collection, exactly the V&V/builder shape), three data paths:

* LocalExecutor — the single-threaded Mongo-JS analog;
* ParallelExecutor (4 process workers) — the Hadoop analog; on a
  single-core host the honest figure is the critical-path (simulated
  cluster) time, which the executor reports alongside the real wall time;
* StagedStore + ParallelExecutor — data pre-staged to partitioned files
  (the HDFS analog): pay the staging once, avoid re-querying thereafter.
"""

import math

import pytest

from _pipeline import emit
from repro.mapreduce import (
    LocalExecutor,
    MapReduceJob,
    ParallelExecutor,
    StagedStore,
)


# Module level: the process backend requires picklable functions.
def stats_mapper(doc):
    energy = doc.get("energy_per_atom")
    if energy is None:
        return
    # A deliberately CPU-weighted map stage (feature extraction analog).
    acc = 0.0
    for i in range(3000):
        acc += math.sin(energy + i) ** 2
    key = "-".join(sorted(doc.get("elements", []))) or "none"
    yield key, {"sum": energy, "sq": energy * energy, "n": 1, "acc": acc}


def stats_reducer(key, values):
    return {
        "sum": sum(v["sum"] for v in values),
        "sq": sum(v["sq"] for v in values),
        "n": sum(v["n"] for v in values),
        "acc": sum(v["acc"] for v in values),
    }


def test_mapreduce_engines(population, benchmark, tmp_path):
    db = population["db"]
    docs = db["tasks"].find({"state": "COMPLETED"}).to_list()
    # Replicate to a heavier load so executor differences dominate noise.
    docs = docs * 6
    job = MapReduceJob(stats_mapper, stats_reducer, combiner=stats_reducer)

    local = LocalExecutor().run(job, docs)
    parallel = ParallelExecutor(n_workers=4, backend="process").run(job, docs)
    _assert_rows_close(parallel.sorted_rows(), local.sorted_rows())

    staged = StagedStore(str(tmp_path / "hdfs"), n_partitions=4)
    staged.stage_collection(db["tasks"])
    staged_result = ParallelExecutor(n_workers=4, backend="process").run(
        job, list(staged.iter_all()) * 6
    )

    sim = parallel.counts["simulated_wall_time_s"]
    speedup = local.wall_time_s / sim
    lines = [
        f"job: per-chemsys energy stats over {len(docs)} task docs",
        f"  local single-thread (Mongo-JS analog) : "
        f"{local.wall_time_s * 1e3:8.1f} ms",
        f"  parallel 4w real wall (1-core host)   : "
        f"{parallel.wall_time_s * 1e3:8.1f} ms",
        f"  parallel 4w critical path (cluster)   : {sim * 1e3:8.1f} ms",
        f"  speedup (local / critical path)       : {speedup:8.1f}x  "
        f"(paper: 'several times faster')",
        f"  staging cost (once)                   : "
        f"{staged.staging_time_s * 1e3:8.1f} ms for {len(staged)} docs",
        f"  staged parallel critical path         : "
        f"{staged_result.counts['simulated_wall_time_s'] * 1e3:8.1f} ms",
    ]
    emit("mapreduce_engines", "\n".join(lines))

    # Benchmark the winning configuration for the timing table.
    benchmark.pedantic(
        lambda: ParallelExecutor(n_workers=4, backend="process").run(job, docs),
        rounds=1, iterations=1,
    )

    assert speedup > 2.0, "the Hadoop-analog must win by 'several times'"
    _assert_rows_close(staged_result.sorted_rows(), local.sorted_rows())


def _assert_rows_close(a, b):
    """Row equality up to float-summation-order differences."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra["_id"] == rb["_id"]
        for key in ra["value"]:
            assert ra["value"][key] == pytest.approx(rb["value"][key], rel=1e-9)
