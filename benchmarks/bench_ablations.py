"""Ablations of the design choices DESIGN.md calls out.

1. secondary indexes on vs. off — the read-heavy web workload's backbone;
2. Binder duplicate detection on vs. off — re-submission cost;
3. sharding 1 → 4 shards — the paper's named scale-out path (query routing
   should touch ~1/N of the data for shard-key lookups).
"""

import time

import pytest

from _pipeline import ROBUST_INCAR, emit
from repro.datagen import SyntheticICSD
from repro.docstore import Collection, ShardedCollection
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.docstore import DocumentStore


def _index_ablation(n_docs=3000, n_queries=150):
    docs = [
        {"formula": f"F{i % 500}", "band_gap": (i % 80) / 10.0, "i": i}
        for i in range(n_docs)
    ]
    plain = Collection("plain")
    plain.insert_many(docs)
    indexed = Collection("indexed")
    indexed.create_index("formula")
    indexed.create_index("band_gap")
    indexed.insert_many(docs)

    def run(coll):
        t0 = time.perf_counter()
        for i in range(n_queries):
            coll.find({"formula": f"F{i % 500}"}).to_list()
            coll.find({"band_gap": {"$gte": 6.0, "$lt": 6.5}}).to_list()
        return time.perf_counter() - t0

    return run(plain), run(indexed)


def _dedup_ablation(n=25):
    structures = SyntheticICSD(seed=99).structures(n)

    def run(with_binder: bool):
        db = DocumentStore()["abl"]
        launchpad = LaunchPad(db)
        for _round in range(3):  # the same batch submitted three times
            fws = []
            for s in structures:
                fw = vasp_firework(s, incar=dict(ROBUST_INCAR),
                                   walltime_s=1e9, memory_mb=1e6)
                if not with_binder:
                    fw.binder = None
                fws.append(fw)
            launchpad.add_workflow(Workflow(fws))
        rocket = Rocket(launchpad)
        launches = rocket.rapidfire()
        return launches

    return run(False), run(True)


def _sharding_ablation(n_docs=4000):
    docs = [{"mps_id": f"mps-{i}", "v": i} for i in range(n_docs)]
    results = {}
    for n_shards in (1, 2, 4):
        shards = [Collection(f"s{i}") for i in range(n_shards)]
        sc = ShardedCollection("materials", "mps_id", shards)
        sc.insert_many(docs)
        t0 = time.perf_counter()
        for i in range(400):
            sc.find({"mps_id": f"mps-{(i * 37) % n_docs}"})
        elapsed = time.perf_counter() - t0
        results[n_shards] = {
            "elapsed_s": elapsed,
            "balance": sc.balance_factor(),
            "targets_per_query": len(sc.last_targets),
        }
    return results


def _backfill_ablation():
    """Mean queue wait with and without backfill on a blocked-head mix."""
    from repro.hpc import BatchJob, BatchQueue, Cluster

    results = {}
    for backfill in (True, False):
        q = BatchQueue(Cluster.build(n_compute=2, cores_per_node=24),
                       max_queued_per_user=100, backfill=backfill)
        q.submit(BatchJob("u", cores=36, walltime_request_s=400, work=300))
        q.submit(BatchJob("u", cores=48, walltime_request_s=400, work=50))
        for _ in range(6):
            q.submit(BatchJob("u", cores=12, walltime_request_s=300, work=150))
        q.run_until_idle()
        results[backfill] = q.stats()["mean_queue_wait_s"]
    return results


def test_ablations(benchmark):
    scan_s, index_s = _index_ablation()
    dup_launches, dedup_launches = _dedup_ablation()
    backfill = _backfill_ablation()
    sharding = benchmark.pedantic(
        _sharding_ablation, rounds=1, iterations=1
    )

    lines = [
        "1) secondary indexes (150 point + 150 range queries over 3k docs):",
        f"   collection scan : {scan_s * 1e3:8.1f} ms",
        f"   indexed         : {index_s * 1e3:8.1f} ms "
        f"({scan_s / index_s:.1f}x faster)",
        "",
        "2) Binder duplicate detection (same 25-job batch submitted 3x):",
        f"   without binders : {dup_launches} launches (3x redundant work)",
        f"   with binders    : {dedup_launches} launches "
        "(idempotent resubmission)",
        "",
        "3) sharding a 4k-doc collection (400 shard-key lookups):",
    ]
    backfill_lines = [
        "",
        "4) batch-queue backfill (blocked wide head + narrow jobs):",
        f"   strict FIFO mean wait : {backfill[False]:8.1f} s",
        f"   with backfill         : {backfill[True]:8.1f} s "
        f"({backfill[False] / max(1e-9, backfill[True]):.1f}x shorter waits)",
    ]
    for n_shards, row in sharding.items():
        lines.append(
            f"   {n_shards} shard(s): {row['elapsed_s'] * 1e3:7.1f} ms, "
            f"balance {row['balance']:.2f}, "
            f"shards touched/lookup {row['targets_per_query']}"
        )
    emit("ablations", "\n".join(lines + backfill_lines))

    assert index_s < scan_s / 2
    assert dup_launches == 75 and dedup_launches == 25
    assert sharding[4]["targets_per_query"] == 1  # routed, not scattered
    assert sharding[4]["balance"] < 1.5
    assert backfill[True] < backfill[False]
