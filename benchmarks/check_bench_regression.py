"""The continuous-benchmark regression gate.

Compares a fresh ``BENCH_obs.json`` (from :mod:`bench_obs`) against the
committed baseline and exits non-zero when any benchmark's p95 regresses
by more than ``--tolerance`` (default 20%).

Both files carry a ``calibration_ms`` measurement of the same fixed
pure-Python workload; the baseline's p95 is scaled by
``current_calibration / baseline_calibration`` before the tolerance is
applied, so a slower CI runner doesn't read as a code regression (and a
faster one doesn't mask a real regression).

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/baseline_obs.json --current BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare(baseline: dict, current: dict,
            tolerance: float = 0.20,
            only: Optional[List[str]] = None) -> List[dict]:
    """Per-benchmark comparison rows; ``row["regressed"]`` marks failures.

    ``only`` restricts the gate to a subset of the baseline's benchmarks —
    used to hold one results file against two baselines (e.g. the
    telemetry run's hot-path ops against the bare-store obs budget, its
    warehouse queries against their own baseline).
    """
    base_cal = baseline["meta"]["calibration_ms"]
    cur_cal = current["meta"]["calibration_ms"]
    speed_ratio = cur_cal / base_cal if base_cal else 1.0
    rows = []
    for name, base in sorted(baseline["benchmarks"].items()):
        if only is not None and name not in only:
            continue
        cur = current["benchmarks"].get(name)
        if cur is None:
            rows.append({"name": name, "regressed": True,
                         "reason": "benchmark missing from current run"})
            continue
        allowed = base["p95_ms"] * speed_ratio * (1.0 + tolerance)
        rows.append({
            "name": name,
            "baseline_p95_ms": base["p95_ms"],
            "scaled_baseline_p95_ms": base["p95_ms"] * speed_ratio,
            "current_p95_ms": cur["p95_ms"],
            "allowed_p95_ms": allowed,
            "speed_ratio": speed_ratio,
            "regressed": cur["p95_ms"] > allowed,
        })
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "benchmarks", "baseline_obs.json"))
    parser.add_argument(
        "--current", default=os.path.join(REPO_ROOT, "BENCH_obs.json"))
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional p95 regression")
    parser.add_argument("--only", default=None,
                        help="comma-separated benchmark names to gate "
                             "(default: every benchmark in the baseline)")
    args = parser.parse_args(argv)

    only = ([n for n in args.only.split(",") if n]
            if args.only is not None else None)
    rows = compare(_load(args.baseline), _load(args.current),
                   args.tolerance, only=only)
    if not rows:
        print("no benchmarks matched --only", file=sys.stderr)
        return 1
    failed = False
    for row in rows:
        if "reason" in row:
            print(f"FAIL  {row['name']}: {row['reason']}")
            failed = True
            continue
        verdict = "FAIL" if row["regressed"] else "ok"
        print(f"{verdict:4s}  {row['name']:10s} "
              f"p95 {row['current_p95_ms']:8.4f} ms vs "
              f"allowed {row['allowed_p95_ms']:8.4f} ms "
              f"(baseline {row['baseline_p95_ms']:.4f} ms x "
              f"speed {row['speed_ratio']:.2f} x "
              f"tolerance {1 + args.tolerance:.2f})")
        failed = failed or row["regressed"]
    if failed:
        print(f"\nbenchmark regression: p95 exceeded "
              f"{args.tolerance:.0%} over the calibrated baseline",
              file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
