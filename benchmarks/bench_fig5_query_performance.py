"""Figure 5: histogram of query latencies + time-series inset.

The paper replays April–August 2012 portal traffic: "a majority of the
queries are on the order of a few hundred milliseconds.  The few outliers
are still well within the range of user expectations."  We regenerate the
artifact by replaying a synthetic week of traffic (the paper's 3,315
distinct queries) through the QueryEngine over the populated store, then
printing the latency histogram and the time-series summary.

Shape assertions: a unimodal bulk with ≥80% of queries inside a 30× band
around the median, a small (<5%) outlier tail, and outliers bounded within
interactive expectations (< 100× median).  Absolute milliseconds are
hardware-dependent and not asserted.
"""

import pytest

from _pipeline import emit
from repro.datagen import QueryWorkload


def _replay(population, n_queries=3315):
    qe = population["query_engine"]
    db = population["db"]
    formulas = db["materials"].distinct("reduced_formula")
    systems = db["materials"].distinct("chemical_system")
    elements = db["materials"].distinct("elements")
    workload = QueryWorkload(formulas, systems, elements, seed=824)
    queries = workload.generate(n_queries)
    for q in queries:
        qe.query(
            q.query,
            collection=q.collection,
            sort=list(q.sort) if q.sort else None,
            limit=q.limit,
            user=q.user,
        )
    return queries


def test_fig5_query_performance(population, benchmark):
    population["query_log"].clear()
    queries = benchmark.pedantic(
        _replay, args=(population,), rounds=1, iterations=1
    )
    log = population["query_log"]
    summary = log.summary()
    hist = log.histogram()

    lines = [f"replayed {summary['queries']} queries "
             f"({len(queries)} generated, paper: 3,315/week)",
             f"records returned: {summary['records_returned']} "
             f"(paper: 12,951,099 at ~100x scale)",
             "",
             "latency histogram:"]
    total = summary["queries"]
    for label, count in hist:
        bar = "#" * int(60 * count / total)
        lines.append(f"  {label:>16s} {count:6d} {bar}")
    lines += [
        "",
        f"median {summary['median_ms']:.2f} ms   p95 {summary['p95_ms']:.2f} ms"
        f"   p99 {summary['p99_ms']:.2f} ms   max {summary['max_ms']:.2f} ms",
    ]
    series = log.time_series()
    lines.append(f"time series: {len(series)} points, "
                 f"first/last latency {series[0][1]:.2f}/{series[-1][1]:.2f} ms")
    emit("fig5_query_performance", "\n".join(lines))

    # Shape assertions.
    median = summary["median_ms"]
    assert median > 0
    in_band = sum(1 for e in log.entries if e["millis"] <= 30 * median)
    assert in_band / total >= 0.80, "bulk of queries near the median"
    outliers = sum(1 for e in log.entries if e["millis"] > 30 * median)
    assert outliers / total < 0.20, "outliers are a small minority"
    assert summary["max_ms"] < 3000, "even outliers stay interactive"
    assert summary["records_returned"] > 10_000
