"""Figure 3: the envisioned materials discovery lifecycle, a → f.

(a) ideas from data mining → (b) candidate MPS records → (c) computation
via the workflow → (d) results in a private sandbox → (e) analysis with the
open library → (f) public release.  The bench runs the whole loop and
asserts each stage's artifact exists, then reports per-stage timing.
"""

import time

import pytest

from _pipeline import ROBUST_INCAR, emit
from repro.api import SandboxManager
from repro.dft.energy import reference_energy_per_atom
from repro.fireworks import Rocket, Workflow, vasp_firework
from repro.matgen import PDEntry, PhaseDiagram, mps_from_structure


def _lifecycle(population):
    db = population["db"]
    launchpad = population["launchpad"]
    qe = population["query_engine"]
    timings = {}

    # (a) Idea via data mining: "find stable insulating Cl compounds and
    # try the Br analog".
    t0 = time.perf_counter()
    mined = qe.query(
        {"elements": "Cl", "band_gap": {"$gt": 1.0},
         "e_above_hull": {"$lte": 0.05}},
        limit=3,
    )
    timings["a_idea_mining"] = time.perf_counter() - t0
    assert mined, "mining must surface candidates"

    # (b) Candidate structures serialized as MPS records.
    t0 = time.perf_counter()
    from repro.matgen import Structure

    candidates = [
        Structure.from_dict(doc["structure"]).substitute({"Cl": "Br"})
        for doc in mined
        if doc.get("structure")
    ]
    records = [mps_from_structure(s, source="user-idea",
                                  created_by="alice") for s in candidates]
    db["mps"].insert_many(records)
    timings["b_mps_records"] = time.perf_counter() - t0

    # (c) Submission + computation.
    t0 = time.perf_counter()
    wf = Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(candidates, records)
    ], name="alice-brominides")
    launchpad.add_workflow(wf)
    Rocket(launchpad, worker_name="alice-rocket").rapidfire()
    timings["c_computation"] = time.perf_counter() - t0
    assert launchpad.workflow_complete(wf.workflow_id)

    # (d) Results land in Alice's sandbox (private).
    t0 = time.perf_counter()
    sm = SandboxManager(db)
    sandbox = sm.create_sandbox("alice", "brominides")
    new_tasks = [
        launchpad.tasks.find_one({"mps_id": r["mps_id"]}) for r in records
    ]
    for task in new_tasks:
        task.pop("_id")
        sm.submit(sandbox, "alice", "sandbox_results", task)
    timings["d_sandbox"] = time.perf_counter() - t0
    assert not sm.visible_query("bob", "sandbox_results")

    # (e) Analysis with the open library: stability of the new compounds.
    t0 = time.perf_counter()
    private = sm.visible_query("alice", "sandbox_results")
    analyzed = []
    for task in private:
        elements = sorted(task["elements"])
        refs = [PDEntry(el, reference_energy_per_atom(el)) for el in elements]
        entry = PDEntry(task["formula"], task["energy"])
        pd = PhaseDiagram(refs + [entry])
        analyzed.append((task["formula"], pd.get_e_above_hull(entry)))
    timings["e_analysis"] = time.perf_counter() - t0
    assert analyzed

    # (f) Publication to the community.
    t0 = time.perf_counter()
    published = sm.publish(sandbox, "alice", "sandbox_results")
    timings["f_publish"] = time.perf_counter() - t0
    assert published == len(private)
    assert len(sm.visible_query(None, "sandbox_results")) == published

    return timings, analyzed


def test_fig3_lifecycle(population, benchmark):
    timings, analyzed = benchmark.pedantic(
        _lifecycle, args=(population,), rounds=1, iterations=1
    )
    lines = ["discovery lifecycle a->f (per-stage wall time):"]
    for stage, seconds in timings.items():
        lines.append(f"  {stage:18s} {seconds * 1e3:9.1f} ms")
    lines.append("\nanalyzed candidates (formula, e_above_hull eV/atom):")
    for formula, e_hull in analyzed:
        lines.append(f"  {formula:14s} {e_hull:8.3f}")
    emit("fig3_lifecycle", "\n".join(lines))
    assert set(timings) == {
        "a_idea_mining", "b_mps_records", "c_computation",
        "d_sandbox", "e_analysis", "f_publish",
    }
