"""§IV-A1: batch-queue limits vs. task farming + advance reservations.

Workload: 64 VASP-sized tasks (runtimes spanning ~10x, per the paper's
"minutes to days" spread scaled down), a per-user limit of 8 queued jobs.

Strategies compared on the simulated cluster:

* naive one-job-per-task (rejected beyond the queue limit → many tasks
  simply cannot be submitted in one wave; a resubmission loop is needed);
* one-job-per-task under an advance reservation (limits suspended);
* a task farm (one queue slot for all 64 tasks, LPT-packed slots).

Reported: submission success, total makespan, and the farm's wallclock-
variation smoothing ratio.
"""

import pytest

from _pipeline import emit
from repro.errors import QueueLimitExceeded
from repro.hpc import (
    BatchQueue,
    Cluster,
    FarmTask,
    Reservation,
    TaskFarm,
)


def make_tasks(n=64):
    return [
        FarmTask(f"vasp-{i}", estimated_runtime_s=600 + (i * 971) % 5400)
        for i in range(n)
    ]


def _naive(tasks):
    queue = BatchQueue(Cluster.build(n_compute=4), max_queued_per_user=8)
    farm = TaskFarm(tasks, n_slots=4)
    submitted = rejected = 0
    for job in farm.individual_batch_jobs():
        try:
            queue.submit(job)
            submitted += 1
        except QueueLimitExceeded:
            rejected += 1
    queue.run_until_idle()
    return {"submitted": submitted, "rejected": rejected,
            "makespan": queue.stats()["makespan_s"]}


def _reserved(tasks):
    queue = BatchQueue(Cluster.build(n_compute=4), max_queued_per_user=8)
    queue.add_reservation(Reservation("mp", start=0, end=1e9, cores=96))
    farm = TaskFarm(tasks, n_slots=4)
    for job in farm.individual_batch_jobs():
        queue.submit(job)
    queue.run_until_idle()
    return {"submitted": len(tasks), "rejected": 0,
            "makespan": queue.stats()["makespan_s"]}


def _farmed(tasks):
    queue = BatchQueue(Cluster.build(n_compute=4), max_queued_per_user=8)
    farm = TaskFarm(tasks, n_slots=4, cores_per_slot=24)
    queue.submit(farm.as_batch_job())
    queue.run_until_idle()
    return {"submitted": 1, "rejected": 0,
            "makespan": queue.stats()["makespan_s"],
            "smoothing": farm.smoothing_ratio(),
            "efficiency": farm.packing_efficiency}


def test_taskfarm(benchmark):
    tasks = make_tasks()
    naive = _naive(make_tasks())
    reserved = _reserved(make_tasks())
    farmed = benchmark.pedantic(
        _farmed, args=(make_tasks(),), rounds=1, iterations=1
    )

    total_work_h = sum(t.estimated_runtime_s for t in tasks) / 3600
    lines = [
        f"workload: 64 tasks, {total_work_h:.1f} CPU-slot-hours, "
        f"queue limit 8 jobs/user",
        f"  naive 1-job-per-task : {naive['submitted']} submitted, "
        f"{naive['rejected']} REJECTED at the limit",
        f"  with reservation     : {reserved['submitted']} submitted, "
        f"makespan {reserved['makespan'] / 3600:.2f} h",
        f"  task farm (1 queue slot): all 64 inside one job, makespan "
        f"{farmed['makespan'] / 3600:.2f} h",
        f"  farm packing efficiency : {farmed['efficiency']:.2f}",
        f"  wallclock smoothing     : {farmed['smoothing']:.1f}x "
        f"(per-task spread vs slot-load spread)",
    ]
    emit("taskfarm", "\n".join(lines))

    assert naive["rejected"] > 40  # the limit bites hard
    assert farmed["submitted"] == 1
    assert farmed["efficiency"] > 0.85
    assert farmed["smoothing"] > 3.0
    # Farm makespan within 2x of the reservation ideal (both use 4 slots,
    # but the farm pays the LPT imbalance + safety factor).
    assert farmed["makespan"] < reserved["makespan"] * 2.0
