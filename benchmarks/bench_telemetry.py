"""Telemetry warehouse benchmark: recorder overhead + warehouse queries.

Two questions, two gates:

1. **Does the warehouse tax the hot path?**  Re-runs :mod:`bench_obs`'s
   core workloads (indexed ``find``, ``insert_one``, group-by
   ``aggregate``) on a store with a live :class:`TelemetryWarehouse`
   attached — metrics recorder + rollup builder ticking on a background
   interval.  CI gates ``find``/``insert`` against the *same*
   ``baseline_obs.json`` budget (20% p95) as the bare store:
   observability that slows the datastore it observes is a bug.  The
   multi-millisecond ``aggregate`` inevitably shares CPU with the
   background tick, so it is gated against its own warehouse-attached
   number in ``baseline_telemetry.json`` instead (via the gate's
   ``--only`` flag).

2. **Are warehouse analytics fast?**  Times the warehouse's own read
   surface — rollup bucket queries, filtered access-log scans (both on
   the compound-index IXSCAN path), the ``top`` aggregation, and a full
   recorder pass — also gated against ``baseline_telemetry.json``.

Writes ``BENCH_telemetry.json`` at the repo root.  Run from the repo
root::

    PYTHONPATH=src:benchmarks python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

import bench_obs
from bench_obs import _build_collection, _timed, calibrate

from repro.api.querylog import QueryLog, access_top
from repro.docstore import DocumentStore
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.warehouse import TelemetryWarehouse

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_telemetry.json")

N_ACCESS = 5000
N_METRIC_PASSES = 120
WAREHOUSE_INTERVAL_S = 0.25


def run_core_with_warehouse(n_docs: int, iters: int) -> Dict[str, dict]:
    """bench_obs's find/insert/aggregate with a live warehouse attached."""
    store, _coll = _build_collection(n_docs)
    warehouse = TelemetryWarehouse(store, registry=get_registry())
    warehouse.start(interval_s=WAREHOUSE_INTERVAL_S)
    try:
        return bench_obs.run_benchmarks(n_docs, iters, store=store)
    finally:
        warehouse.stop()
        store.stop_ttl_reaper()


def run_warehouse_queries(iters: int) -> Dict[str, dict]:
    """Latency of the warehouse's own analytics reads."""
    store = DocumentStore()
    registry = MetricsRegistry()
    warehouse = TelemetryWarehouse(store, registry=registry)

    # metrics history: a handful of series over many recording passes
    counters = [
        registry.counter(f"bench_series_{i}_total", "bench") for i in range(8)
    ]
    for tick in range(N_METRIC_PASSES):
        for i, counter in enumerate(counters):
            counter.inc(i + 1, shard=f"s{tick % 4}")
        warehouse.recorder.record_once(now=30.0 * tick)
    warehouse.rollups.process_pending()

    # access log: a realistic endpoint mix
    log: QueryLog = warehouse.access
    endpoints = ["rest/v1/materials", "rest/v1/batteries", "rest/v1/xrd",
                 "telemetry/access", "wire/find"]
    for i in range(N_ACCESS):
        log.record_access(
            endpoints[i % len(endpoints)],
            user=f"user-{i % 17}",
            status=500 if i % 41 == 0 else 200,
            duration_ms=(i * 13 % 900) / 10.0,
            nreturned=i % 25,
            response_bytes=256 + i % 4096,
            ts=1_000_000.0 + i,
        )

    def bench_rollup_query(i: int) -> None:
        warehouse.rollups.query(
            f"bench_series_{i % 8}_total", "1m",
            since=30.0 * (i % N_METRIC_PASSES),
        )

    def bench_access_query(i: int) -> None:
        log.query_access_log(
            endpoint=endpoints[i % len(endpoints)],
            after=1_000_000.0 + (i * 7 % N_ACCESS),
            limit=50,
        )

    def bench_access_top(i: int) -> None:
        access_top(log.collection, by="duration", limit=10)

    def bench_record_once(i: int) -> None:
        # every pass has fresh deltas to write: touch each counter first
        for counter in counters:
            counter.inc(1)
        warehouse.recorder.record_once(now=1e9 + i)

    results = {
        "rollup_query": _timed(bench_rollup_query,
                               max(iters // 3, 50), batch=20, repeats=5),
        "access_query": _timed(bench_access_query,
                               max(iters // 3, 50), batch=10, repeats=5),
        "access_top": _timed(bench_access_top, max(iters // 10, 10)),
        "record_once": _timed(bench_record_once,
                              max(iters // 3, 50), batch=10, repeats=5),
    }
    store.close()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the results JSON")
    parser.add_argument("--n-docs", type=int, default=bench_obs.N_DOCS)
    parser.add_argument("--iters", type=int, default=bench_obs.ITERS)
    args = parser.parse_args(argv)

    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        calibration_ms = calibrate()
        benchmarks = run_core_with_warehouse(args.n_docs, args.iters)
        benchmarks.update(run_warehouse_queries(args.iters))
    finally:
        set_registry(previous)
    doc = {
        "meta": {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "n_docs": args.n_docs,
            "iters": args.iters,
            "n_access": N_ACCESS,
            "warehouse_interval_s": WAREHOUSE_INTERVAL_S,
            "calibration_ms": calibration_ms,
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, stats in benchmarks.items():
        print(f"{name:14s} p50 {stats['p50_ms']:8.4f} ms   "
              f"p95 {stats['p95_ms']:8.4f} ms   "
              f"p99 {stats['p99_ms']:8.4f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
