"""Concurrent wire-protocol throughput benchmark.

Measures mixed read/write throughput (ops/s) and per-op p95 latency
against a live :class:`DatastoreServer` at 1, 4, and 8 client threads,
and writes ``BENCH_concurrency.json`` at the repo root.  This is the
load profile the reader-writer locks and the group-commit journal exist
for: the interesting number is how throughput *scales* as threads are
added, and the regression gate watches the p95s the same way it watches
``BENCH_obs.json`` (calibration-scaled, see :mod:`check_bench_regression`).

Run directly (from the repo root)::

    PYTHONPATH=src python benchmarks/stress_concurrent.py
    PYTHONPATH=src python benchmarks/stress_concurrent.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from typing import Dict, List

from bench_obs import calibrate  # same yardstick as the obs benchmarks

from repro.docstore import DatastoreServer, DocumentStore, RemoteClient
from repro.obs import percentile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_concurrency.json")

THREAD_COUNTS = (1, 4, 8)
OPS_PER_THREAD = 300
N_SEED_DOCS = 1000
#: Every 8th op is an insert; the rest are indexed finds — roughly the
#: read-heavy mix of a datastore serving builders and a web API.
WRITE_EVERY = 8


def _seed(store: DocumentStore) -> None:
    coll = store["bench"]["materials"]
    coll.create_index("material_id", unique=True)
    coll.create_index("nelements")
    coll.insert_many([
        {"material_id": f"mp-{i}", "nelements": i % 7 + 1,
         "band_gap": (i * 13 % 80) / 10.0}
        for i in range(N_SEED_DOCS)
    ])


def _worker(client: RemoteClient, worker_id: int, ops: int,
            latencies: List[float], start: threading.Event) -> None:
    coll = client["bench"]["materials"]
    scratch = client["bench"]["scratch"]
    start.wait()
    for i in range(ops):
        t0 = time.perf_counter()
        if i % WRITE_EVERY == WRITE_EVERY - 1:
            scratch.insert_one({"w": worker_id, "i": i})
        else:
            coll.find_one({"material_id": f"mp-{(worker_id * 131 + i) % N_SEED_DOCS}"})
        latencies.append((time.perf_counter() - t0) * 1e3)


def _run_level(port: int, n_threads: int, ops: int) -> Dict[str, float]:
    clients = [RemoteClient("127.0.0.1", port, pool_size=2)
               for _ in range(n_threads)]
    per_thread: List[List[float]] = [[] for _ in range(n_threads)]
    start = threading.Event()
    threads = [
        threading.Thread(target=_worker,
                         args=(clients[t], t, ops, per_thread[t], start))
        for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    t0 = time.perf_counter()
    start.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    for c in clients:
        c.close()
    latencies = [ms for lane in per_thread for ms in lane]
    return {
        "p50_ms": percentile(latencies, 50),
        "p95_ms": percentile(latencies, 95),
        "p99_ms": percentile(latencies, 99),
        "ops_per_s": len(latencies) / elapsed,
        "threads": n_threads,
        "ops": len(latencies),
    }


def run_benchmarks(ops_per_thread: int = OPS_PER_THREAD) -> Dict[str, dict]:
    results: Dict[str, dict] = {}
    for n in THREAD_COUNTS:
        # Fresh server per level: no cross-level cache or journal warmth.
        store = DocumentStore()
        _seed(store)
        server = DatastoreServer(store).start()
        try:
            results[f"wire_mixed_{n}t"] = _run_level(
                server.port, n, ops_per_thread)
        finally:
            server.stop()
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--ops", type=int, default=OPS_PER_THREAD,
                        help="ops per client thread at each level")
    args = parser.parse_args()

    calibration_ms = calibrate()
    benchmarks = run_benchmarks(args.ops)
    doc = {
        "meta": {
            "schema": 1,
            "suite": "concurrency",
            "calibration_ms": calibration_ms,
            "thread_counts": list(THREAD_COUNTS),
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, row in sorted(benchmarks.items()):
        print(f"{name:>16}: {row['ops_per_s']:8.0f} ops/s   "
              f"p95 {row['p95_ms']:.3f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
