"""§III-B store contents, at ~1/100 scale.

The paper: "hundreds of fields describing calculations for over 30,000
materials, 3,000 bandstructures, 400 intercalation batteries, and 14,000
conversion batteries", with aggregate stored volume in the hundreds of GB
*after* the raw output was parsed and reduced.

The bench populates the scaled store, prints the collection census next to
the paper's numbers, and checks the two structural claims: every collection
is populated with internally-consistent counts, and the (simulated) raw
output volume dwarfs what lands in the datastore.
"""

import pytest

from _pipeline import emit
from repro.builders import BatteryBuilder
from repro.dft import SCFParameters, estimate_walltime_s
from repro.docstore.documents import doc_size_bytes
from repro.matgen import Structure

PAPER_COUNTS = {
    "materials": 30000,
    "bandstructures": 3000,
    "intercalation batteries": 400,
    "conversion batteries": 14000,
}


def _census(population):
    db = population["db"]
    BatteryBuilder(db, "Li").run_conversion(max_hosts=40)
    return {
        "materials": db["materials"].count_documents(),
        "bandstructures": db["bandstructures"].count_documents(),
        "intercalation batteries": db["batteries"].count_documents(
            {"battery_type": "intercalation"}
        ),
        "conversion batteries": db["batteries"].count_documents(
            {"battery_type": "conversion"}
        ),
        "tasks": db["tasks"].count_documents(),
        "mps": db["mps"].count_documents(),
    }


def test_store_population(population, benchmark):
    census = benchmark.pedantic(
        _census, args=(population,), rounds=1, iterations=1
    )
    db = population["db"]
    stored_bytes = sum(
        doc_size_bytes(d)
        for coll in db.list_collection_names()
        for d in db[coll].find({}).limit(0)
    )
    # Simulated raw output: ~300 KB per completed run directory (measured
    # in tests/test_dft.py::test_reduction_factor).
    n_tasks = census["tasks"]
    raw_estimate = n_tasks * 300_000

    lines = [f"{'collection':26s} {'ours':>8s} {'paper':>8s} (scale ~1/100)"]
    for name, paper_n in PAPER_COUNTS.items():
        lines.append(f"{name:26s} {census[name]:8d} {paper_n:8d}")
    lines += [
        f"{'tasks':26s} {census['tasks']:8d}        -",
        f"{'mps inputs':26s} {census['mps']:8d}        -",
        "",
        f"stored (reduced) volume : {stored_bytes / 1e6:.1f} MB",
        f"raw output equivalent   : {raw_estimate / 1e6:.1f} MB "
        f"({raw_estimate / max(1, stored_bytes):.0f}x reduction keeps the DB "
        "'relatively small')",
    ]
    emit("store_population", "\n".join(lines))

    assert census["materials"] >= 100
    assert census["bandstructures"] == census["materials"]
    assert census["intercalation batteries"] >= 15
    assert census["conversion batteries"] >= 20
    # Paper shape: conversion >> intercalation.
    assert (census["conversion batteries"]
            > census["intercalation batteries"])
    assert raw_estimate > stored_bytes
