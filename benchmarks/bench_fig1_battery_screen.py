"""Figure 1: battery materials screened — predicted voltage vs. capacity.

The paper's scatter shows (a) known materials occupying a comparatively
narrow property range and (b) computed candidates spreading well beyond it,
including several that beat the known envelope.  We regenerate the series
from the pipeline's intercalation electrodes and assert the shape:

* voltages concentrate in the physical 1-4.5 V electrode window;
* capacities span roughly 100-600 mAh/g (olivines ~170, oxides ~250+);
* the computed set strictly contains the known-materials envelope and at
  least one candidate exceeds it in specific energy.
"""

import pytest

from _pipeline import emit

#: The known-materials envelope from the figure (approximate 2012 industry
#: state: LiCoO2, LiMn2O4, LiFePO4 class cathodes).
KNOWN_ENVELOPE = {"v_lo": 3.0, "v_hi": 4.3, "c_lo": 100.0, "c_hi": 200.0}


def _screen(population):
    db = population["db"]
    return db["batteries"].find({"battery_type": "intercalation"}).to_list()


def test_fig1_battery_screen(population, benchmark):
    electrodes = benchmark(_screen, population)
    assert len(electrodes) >= 15, "screen should cover many candidates"

    lines = [f"{'framework':>12s} {'ion':>4s} {'V (V)':>7s} "
             f"{'C (mAh/g)':>10s} {'E (Wh/kg)':>10s}"]
    for e in sorted(electrodes, key=lambda d: -d["specific_energy"]):
        lines.append(
            f"{e['framework']:>12s} {e['working_ion']:>4s} "
            f"{e['average_voltage']:7.2f} {e['capacity_grav']:10.0f} "
            f"{e['specific_energy']:10.0f}"
        )
    env = KNOWN_ENVELOPE
    lines.append(
        f"\nknown-materials envelope: V in [{env['v_lo']}, {env['v_hi']}] V, "
        f"C in [{env['c_lo']}, {env['c_hi']}] mAh/g"
    )
    voltages = [e["average_voltage"] for e in electrodes]
    capacities = [e["capacity_grav"] for e in electrodes]
    in_window = sum(1 for v in voltages if 1.0 <= v <= 4.5)
    lines.append(
        f"candidates: {len(electrodes)}; voltage span "
        f"[{min(voltages):.2f}, {max(voltages):.2f}] V; capacity span "
        f"[{min(capacities):.0f}, {max(capacities):.0f}] mAh/g; "
        f"{in_window}/{len(voltages)} inside 1-4.5 V"
    )
    emit("fig1_battery_screen", "\n".join(lines))

    # Shape assertions.
    assert in_window / len(voltages) > 0.7
    assert min(capacities) < 200 < max(capacities)  # spans the envelope edge
    known_best = KNOWN_ENVELOPE["v_hi"] * KNOWN_ENVELOPE["c_hi"]
    assert any(
        e["specific_energy"] > known_best * 0.5 for e in electrodes
    ), "screen should surface high-energy candidates"
    # The screen explores beyond the known envelope (the figure's point).
    outside = [
        e for e in electrodes
        if not (env["v_lo"] <= e["average_voltage"] <= env["v_hi"]
                and env["c_lo"] <= e["capacity_grav"] <= env["c_hi"])
    ]
    assert len(outside) > len(electrodes) * 0.3
