"""Flight-recorder benchmark: recorder overhead + diagnosis surfaces.

Two questions, two gates:

1. **Does the black box tax the hot path?**  Re-runs :mod:`bench_obs`'s
   core workloads (indexed ``find``, ``insert_one``, group-by
   ``aggregate``) with a :class:`FlightRecorder` capturing full
   diagnostic snapshots of the *same* store at its default 1 Hz cadence.
   CI gates ``find``/``insert`` against the same ``baseline_obs.json``
   budget with a tightened 10% tolerance (the gate's ``--only`` flag):
   an always-on recorder that slows the engine it is meant to autopsy
   would never be left on in production.

2. **Are the diagnosis surfaces fast?**  Times one full snapshot
   ``capture`` (server_status + /proc + metric deltas + delta-encode +
   append), decoding a ~240-snapshot ring (``decode_ring``), the
   MAD-z-score ``anomaly_scan`` over that window, and building the
   pre-crash report from the ring alone (``crash_report``) — all gated
   against ``baseline_flight.json``.

Writes ``BENCH_flight.json`` at the repo root.  Run from the repo
root::

    PYTHONPATH=src:benchmarks python benchmarks/bench_flight.py
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

import bench_obs
from bench_obs import _build_collection, _timed, calibrate

from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.flight import (
    FlightRecorder,
    build_crash_report,
    decode_ring,
    scan_anomalies,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_flight.json")

RECORDER_INTERVAL_S = 1.0
PREFILL_SNAPSHOTS = 240


def run_core_with_recorder(n_docs: int, iters: int) -> Dict[str, dict]:
    """bench_obs's find/insert/aggregate with the recorder at 1 Hz."""
    store, _coll = _build_collection(n_docs)
    flight_dir = tempfile.mkdtemp(prefix="bench-flight-")
    recorder = FlightRecorder(store, flight_dir,
                              interval_s=RECORDER_INTERVAL_S)
    recorder.start()
    try:
        return bench_obs.run_benchmarks(n_docs, iters, store=store)
    finally:
        recorder.stop()
        store.close()
        shutil.rmtree(flight_dir, ignore_errors=True)


def run_flight_surfaces(n_docs: int, iters: int) -> Dict[str, dict]:
    """Latency of the capture path and the ring-reading surfaces."""
    store, coll = _build_collection(n_docs)
    flight_dir = tempfile.mkdtemp(prefix="bench-flight-ring-")
    recorder = FlightRecorder(store, flight_dir)
    # A realistic ring: a few minutes of 1 Hz history with the store
    # moving between ticks so the deltas are non-trivial.
    for i in range(PREFILL_SNAPSHOTS):
        coll.find_one({"material_id": f"mp-{i % n_docs}"})
        recorder.capture()
    recorder.flush()
    window = recorder.recent()

    def bench_capture(i: int) -> None:
        recorder.capture()

    def bench_decode_ring(i: int) -> None:
        decode_ring(flight_dir)

    def bench_anomaly_scan(i: int) -> None:
        scan_anomalies(window, threshold=6.0)

    def bench_crash_report(i: int) -> None:
        build_crash_report(flight_dir, window_s=30.0)

    try:
        results = {
            "capture": _timed(bench_capture,
                              max(iters // 3, 50), batch=10, repeats=5),
            "decode_ring": _timed(bench_decode_ring,
                                  max(iters // 30, 5)),
            "anomaly_scan": _timed(bench_anomaly_scan,
                                   max(iters // 30, 5)),
            "crash_report": _timed(bench_crash_report,
                                   max(iters // 30, 5)),
        }
    finally:
        recorder.stop()
        store.close()
        shutil.rmtree(flight_dir, ignore_errors=True)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the results JSON")
    parser.add_argument("--n-docs", type=int, default=bench_obs.N_DOCS)
    parser.add_argument("--iters", type=int, default=bench_obs.ITERS)
    args = parser.parse_args(argv)

    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        calibration_ms = calibrate()
        benchmarks = run_core_with_recorder(args.n_docs, args.iters)
        # Fresh registry for the surfaces phase: capture's metric-delta
        # pass prices the registry it runs against, and the surfaces
        # store's own traffic -- not the core phase's leftover
        # reservoirs -- is the representative load.
        set_registry(MetricsRegistry())
        benchmarks.update(run_flight_surfaces(args.n_docs, args.iters))
    finally:
        set_registry(previous)
    doc = {
        "meta": {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "n_docs": args.n_docs,
            "iters": args.iters,
            "recorder_interval_s": RECORDER_INTERVAL_S,
            "prefill_snapshots": PREFILL_SNAPSHOTS,
            "calibration_ms": calibration_ms,
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {calibration_ms:.2f} ms")
    for name, stats in benchmarks.items():
        print(f"{name:18s} p50 {stats['p50_ms']:8.4f} ms   "
              f"p95 {stats['p95_ms']:8.4f} ms   "
              f"p99 {stats['p99_ms']:8.4f} ms")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
