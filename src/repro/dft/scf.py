"""The iterative SCF loop with parameter-dependent convergence.

§III-C1: "The core method is really a series of algorithms, each of which is
an iterative calculation with several key parameters.  There is no single
set of parameters or iterative algorithms that works best for all types of
crystals, and there is no guarantee that a given run will converge at all."

We reproduce exactly that operational profile with a damped fixed-point
iteration on a small charge-density vector:

    rho_{n+1} = (1 - β) rho_n + β F(rho_n)

``F`` is a contraction with structure-dependent conditioning λ ∈ (0, 2):
well-behaved crystals have λ < 1 for any mixing; "difficult" crystals
(deterministically selected by structure hash) have λ that exceeds 1 when
the mixing β is too aggressive for the algorithm in use, so the loop
oscillates and hits NELM without converging — the error that, in the real
pipeline, triggers a FireWorks *detour* with reduced AMIX or ALGO=Normal.

Cutoff energy (ENCUT) controls the discretization bias of the converged
energy: ``E(ENCUT) = E_∞ + A·exp(-ENCUT/150)``, so under-converged inputs
give systematically wrong (higher) energies that V&V rules can catch.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Optional

from ..errors import ConvergenceError, InputError
from ..matgen.structure import Structure
from ..obs import span
from .energy import total_energy

__all__ = ["SCFParameters", "SCFResult", "run_scf", "structure_difficulty"]

#: Energy bias amplitude for finite cutoff (eV/atom).
CUTOFF_BIAS_EV = 0.8

#: Cutoff e-folding scale (eV).
CUTOFF_SCALE = 150.0


class SCFParameters:
    """INCAR-like knobs of the pseudo-DFT SCF loop."""

    def __init__(
        self,
        encut: float = 520.0,
        nelm: int = 60,
        ediff: float = 1e-5,
        amix: float = 0.4,
        algo: str = "Fast",
    ):
        if encut <= 0:
            raise InputError(f"ENCUT must be positive, got {encut}")
        if nelm < 1:
            raise InputError(f"NELM must be >= 1, got {nelm}")
        if ediff <= 0:
            raise InputError(f"EDIFF must be positive, got {ediff}")
        if not 0 < amix <= 1:
            raise InputError(f"AMIX must be in (0, 1], got {amix}")
        if algo not in ("Fast", "Normal", "All"):
            raise InputError(f"ALGO must be Fast/Normal/All, got {algo!r}")
        self.encut = float(encut)
        self.nelm = int(nelm)
        self.ediff = float(ediff)
        self.amix = float(amix)
        self.algo = algo

    def as_dict(self) -> dict:
        return {
            "ENCUT": self.encut,
            "NELM": self.nelm,
            "EDIFF": self.ediff,
            "AMIX": self.amix,
            "ALGO": self.algo,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SCFParameters":
        return cls(
            encut=d.get("ENCUT", 520.0),
            nelm=d.get("NELM", 60),
            ediff=d.get("EDIFF", 1e-5),
            amix=d.get("AMIX", 0.4),
            algo=d.get("ALGO", "Fast"),
        )


class SCFResult:
    """Outcome of a converged (or aborted) SCF loop."""

    def __init__(
        self,
        converged: bool,
        energy: float,
        energy_per_atom: float,
        n_iterations: int,
        residuals: List[float],
        parameters: SCFParameters,
    ):
        self.converged = converged
        self.energy = energy
        self.energy_per_atom = energy_per_atom
        self.n_iterations = n_iterations
        self.residuals = residuals
        self.parameters = parameters

    def as_dict(self) -> dict:
        return {
            "converged": self.converged,
            "energy": self.energy,
            "energy_per_atom": self.energy_per_atom,
            "n_iterations": self.n_iterations,
            "final_residual": self.residuals[-1] if self.residuals else None,
            "parameters": self.parameters.as_dict(),
        }


def structure_difficulty(structure: Structure) -> float:
    """Deterministic conditioning score in [0, 1): larger = harder to converge.

    ~15% of structures land above 0.85 and need gentler mixing (a detour),
    matching the paper's description of jobs that "sometimes quit with an
    error message" and need "a few minor input parameters changed".
    """
    h = hashlib.sha1(
        ("difficulty:" + structure.structure_hash()).encode()
    ).digest()
    return int.from_bytes(h[:8], "big") / 2 ** 64


def _contraction_factor(structure: Structure, params: SCFParameters) -> float:
    """Spectral radius of the damped iteration; > 1 diverges."""
    difficulty = structure_difficulty(structure)
    # Base conditioning: easy structures ~0.5, hard ones approach 1.6.
    lam = 0.5 + 1.1 * difficulty
    algo_gain = {"Fast": 1.0, "Normal": 0.55, "All": 0.35}[params.algo]
    # Damped iteration: rho = |1 - beta| + beta * lam * algo_gain.
    beta = params.amix
    return abs(1.0 - beta) + beta * lam * algo_gain


def run_scf(structure: Structure, params: Optional[SCFParameters] = None) -> SCFResult:
    """Run the SCF loop; raises :class:`ConvergenceError` on NELM exhaustion.

    The converged energy is the model total energy plus the finite-cutoff
    bias.  The residual trace follows the contraction factor exactly, so
    iteration counts respond to AMIX/ALGO the way a real code's would.
    """
    with span("scf.run", formula=structure.reduced_formula) as scf_span:
        result = _run_scf(structure, params)
        scf_span.set_attribute("n_iterations", result.n_iterations)
        return result


def _run_scf(structure: Structure,
             params: Optional[SCFParameters]) -> SCFResult:
    params = params or SCFParameters()
    rho = _contraction_factor(structure, params)
    n_atoms = structure.num_sites

    e_converged = total_energy(structure)
    bias = CUTOFF_BIAS_EV * math.exp(-params.encut / CUTOFF_SCALE) * n_atoms
    e_final = e_converged + bias

    residuals: List[float] = []
    residual = 1.0  # initial density error (normalized)
    for iteration in range(1, params.nelm + 1):
        residual *= rho
        # Small deterministic wobble so traces look like real SCF logs.
        wobble = 1.0 + 0.05 * math.sin(iteration * 2.3)
        residuals.append(residual * wobble)
        if residual < params.ediff:
            return SCFResult(
                converged=True,
                energy=e_final,
                energy_per_atom=e_final / n_atoms,
                n_iterations=iteration,
                residuals=residuals,
                parameters=params,
            )
    raise ConvergenceError(
        f"SCF did not converge in NELM={params.nelm} iterations "
        f"(residual {residuals[-1]:.2e}, contraction {rho:.3f}; "
        f"reduce AMIX or switch ALGO)"
    )


def expected_iterations(structure: Structure, params: SCFParameters) -> float:
    """Closed-form iteration estimate: n = ln(EDIFF) / ln(ρ)."""
    rho = _contraction_factor(structure, params)
    if rho >= 1.0:
        return math.inf
    return math.log(params.ediff) / math.log(rho)
