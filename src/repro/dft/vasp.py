"""FakeVASP: the pseudo-DFT *code* with VASP's operational envelope.

This is the executable the workflow engine schedules.  Given a structure and
INCAR-like parameters it:

* deterministically estimates the walltime and memory the run *needs*
  (unpredictable-looking — log-normal-ish jitter over a strong ``nsites``
  power law, spanning "minutes to days" at real scale, §III-C1);
* fails with :class:`~repro.errors.WalltimeExceeded` /
  :class:`~repro.errors.MemoryExceeded` when the allocated resources fall
  short (the batch system's kill), leaving a *truncated* run directory
  exactly like a killed job would;
* runs the SCF loop, which may raise :class:`~repro.errors.ConvergenceError`
  for hard structures with aggressive mixing (the "quit with an error
  message" case needing a detour);
* on success writes a run directory of raw output files — INCAR, POSCAR,
  OSZICAR, a deliberately bulky OUTCAR with per-iteration blocks and a
  charge-density grid, and an EIGENVAL band file — several hundred KB that
  the Analyzer must parse and reduce (§III-B "several MB of intermediate
  output ... parsed and reduced").

Nothing sleeps: runtimes are *simulated* quantities consumed by the HPC
simulator, so the whole pipeline runs at laptop speed.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from ..errors import InputError, MemoryExceeded, WalltimeExceeded
from ..matgen.bandstructure import compute_band_structure
from ..matgen.dos import compute_dos
from ..matgen.structure import Structure
from .scf import SCFParameters, SCFResult, run_scf
from . import io as dft_io

__all__ = ["Resources", "VaspRun", "FakeVASP", "estimate_walltime_s",
           "estimate_memory_mb"]

#: Walltime prefactor: seconds per site^2.5 at ENCUT=520 (simulated).
_WALLTIME_PREFACTOR = 9.0

#: Baseline memory + per-site slope (MB, simulated).
_MEM_BASE_MB = 180.0
_MEM_PER_SITE_MB = 35.0


def _jitter(structure: Structure, tag: str, lo: float, hi: float) -> float:
    """Deterministic multiplicative jitter in [lo, hi] from the structure."""
    h = hashlib.sha1((tag + structure.structure_hash()).encode()).digest()
    unit = int.from_bytes(h[:8], "big") / 2 ** 64
    # Log-uniform: runtimes look log-normal-ish across a population.
    return lo * (hi / lo) ** unit


def estimate_walltime_s(structure: Structure, params: SCFParameters) -> float:
    """Simulated walltime the run will actually need (seconds)."""
    n = structure.num_sites
    base = _WALLTIME_PREFACTOR * n ** 2.5 * (params.encut / 520.0) ** 1.5
    return base * _jitter(structure, "walltime:", 0.4, 4.0)


def estimate_memory_mb(structure: Structure, params: SCFParameters) -> float:
    """Simulated peak memory the run will need (MB)."""
    n = structure.num_sites
    base = _MEM_BASE_MB + _MEM_PER_SITE_MB * n * (params.encut / 520.0)
    return base * _jitter(structure, "memory:", 0.8, 1.6)


class Resources:
    """What the batch job granted this calculation."""

    def __init__(self, walltime_s: float = 6 * 3600.0, memory_mb: float = 4096.0,
                 cores: int = 24):
        if walltime_s <= 0 or memory_mb <= 0 or cores < 1:
            raise InputError("resources must be positive")
        self.walltime_s = float(walltime_s)
        self.memory_mb = float(memory_mb)
        self.cores = int(cores)

    def as_dict(self) -> dict:
        return {
            "walltime_s": self.walltime_s,
            "memory_mb": self.memory_mb,
            "cores": self.cores,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Resources":
        return cls(d.get("walltime_s", 6 * 3600.0), d.get("memory_mb", 4096.0),
                   d.get("cores", 24))


class VaspRun:
    """A completed FakeVASP run: SCF result + derived electronic structure."""

    def __init__(
        self,
        structure: Structure,
        scf: SCFResult,
        walltime_used_s: float,
        memory_used_mb: float,
        run_dir: Optional[str],
    ):
        self.structure = structure
        self.scf = scf
        self.walltime_used_s = walltime_used_s
        self.memory_used_mb = memory_used_mb
        self.run_dir = run_dir
        self.band_structure = compute_band_structure(structure)
        self.dos = compute_dos(self.band_structure)

    @property
    def final_energy(self) -> float:
        return self.scf.energy

    @property
    def energy_per_atom(self) -> float:
        return self.scf.energy_per_atom

    @property
    def band_gap(self) -> float:
        return self.band_structure.band_gap

    def as_dict(self) -> dict:
        return {
            "formula": self.structure.reduced_formula,
            "scf": self.scf.as_dict(),
            "walltime_used_s": self.walltime_used_s,
            "memory_used_mb": self.memory_used_mb,
            "band_gap": self.band_gap,
            "is_metal": self.band_structure.is_metal,
            "run_dir": self.run_dir,
        }


class FakeVASP:
    """The pseudo-DFT executable.

    Parameters
    ----------
    version:
        Stamped into outputs; the tasks collection stores runs of "different
        versions of VASP ... side by side" (§III-B2).
    """

    def __init__(self, version: str = "5.2.12-fake"):
        self.version = version

    def run(
        self,
        structure: Structure,
        params: Optional[SCFParameters] = None,
        resources: Optional[Resources] = None,
        run_dir: Optional[str] = None,
    ) -> VaspRun:
        """Execute one calculation; writes ``run_dir`` if given.

        Raises WalltimeExceeded / MemoryExceeded / ConvergenceError with a
        truncated run directory left behind, as the real failure modes do.
        """
        params = params or SCFParameters()
        resources = resources or Resources()
        if run_dir is not None:
            os.makedirs(run_dir, exist_ok=True)
            dft_io.write_inputs(run_dir, structure, params, self.version)

        needed_mem = estimate_memory_mb(structure, params)
        if needed_mem > resources.memory_mb:
            if run_dir is not None:
                dft_io.write_failure(
                    run_dir, "OOM", f"needed {needed_mem:.0f} MB, "
                    f"had {resources.memory_mb:.0f} MB", self.version
                )
            raise MemoryExceeded(
                f"calculation needs {needed_mem:.0f} MB but only "
                f"{resources.memory_mb:.0f} MB allocated"
            )

        needed_wall = estimate_walltime_s(structure, params)
        if needed_wall > resources.walltime_s:
            if run_dir is not None:
                dft_io.write_failure(
                    run_dir, "WALLTIME",
                    f"killed at {resources.walltime_s:.0f}s "
                    f"(needed ~{needed_wall:.0f}s)", self.version
                )
            raise WalltimeExceeded(
                f"calculation needs ~{needed_wall:.0f}s but job walltime is "
                f"{resources.walltime_s:.0f}s"
            )

        try:
            scf = run_scf(structure, params)
        except Exception:
            if run_dir is not None:
                dft_io.write_failure(
                    run_dir, "SCF",
                    f"electronic minimisation did not converge "
                    f"(NELM={params.nelm}, AMIX={params.amix}, ALGO={params.algo})",
                    self.version,
                )
            raise

        # Used walltime scales with the iteration count actually taken.
        frac = scf.n_iterations / max(1, params.nelm)
        used_wall = needed_wall * (0.5 + 0.5 * frac)
        run = VaspRun(structure, scf, used_wall, needed_mem, run_dir)
        if run_dir is not None:
            dft_io.write_outputs(run_dir, run, self.version)
        return run
