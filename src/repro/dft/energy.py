"""Deterministic energy model — the physics stand-in for VASP.

The paper's pipeline never depends on DFT being *right*, only on energies
with the correct downstream structure: ionic compounds must form (negative
formation energies growing with electronegativity contrast), convex hulls
must have stable/unstable phases, alkali insertion into oxide frameworks
must release 1.5–4.5 eV (realistic battery voltages), and near-duplicate
structures must give near-identical energies.

The model, per atom:

* elemental reference ``e_ref = -0.8 - 1.2·√Z/3 - 0.9·χ`` (eV): heavier and
  more electronegative atoms bind more — crude cohesive energies in the
  -2…-8 eV range;
* ionic formation term ``-K · Σ_{i<j} x_i x_j (χ_i - χ_j)²`` (Pauling's
  geometric-mean bond-energy argument), K = 0.85 eV;
* a packing term penalizing unphysical volumes per atom relative to the
  radius-derived ideal;
* a deterministic "correlation" jitter seeded by the structure hash (±30
  meV/atom) so distinct polymorphs of one composition order stably.

Everything is pure, deterministic, and fast — the SCF loop in
:mod:`repro.dft.scf` converges *to* these values.
"""

from __future__ import annotations

import hashlib
import math
from ..matgen.composition import Composition
from ..matgen.structure import Structure

__all__ = ["reference_energy_per_atom", "formation_energy_per_atom",
           "total_energy", "structure_jitter"]

#: Pauling-like ionic stabilization prefactor (eV per squared χ difference).
#: Calibrated so alkali insertion into oxide frameworks releases 2-4 eV
#: (battery voltages in the physical 1.5-4.5 V window, anchoring Fig. 1).
IONIC_PREFACTOR = 0.34

#: Packing stiffness (eV per unit squared log-volume deviation).
PACKING_STIFFNESS = 0.18

#: Amplitude of the polymorph jitter (eV/atom).
JITTER_AMPLITUDE = 0.03


def reference_energy_per_atom(symbol: str) -> float:
    """Cohesive-like reference energy of the pure element (eV/atom)."""
    from ..matgen.elements import Element

    el = Element(symbol)
    return -0.8 - 1.2 * math.sqrt(el.Z) / 3.0 - 0.9 * el.chi


def _ionic_term(comp: Composition) -> float:
    """Pauling electronegativity-contrast stabilization (eV/atom, ≤ 0)."""
    els = comp.elements
    n = comp.num_atoms
    total = 0.0
    for i, a in enumerate(els):
        xa = comp[a] / n
        for b in els[i + 1:]:
            xb = comp[b] / n
            total += xa * xb * (a.chi - b.chi) ** 2
    return -IONIC_PREFACTOR * total * 2.0


def _packing_term(structure: Structure) -> float:
    """Penalty for volumes away from the radius-derived ideal (eV/atom, ≥ 0)."""
    ideal = 0.0
    for site in structure.sites:
        r = site.element.atomic_radius
        ideal += (4.0 / 3.0) * math.pi * r ** 3 * 1.35  # packing allowance
    actual = structure.volume
    x = math.log(actual / ideal)
    return PACKING_STIFFNESS * x * x


def structure_jitter(structure: Structure) -> float:
    """Deterministic ±JITTER_AMPLITUDE eV/atom polymorph jitter.

    Seeded by *intensive* identity (reduced formula, volume per atom,
    density) rather than the full structure hash, so supercells carry
    exactly the same per-atom jitter and total energies stay extensive,
    while distinct polymorphs of one composition still order stably.
    """
    key = (
        f"{structure.reduced_formula}"
        f"|{structure.volume_per_atom:.2f}|{structure.density:.2f}"
    )
    h = hashlib.sha1(key.encode()).digest()
    unit = int.from_bytes(h[:8], "big") / 2 ** 64  # [0, 1)
    return (2.0 * unit - 1.0) * JITTER_AMPLITUDE


def formation_energy_per_atom(structure: Structure) -> float:
    """Formation energy per atom relative to elemental references (eV)."""
    comp = structure.composition
    return _ionic_term(comp) + _packing_term(structure) + structure_jitter(structure)


def total_energy(structure: Structure) -> float:
    """Converged total energy of the structure (eV, whole cell)."""
    comp = structure.composition
    e_ref = sum(
        comp[el] * reference_energy_per_atom(el.symbol) for el in comp.elements
    )
    return e_ref + formation_energy_per_atom(structure) * comp.num_atoms
