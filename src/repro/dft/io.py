"""Run-directory I/O: bulky raw outputs and the parser that reduces them.

§III-B: "While the VASP calculations are running, they generate from a small
input (the initial crystal) several MB of intermediate output data.  This is
parsed and reduced by the FireWorks Analyzer ... so that the aggregate
volume of data stored in our database remains relatively small."

``write_outputs`` produces the raw side: INCAR/POSCAR text inputs, an
OSZICAR iteration log, an OUTCAR with per-iteration blocks *plus a plain-text
charge-density grid* (the deliberate bulk), and an EIGENVAL band file.
``parse_run_directory`` is the reduce side: it re-reads only the text files
(never Python objects) and distils them into a small summary document ready
for the ``tasks`` collection — typically a 100–1000× size reduction, which
the tests assert.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

import numpy as np

from ..errors import DFTError
from ..matgen.structure import Structure

__all__ = ["write_inputs", "write_outputs", "write_failure",
           "parse_run_directory", "raw_output_size"]

#: Charge-density grid points per axis (bulk knob; 24³ ≈ 14k values).
CHG_GRID = 24


def write_inputs(run_dir: str, structure: Structure, params: Any,
                 version: str) -> None:
    """Write INCAR/POSCAR/KPOINTS-like input files."""
    with open(os.path.join(run_dir, "INCAR"), "w") as fh:
        fh.write(f"# FakeVASP {version}\n")
        for key, value in params.as_dict().items():
            fh.write(f"{key} = {value}\n")
    with open(os.path.join(run_dir, "POSCAR"), "w") as fh:
        fh.write(f"{structure.reduced_formula}\n1.0\n")
        for row in structure.lattice.matrix:
            fh.write("  " + "  ".join(f"{x:.10f}" for x in row) + "\n")
        symbols = [s.element.symbol for s in structure.sites]
        # Coordinates MUST be grouped in the symbol-line order: VASP (and
        # any conforming reader) assigns species by count blocks.
        uniq = sorted(set(symbols), key=symbols.index)
        fh.write(" ".join(uniq) + "\n")
        fh.write(" ".join(str(symbols.count(u)) for u in uniq) + "\n")
        fh.write("Direct\n")
        for symbol in uniq:
            for site in structure.sites:
                if site.element.symbol != symbol:
                    continue
                fh.write(
                    "  "
                    + "  ".join(f"{x:.10f}" for x in site.frac_coords)
                    + f"  {symbol}\n"
                )
    with open(os.path.join(run_dir, "KPOINTS"), "w") as fh:
        fh.write("Automatic mesh\n0\nGamma\n4 4 4\n")


def write_outputs(run_dir: str, run: Any, version: str) -> None:
    """Write the raw output side of a successful run (the bulky part)."""
    scf = run.scf
    structure = run.structure
    # OSZICAR: one line per SCF step.
    with open(os.path.join(run_dir, "OSZICAR"), "w") as fh:
        e = scf.energy * 1.05
        for i, res in enumerate(scf.residuals, start=1):
            e = scf.energy + (e - scf.energy) * 0.6
            fh.write(f"DAV: {i:4d}  {e: .8E}  {res: .3E}\n")
        fh.write(f"  F= {scf.energy:.8f} E0= {scf.energy:.8f}\n")

    # OUTCAR: verbose per-iteration blocks + charge-density grid.
    with open(os.path.join(run_dir, "OUTCAR"), "w") as fh:
        fh.write(f" vasp.{version} (fake) executed on  LinuxIFC\n")
        fh.write(f" POSCAR = {structure.reduced_formula}\n")
        fh.write(f" NIONS = {structure.num_sites}\n")
        for key, value in scf.parameters.as_dict().items():
            fh.write(f"   {key:8s} = {value}\n")
        for i, res in enumerate(scf.residuals, start=1):
            fh.write(
                f"----------------------- Iteration {i:5d} "
                "-----------------------\n"
            )
            fh.write(f"    POTLOK:  cpu time {0.5 + 0.01 * i:10.4f}\n")
            fh.write(f"    density residual   {res: .6E}\n")
            fh.write("    eigenvalue-minimisations  :   24\n")
            fh.write(f"    total energy-change (2. order) : {res * 10: .7E}\n")
        fh.write("   reached required accuracy - stopping structural minimisation\n")
        fh.write(f"  FREE ENERGIE OF THE ION-ELECTRON SYSTEM (eV)\n")
        fh.write(f"  free  energy   TOTEN  = {scf.energy:16.8f} eV\n")
        fh.write(f"  energy without entropy= {scf.energy:16.8f}\n")
        # The bulk: plain-text charge density on a grid (what CHGCAR is).
        fh.write(f"\n CHARGE DENSITY GRID {CHG_GRID} {CHG_GRID} {CHG_GRID}\n")
        rng = np.random.default_rng(
            abs(hash(structure.structure_hash())) % (2 ** 32)
        )
        grid = rng.random(CHG_GRID ** 3) * structure.num_sites
        for start in range(0, grid.size, 6):
            fh.write(
                " ".join(f"{x: .10E}" for x in grid[start:start + 6]) + "\n"
            )

    # EIGENVAL: band energies per k-point.
    bs = run.band_structure
    with open(os.path.join(run_dir, "EIGENVAL"), "w") as fh:
        fh.write(f"{bs.n_bands} {len(bs.kpoints)} {bs.fermi_level:.6f}\n")
        for ik, k in enumerate(bs.kpoints):
            fh.write(f"k {k[0]:.6f} {k[1]:.6f} {k[2]:.6f}\n")
            for ib in range(bs.n_bands):
                fh.write(f"  {ib + 1} {bs.bands[ib, ik]:.6f}\n")

    # Machine-readable footer the parser uses for exact values.
    with open(os.path.join(run_dir, "run_summary.json"), "w") as fh:
        json.dump(
            {
                "version": version,
                "status": "COMPLETED",
                "energy": scf.energy,
                "energy_per_atom": scf.energy_per_atom,
                "n_iterations": scf.n_iterations,
                "walltime_used_s": run.walltime_used_s,
                "memory_used_mb": run.memory_used_mb,
                "parameters": scf.parameters.as_dict(),
                "structure": structure.as_dict(),
            },
            fh,
        )


def write_failure(run_dir: str, kind: str, message: str, version: str) -> None:
    """Leave the truncated artifacts of a killed/failed run."""
    with open(os.path.join(run_dir, "OUTCAR"), "a") as fh:
        fh.write(f" vasp.{version} (fake)\n")
        if kind == "WALLTIME":
            fh.write(" =>> PBS: job killed: walltime exceeded limit\n")
        elif kind == "OOM":
            fh.write(" forrtl: severe (41): insufficient virtual memory\n")
        else:
            fh.write(
                " ZBRENT: fatal error: electronic self-consistency loop "
                "did not converge\n"
            )
        fh.write(f" {message}\n")
    with open(os.path.join(run_dir, "run_summary.json"), "w") as fh:
        json.dump(
            {"version": version, "status": "FAILED", "error_kind": kind,
             "message": message},
            fh,
        )


def raw_output_size(run_dir: str) -> int:
    """Total bytes of raw output files in a run directory."""
    total = 0
    for name in os.listdir(run_dir):
        total += os.path.getsize(os.path.join(run_dir, name))
    return total


def parse_run_directory(run_dir: str) -> Dict[str, Any]:
    """Parse + reduce a run directory into a small task summary document.

    This is the FireWorks Analyzer's first stage: it must work from the
    text files alone.  The OUTCAR is scanned for the final energy and the
    failure signature; OSZICAR yields the iteration count; EIGENVAL yields
    the band gap summary; the charge-density bulk is *not* retained (that
    is the entire point of the reduction).
    """
    outcar_path = os.path.join(run_dir, "OUTCAR")
    summary_path = os.path.join(run_dir, "run_summary.json")
    if not os.path.exists(outcar_path) and not os.path.exists(summary_path):
        raise DFTError(f"no outputs found in {run_dir!r}")

    doc: Dict[str, Any] = {"run_dir": run_dir}

    if os.path.exists(summary_path):
        try:
            with open(summary_path) as fh:
                footer = json.load(fh)
        except (ValueError, OSError) as exc:
            raise DFTError(
                f"corrupt run summary in {run_dir!r}: {exc}"
            ) from exc
        doc["status"] = footer.get("status", "UNKNOWN")
        doc["code_version"] = footer.get("version")
        if doc["status"] == "FAILED":
            doc["error_kind"] = footer.get("error_kind")
            doc["error_message"] = footer.get("message")
            return doc
        doc["energy"] = footer["energy"]
        doc["energy_per_atom"] = footer["energy_per_atom"]
        doc["n_iterations"] = footer["n_iterations"]
        doc["walltime_used_s"] = footer["walltime_used_s"]
        doc["memory_used_mb"] = footer["memory_used_mb"]
        doc["parameters"] = footer["parameters"]
        doc["structure"] = footer["structure"]

    # Cross-check the OUTCAR text (the "real" parse).
    if os.path.exists(outcar_path):
        iterations = 0
        energy_text: Optional[float] = None
        error_line: Optional[str] = None
        with open(outcar_path) as fh:
            for line in fh:
                if "Iteration" in line:
                    iterations += 1
                elif "TOTEN" in line:
                    energy_text = float(line.split("=")[1].split()[0])
                elif "ZBRENT" in line or "walltime exceeded" in line or (
                    "insufficient virtual memory" in line
                ):
                    error_line = line.strip()
                elif line.startswith(" CHARGE DENSITY GRID"):
                    break  # never read the bulk
        doc["outcar"] = {
            "iterations_seen": iterations,
            "final_energy_text": energy_text,
            "error_line": error_line,
        }
        if energy_text is not None and "energy" in doc:
            if abs(energy_text - doc["energy"]) > 1e-4:
                raise DFTError(
                    f"OUTCAR energy {energy_text} disagrees with summary "
                    f"{doc['energy']}"
                )

    # Band gap from EIGENVAL (reduced: gap only, not the full bands).
    eig_path = os.path.join(run_dir, "EIGENVAL")
    if os.path.exists(eig_path):
        with open(eig_path) as fh:
            header = fh.readline().split()
            n_bands, n_k, fermi = int(header[0]), int(header[1]), float(header[2])
            bands = np.zeros((n_bands, n_k))
            ik = -1
            for line in fh:
                if line.startswith("k "):
                    ik += 1
                else:
                    parts = line.split()
                    bands[int(parts[0]) - 1, ik] = float(parts[1])
        below = bands[bands <= fermi]
        above = bands[bands > fermi]
        crosses = ((bands.min(axis=1) < fermi) & (bands.max(axis=1) > fermi)).any()
        if crosses or below.size == 0 or above.size == 0:
            gap = 0.0
        else:
            gap = max(0.0, float(above.min() - below.max()))
        doc["band_gap"] = gap
        doc["is_metal"] = bool(crosses)
        doc["fermi_level"] = fermi

    doc["raw_output_bytes"] = raw_output_size(run_dir)
    return doc
