"""``repro.dft`` — the pseudo-DFT engine standing in for VASP.

Deterministic physics with VASP's operational envelope: an energy model
(:mod:`.energy`), a parameter-sensitive SCF loop (:mod:`.scf`), the FakeVASP
runner with walltime/memory failure modes (:mod:`.vasp`), and run-directory
I/O that writes bulky raw outputs and parses them back down to small task
summaries (:mod:`.io`).
"""

from .energy import (
    formation_energy_per_atom,
    reference_energy_per_atom,
    structure_jitter,
    total_energy,
)
from .scf import SCFParameters, SCFResult, expected_iterations, run_scf, structure_difficulty
from .vasp import (
    FakeVASP,
    Resources,
    VaspRun,
    estimate_memory_mb,
    estimate_walltime_s,
)
from .io import parse_run_directory, raw_output_size

__all__ = [
    "formation_energy_per_atom",
    "reference_energy_per_atom",
    "structure_jitter",
    "total_energy",
    "SCFParameters",
    "SCFResult",
    "expected_iterations",
    "run_scf",
    "structure_difficulty",
    "FakeVASP",
    "Resources",
    "VaspRun",
    "estimate_memory_mb",
    "estimate_walltime_s",
    "parse_run_directory",
    "raw_output_size",
]
