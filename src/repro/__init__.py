"""repro — reproduction of the Materials Project datastore paper (SC 2012).

"Community Accessible Datastore of High-Throughput Calculations:
Experiences from the Materials Project", Gunter et al., SC 2012.

Subpackages
-----------
docstore
    From-scratch MongoDB-style document store (query language, indexes,
    aggregation, MapReduce, wire protocol, proxy, sharding, replication).
matgen
    Materials object model and analysis (pymatgen analog): structures,
    compositions, phase diagrams, batteries, XRD, band structures.
dft
    Deterministic pseudo-DFT engine standing in for VASP: SCF loop with
    parameter-dependent convergence, realistic failure modes, raw output
    files that must be parsed and reduced.
hpc
    Discrete-event HPC cluster simulator: PBS-like batch queue, task
    farming, network policy (worker nodes must use the proxy), NUMA model.
fireworks
    Workflow engine (FireWorks analog): Firework/Stage/Fuse/Analyzer/
    Binder, re-runs, detours, duplicate detection, iteration.
builders
    Data loading, derived-collection builders (materials, phase diagrams,
    batteries, XRD, band structures) and continuous V&V.
mapreduce
    Generic MapReduce framework with single-threaded (Mongo analog) and
    parallel (Hadoop analog) executors.
api
    Data dissemination: QueryEngine abstraction layer, Materials API REST
    router + HTTP server/client, auth, rate limiting, sandboxes.
analysis
    Document complexity metrics (Table I) and summary statistics.
datagen
    Synthetic ICSD-like structure generator and web-query workload
    generator.
"""

__version__ = "1.0.0"

from . import errors

__all__ = ["errors", "__version__"]
