"""Exception hierarchy shared across the reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers (the workflow engine, the web API) can distinguish "our" failures from
programming errors and apply the paper's recovery strategies (re-runs,
detours, manual-intervention flags).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DocstoreError(ReproError):
    """Base class for document-store errors."""


class QuerySyntaxError(DocstoreError):
    """A query document uses an unknown operator or malformed structure."""


class UpdateSyntaxError(DocstoreError):
    """An update document uses an unknown operator or malformed structure."""


class DuplicateKeyError(DocstoreError):
    """A unique index rejected an insert or update."""


class CollectionNotFound(DocstoreError):
    """Named collection does not exist (strict access mode)."""


class WireProtocolError(DocstoreError):
    """Malformed message on the socket wire protocol."""


class ConnectionLost(WireProtocolError):
    """The wire connection dropped mid-exchange (retryable for idempotent ops)."""


class OperationKilled(DocstoreError):
    """A cooperative in-flight operation was terminated via ``killOp``."""


class DeadlineExceeded(OperationKilled):
    """An operation outlived its client-supplied ``$deadline`` and was aborted."""


class NetworkPolicyError(ReproError):
    """A simulated host attempted a connection its network policy forbids."""


class ShardingError(DocstoreError):
    """Invalid shard configuration or routing failure."""


class ReplicationError(DocstoreError):
    """Replica-set configuration or failover error."""


class ClusterError(DocstoreError):
    """Base class for sharded-cluster (config/balancer/election) errors."""


class NotPrimary(ClusterError):
    """The targeted replica-set member is not (or no longer) the primary.

    Routers catch this, wait for (or trigger) an election, re-resolve the
    primary, and retry — the client never sees a failover if a new primary
    emerges within the retry budget.
    """


class StaleEpoch(ClusterError):
    """A routed operation carried an outdated chunk-map epoch.

    Raised by a shard that no longer owns the targeted chunk (it split or
    migrated away).  Routers refresh their cached chunk map from the config
    metadata and retry against the new owner.
    """


class ElectionFailed(ClusterError):
    """A primary election could not reach a majority of voting members."""


class MatgenError(ReproError):
    """Base class for materials object-model errors."""


class CompositionError(MatgenError):
    """Unparseable or invalid chemical formula."""


class StructureError(MatgenError):
    """Invalid crystal structure (bad lattice, overlapping sites, ...)."""


class DFTError(ReproError):
    """Base class for pseudo-DFT engine failures."""


class ConvergenceError(DFTError):
    """The SCF loop failed to converge within the iteration budget."""


class WalltimeExceeded(DFTError):
    """The batch system killed the calculation at its walltime limit."""


class MemoryExceeded(DFTError):
    """The calculation exceeded its memory allocation and was killed."""


class InputError(DFTError):
    """The calculation inputs are invalid and the code refused to start."""


class WorkflowError(ReproError):
    """Base class for workflow-engine errors."""


class FuseNotReady(WorkflowError):
    """A Fuse condition prevented a Firework from being released."""


class WorkflowAborted(WorkflowError):
    """A workflow was aborted and marked for manual intervention."""


class HPCError(ReproError):
    """Base class for cluster-simulator errors."""


class QueueLimitExceeded(HPCError):
    """Per-user queued-job limit reached on the batch system."""


class BuilderError(ReproError):
    """A derived-collection builder failed."""


class ValidationError(ReproError):
    """A V&V rule failed against the datastore."""


class APIError(ReproError):
    """Base class for dissemination-layer errors."""


class AuthError(APIError):
    """Authentication or authorization failure."""


class RateLimitExceeded(APIError):
    """A user exceeded the per-user query rate limit."""


class NotFoundError(APIError):
    """REST resource not found."""


class BadRequestError(APIError):
    """REST request malformed (bad property, bad formula, ...)."""
