"""CIF import/export — the field's standard crystal interchange format.

§III-D3: "The pymatgen library can import and export data from a number of
existing formats."  The Crystallographic Information File is *the* format
experimentalists exchange, so the reproduction speaks it too: a P1 writer
(every site explicit, no symmetry reduction — standard practice for
computed structures) and a reader covering the subset such files use:
``data_`` blocks, cell parameters, and an ``atom_site`` loop with either
``type_symbol`` or ``label`` columns, quoted values, and comments.
"""

from __future__ import annotations

import re
import shlex
from typing import Dict, List, Optional, Tuple

from ..errors import MatgenError
from .elements import Element
from .lattice import Lattice
from .structure import Structure

__all__ = ["structure_to_cif", "structure_from_cif", "read_cif_file",
           "write_cif_file"]


def structure_to_cif(structure: Structure, data_name: Optional[str] = None) -> str:
    """Render a structure as a P1 CIF block."""
    a, b, c, alpha, beta, gamma = structure.lattice.parameters
    name = data_name or structure.reduced_formula
    lines = [
        f"data_{name}",
        f"_chemical_formula_structural   {structure.reduced_formula}",
        f"_chemical_formula_sum          '{structure.composition.formula}'",
        f"_cell_length_a     {a:.6f}",
        f"_cell_length_b     {b:.6f}",
        f"_cell_length_c     {c:.6f}",
        f"_cell_angle_alpha  {alpha:.6f}",
        f"_cell_angle_beta   {beta:.6f}",
        f"_cell_angle_gamma  {gamma:.6f}",
        f"_cell_volume       {structure.volume:.6f}",
        "_symmetry_space_group_name_H-M  'P 1'",
        "_symmetry_Int_Tables_number     1",
        "loop_",
        " _atom_site_type_symbol",
        " _atom_site_label",
        " _atom_site_occupancy",
        " _atom_site_fract_x",
        " _atom_site_fract_y",
        " _atom_site_fract_z",
    ]
    counters: Dict[str, int] = {}
    for site in structure.sites:
        symbol = site.element.symbol
        counters[symbol] = counters.get(symbol, 0) + 1
        x, y, z = site.frac_coords
        lines.append(
            f" {symbol}  {symbol}{counters[symbol]}  1.0  "
            f"{x:.6f}  {y:.6f}  {z:.6f}"
        )
    return "\n".join(lines) + "\n"


_NUMERIC = re.compile(r"^[-+]?\d*\.?\d+(\(\d+\))?$")


def _parse_value(token: str) -> float:
    """CIF numbers may carry an uncertainty suffix like 5.431(2)."""
    match = _NUMERIC.match(token)
    if not match:
        raise MatgenError(f"not a CIF number: {token!r}")
    return float(token.split("(")[0])


def _strip_symbol(label: str) -> str:
    """'Fe2+' / 'Fe1' / 'FE' → 'Fe'."""
    match = re.match(r"([A-Za-z]{1,2})", label)
    if not match:
        raise MatgenError(f"cannot extract element from {label!r}")
    raw = match.group(1)
    candidate = raw[0].upper() + raw[1:].lower()
    try:
        Element(candidate)
        return candidate
    except MatgenError:
        # Single-letter fallback: 'CL1' -> 'C' failed? try first letter.
        single = raw[0].upper()
        Element(single)
        return single


def structure_from_cif(text: str) -> Structure:
    """Parse the first data block of a CIF document."""
    cell: Dict[str, float] = {}
    loop_columns: List[str] = []
    rows: List[List[str]] = []
    in_loop_header = False
    in_atom_loop = False

    for raw_line in text.splitlines():
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("_cell_"):
            in_atom_loop = in_loop_header = False
            parts = line.split()
            if len(parts) >= 2:
                try:
                    cell[parts[0].lower()] = _parse_value(parts[1])
                except MatgenError:
                    pass
            continue
        if lowered == "loop_":
            in_loop_header = True
            in_atom_loop = False
            loop_columns = []
            continue
        if in_loop_header and lowered.startswith("_"):
            loop_columns.append(lowered)
            continue
        if in_loop_header:
            in_loop_header = False
            in_atom_loop = any("_atom_site" in c for c in loop_columns)
        if lowered.startswith("_") or lowered.startswith("data_"):
            in_atom_loop = False
            continue
        if in_atom_loop:
            tokens = shlex.split(line)
            if len(tokens) == len(loop_columns):
                rows.append(tokens)

    required = ["_cell_length_a", "_cell_length_b", "_cell_length_c",
                "_cell_angle_alpha", "_cell_angle_beta", "_cell_angle_gamma"]
    missing = [k for k in required if k not in cell]
    if missing:
        raise MatgenError(f"CIF missing cell parameters: {missing}")
    lattice = Lattice.from_parameters(
        cell["_cell_length_a"], cell["_cell_length_b"], cell["_cell_length_c"],
        cell["_cell_angle_alpha"], cell["_cell_angle_beta"],
        cell["_cell_angle_gamma"],
    )

    if not rows:
        raise MatgenError("CIF has no atom_site loop")

    def col(name: str) -> Optional[int]:
        for i, c in enumerate(loop_columns):
            if c == name:
                return i
        return None

    i_type = col("_atom_site_type_symbol")
    i_label = col("_atom_site_label")
    i_x = col("_atom_site_fract_x")
    i_y = col("_atom_site_fract_y")
    i_z = col("_atom_site_fract_z")
    if i_x is None or i_y is None or i_z is None:
        raise MatgenError("CIF atom loop lacks fractional coordinates")
    if i_type is None and i_label is None:
        raise MatgenError("CIF atom loop lacks element information")

    species: List[str] = []
    coords: List[Tuple[float, float, float]] = []
    for row in rows:
        source = row[i_type] if i_type is not None else row[i_label]
        species.append(_strip_symbol(source))
        coords.append((
            _parse_value(row[i_x]),
            _parse_value(row[i_y]),
            _parse_value(row[i_z]),
        ))
    return Structure(lattice, species, coords, validate_distances=False)


def write_cif_file(structure: Structure, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(structure_to_cif(structure))


def read_cif_file(path: str) -> Structure:
    with open(path, encoding="utf-8") as fh:
        return structure_from_cif(fh.read())
