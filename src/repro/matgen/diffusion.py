"""Working-ion diffusion estimates — the paper's named follow-up screen.

"Further computations can be used to screen promising candidates for other
important properties such as Li diffusivity (related to power delivered by
the cell)."  (§III, discussing Figure 1.)

We implement the classic *geometric* estimator used for fast pre-screening
before NEB calculations: the migration barrier grows as the ion squeezes
through the bottleneck of its hop path.

* hop path: the shortest periodic ion→ion (or ion→own-image) vector;
* bottleneck radius: the smallest clearance to any framework atom along
  that straight path (sampled densely, excluding the jump endpoints);
* barrier: ``E_a = E0 + k · max(0, r_ion − bottleneck)`` — an ion that fits
  the channel pays only the baseline, a pinched channel pays linearly —
  calibrated so open olivine channels land near 0.3–0.5 eV and tight
  close-packed frameworks above 0.8 eV, matching the qualitative ordering
  of real DFT-NEB studies;
* diffusivity: Arrhenius ``D = D0 · exp(-E_a / kT)``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import MatgenError
from .elements import Element
from .structure import Structure

__all__ = ["DiffusionEstimate", "estimate_diffusion", "rate_class"]

#: Boltzmann constant in eV/K.
KB_EV = 8.617333e-5

#: Attempt-frequency prefactor for the Arrhenius diffusivity (cm^2/s).
D0_CM2_S = 1e-3

#: Barrier model constants, calibrated per module docstring: the squeeze
#: term decays exponentially with the ion's clearance margin, so wide
#: channels approach the baseline and pinched ones pay up to ~2.5 eV extra.
_E_BASE = 0.25
_A_SQUEEZE = 2.5
_LAMBDA_A = 0.35

#: Effective migrating-ion radius: a fraction of the metallic radius
#: (cations shrink; Li ~ 0.7 Å effective, Na ~ 0.9 Å).
_ION_RADIUS_SCALE = 0.45


class DiffusionEstimate:
    """Geometric migration estimate for one working ion in one framework."""

    __slots__ = ("ion", "hop_distance", "bottleneck_radius", "barrier_ev")

    def __init__(self, ion: Element, hop_distance: float,
                 bottleneck_radius: float, barrier_ev: float):
        self.ion = ion
        self.hop_distance = hop_distance
        self.bottleneck_radius = bottleneck_radius
        self.barrier_ev = barrier_ev

    def diffusivity(self, temperature_k: float = 300.0) -> float:
        """Arrhenius diffusivity in cm²/s."""
        if temperature_k <= 0:
            raise MatgenError("temperature must be positive")
        return D0_CM2_S * math.exp(-self.barrier_ev / (KB_EV * temperature_k))

    def as_dict(self) -> dict:
        return {
            "ion": self.ion.symbol,
            "hop_distance": self.hop_distance,
            "bottleneck_radius": self.bottleneck_radius,
            "barrier_ev": self.barrier_ev,
            "diffusivity_300K": self.diffusivity(300.0),
            "rate_class": rate_class(self.barrier_ev),
        }

    def __repr__(self) -> str:
        return (
            f"DiffusionEstimate({self.ion.symbol}, Ea={self.barrier_ev:.2f} eV, "
            f"bottleneck={self.bottleneck_radius:.2f} A)"
        )


def rate_class(barrier_ev: float) -> str:
    """Coarse power-capability label used by the screening reports."""
    if barrier_ev < 0.4:
        return "high-rate"
    if barrier_ev < 0.7:
        return "moderate-rate"
    return "low-rate"


def _hop_vector(structure: Structure, ion: Element) -> Tuple[int, np.ndarray, float]:
    """Shortest ion→ion (or own periodic image) hop.

    Returns (source site index, cartesian hop vector, length).
    """
    ion_sites = [i for i, s in enumerate(structure.sites) if s.element == ion]
    if not ion_sites:
        raise MatgenError(f"structure contains no {ion.symbol}")
    lattice = structure.lattice
    best: Optional[Tuple[int, np.ndarray, float]] = None
    for i in ion_sites:
        fi = structure.sites[i].frac_coords
        # Other ion sites via minimum image.
        for j in ion_sites:
            if j == i:
                continue
            d, image = lattice.distance_and_image(
                fi, structure.sites[j].frac_coords
            )
            vec = lattice.cartesian(
                structure.sites[j].frac_coords + image - fi
            )
            if best is None or d < best[2]:
                best = (i, vec, d)
        # Own periodic images along each lattice vector.
        for axis in range(3):
            vec = structure.lattice.matrix[axis]
            d = float(np.linalg.norm(vec))
            if best is None or d < best[2]:
                best = (i, vec.copy(), d)
    assert best is not None
    return best


def _bottleneck(structure: Structure, ion: Element, source: int,
                hop_vec: np.ndarray, n_samples: int = 21) -> float:
    """Minimum clearance to framework atoms along the hop path (Å).

    Samples the interior of the straight path (endpoints excluded: the ion
    trivially 'collides' with its own start/end coordination shell).
    """
    lattice = structure.lattice
    start_cart = lattice.cartesian(structure.sites[source].frac_coords)
    framework = [
        s.frac_coords for s in structure.sites if s.element != ion
    ]
    if not framework:
        return float("inf")
    clearance = float("inf")
    for t in np.linspace(0.2, 0.8, n_samples):
        point = start_cart + t * hop_vec
        hits = lattice.get_points_in_sphere(framework, point, r=6.0)
        if not hits:
            continue
        nearest = min(d for _idx, d in hits)
        clearance = min(clearance, nearest)
    if clearance == float("inf"):
        raise MatgenError("no framework atoms within 6 A of the hop path")
    return clearance


def estimate_diffusion(structure: Structure, ion: str = "Li") -> DiffusionEstimate:
    """Geometric diffusion estimate for ``ion`` in ``structure``."""
    element = Element(ion)
    source, hop_vec, hop_len = _hop_vector(structure, element)
    clearance = _bottleneck(structure, element, source, hop_vec)
    # Clearance measures center-to-center distance; subtract the framework
    # atom's own radius to get the channel radius available to the ion.
    r_ion = element.atomic_radius * _ION_RADIUS_SCALE
    gap = clearance - r_ion  # clearance margin of the migrating ion
    barrier = _E_BASE + _A_SQUEEZE * math.exp(-max(0.0, gap) / _LAMBDA_A)
    if gap < 0:
        # Physically blocked channel: add the hard-contact penalty too.
        barrier += _A_SQUEEZE * (-gap)
    return DiffusionEstimate(element, hop_len, clearance, barrier)
