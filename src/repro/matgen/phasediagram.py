"""Thermodynamic phase diagrams: convex hulls over composition space.

This is the workhorse analysis of the paper's discovery loop ("the user will
analyze the data (e), using the open analytics platform pymatgen, to
determine the stability ... of the new materials", §III-A).  Given computed
total energies, we build the formation-energy convex hull of a chemical
system, classify entries as stable/unstable, compute energy-above-hull, and
find decomposition reactions.

Energy-above-hull and decompositions are computed exactly with a linear
program over all entries (minimize mixture energy at fixed composition),
which is the textbook formulation and robust in any dimension.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.optimize import linprog

from ..errors import MatgenError
from .composition import Composition
from .elements import Element

__all__ = ["PDEntry", "PhaseDiagram"]


class PDEntry:
    """A composition with a total energy (eV for the formula as given)."""

    __slots__ = ("composition", "energy", "entry_id", "attributes")

    def __init__(
        self,
        composition: Union[Composition, str, Mapping],
        energy: float,
        entry_id: Optional[str] = None,
        attributes: Optional[dict] = None,
    ):
        self.composition = (
            composition
            if isinstance(composition, Composition)
            else Composition(composition)
        )
        self.energy = float(energy)
        self.entry_id = entry_id
        self.attributes = dict(attributes or {})

    @property
    def energy_per_atom(self) -> float:
        return self.energy / self.composition.num_atoms

    @property
    def is_element(self) -> bool:
        return self.composition.is_element

    def __repr__(self) -> str:
        return (
            f"PDEntry({self.composition.reduced_formula}, "
            f"e/atom={self.energy_per_atom:.4f})"
        )

    def as_dict(self) -> dict:
        return {
            "composition": self.composition.as_dict(),
            "energy": self.energy,
            "entry_id": self.entry_id,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PDEntry":
        return cls(d["composition"], d["energy"], d.get("entry_id"),
                   d.get("attributes"))


class PhaseDiagram:
    """Formation-energy convex hull of a chemical system.

    Requires at least one entry for every pure element present (the
    elemental references defining zero formation energy).
    """

    def __init__(self, entries: Sequence[PDEntry], tol: float = 1e-8):
        if not entries:
            raise MatgenError("phase diagram needs at least one entry")
        self.entries = list(entries)
        self.tol = tol
        self.elements: List[Element] = sorted(
            {el for e in entries for el in e.composition.elements}
        )
        self._el_refs = self._find_el_refs()
        # Pre-compute composition fractions and formation energies per atom.
        self._fracs = np.array(
            [
                [e.composition.get_atomic_fraction(el) for el in self.elements]
                for e in self.entries
            ]
        )
        self._form_epa = np.array(
            [self.get_form_energy_per_atom(e) for e in self.entries]
        )

    def _find_el_refs(self) -> Dict[Element, PDEntry]:
        refs: Dict[Element, PDEntry] = {}
        for entry in self.entries:
            if entry.is_element:
                el = entry.composition.elements[0]
                if el not in refs or entry.energy_per_atom < refs[el].energy_per_atom:
                    refs[el] = entry
        missing = [el.symbol for el in self.elements if el not in refs]
        if missing:
            raise MatgenError(
                f"missing elemental reference entries for: {missing}"
            )
        return refs

    @property
    def el_refs(self) -> Dict[Element, PDEntry]:
        """Lowest-energy pure-element entry per element."""
        return dict(self._el_refs)

    # -- formation energies ---------------------------------------------------

    def get_form_energy(self, entry: PDEntry) -> float:
        """Formation energy (eV) relative to elemental references."""
        comp = entry.composition
        ref = sum(
            comp[el] * self._el_refs[el].energy_per_atom
            for el in comp.elements
        )
        return entry.energy - ref

    def get_form_energy_per_atom(self, entry: PDEntry) -> float:
        return self.get_form_energy(entry) / entry.composition.num_atoms

    # -- hull queries ----------------------------------------------------------------

    def _hull_energy_and_mix(
        self, composition: Composition
    ) -> Tuple[float, List[Tuple[PDEntry, float]]]:
        """LP: cheapest mixture of entries matching ``composition``.

        Returns (hull formation energy per atom, [(entry, atom_fraction)]).
        """
        target = np.array(
            [composition.get_atomic_fraction(el) for el in self.elements]
        )
        if any(
            composition[el] > 0 and el not in self._el_refs
            for el in composition.elements
        ):
            raise MatgenError(
                f"composition {composition} outside the diagram's chemical system"
            )
        n = len(self.entries)
        # Variables: atomic fraction drawn from each entry.
        a_eq = np.vstack([self._fracs.T, np.ones(n)])
        b_eq = np.concatenate([target, [1.0]])
        result = linprog(
            c=self._form_epa,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0, None)] * n,
            method="highs",
        )
        if not result.success:
            raise MatgenError(
                f"hull LP failed for {composition}: {result.message}"
            )
        mix = [
            (self.entries[i], float(result.x[i]))
            for i in range(n)
            if result.x[i] > 1e-8
        ]
        return float(result.fun), mix

    def get_hull_energy_per_atom(self, composition: Composition) -> float:
        """Formation energy per atom of the hull at ``composition``."""
        energy, _ = self._hull_energy_and_mix(composition)
        return energy

    def get_e_above_hull(self, entry: PDEntry) -> float:
        """Energy above hull per atom (0 for stable phases)."""
        hull = self.get_hull_energy_per_atom(entry.composition)
        e = self.get_form_energy_per_atom(entry) - hull
        return max(0.0, e) if e > -1e-7 else e

    def get_decomposition(
        self, composition: Composition
    ) -> Dict[PDEntry, float]:
        """Stable phases (and atomic fractions) the composition decomposes to."""
        _, mix = self._hull_energy_and_mix(composition)
        return {entry: frac for entry, frac in mix}

    @property
    def stable_entries(self) -> List[PDEntry]:
        """Entries on the hull (e_above_hull ≈ 0), lowest energy per composition."""
        # Keep only the lowest-energy entry at each reduced composition.
        best: Dict[str, PDEntry] = {}
        for entry in self.entries:
            key = entry.composition.fractional_composition().formula
            if key not in best or entry.energy_per_atom < best[key].energy_per_atom:
                best[key] = entry
        return [
            e for e in best.values() if self.get_e_above_hull(e) < 1e-6
        ]

    @property
    def unstable_entries(self) -> List[PDEntry]:
        stable = set(id(e) for e in self.stable_entries)
        return [e for e in self.entries if id(e) not in stable]

    def is_stable(self, entry: PDEntry) -> bool:
        return self.get_e_above_hull(entry) < 1e-6

    # -- reaction energetics --------------------------------------------------------------

    def get_reaction_energy(
        self, reactants: Sequence[PDEntry], products: Sequence[PDEntry]
    ) -> float:
        """E(products) - E(reactants), requiring balanced compositions."""
        lhs = reactants[0].composition
        for r in reactants[1:]:
            lhs = lhs + r.composition
        rhs = products[0].composition
        for p in products[1:]:
            rhs = rhs + p.composition
        if not lhs.almost_equals(rhs, rtol=1e-4):
            raise MatgenError(
                f"unbalanced reaction: {lhs.formula} -> {rhs.formula}"
            )
        return sum(p.energy for p in products) - sum(r.energy for r in reactants)

    def summary(self) -> dict:
        """Serializable overview used by the phase-diagram builder."""
        stable = self.stable_entries
        return {
            # Sorted by symbol, matching Composition.chemical_system.
            "chemical_system": "-".join(sorted(el.symbol for el in self.elements)),
            "n_entries": len(self.entries),
            "n_stable": len(stable),
            "stable_formulas": sorted(
                e.composition.reduced_formula for e in stable
            ),
            "el_refs": {
                el.symbol: ref.energy_per_atom
                for el, ref in self._el_refs.items()
            },
        }
