"""Crystal-structure prototypes used to generate the synthetic ICSD.

The real Materials Project seeded its datastore from the ICSD (§III-B1).
Offline, we generate structures from classic prototype lattices — rocksalt,
CsCl, fluorite, zincblende, perovskite, spinel, olivine-like, layered
AMO₂ — substituting elements and scaling the cell by tabulated atomic
radii so geometries stay physically plausible (no overlapping atoms, sane
densities).  That is everything the downstream code paths (dedup hashes,
XRD, density, pseudo-DFT energies) actually consume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import StructureError
from .elements import Element
from .lattice import Lattice
from .structure import Structure

__all__ = ["PROTOTYPES", "make_prototype", "prototype_names"]


def _radius_sum(*symbols: str) -> float:
    return sum(Element(s).atomic_radius for s in symbols)


def rocksalt(a_el: str, b_el: str) -> Structure:
    """AB rocksalt (NaCl type), conventional cubic cell, 4 formula units."""
    a = 2.0 * _radius_sum(a_el, b_el) * 0.95
    lattice = Lattice.cubic(a)
    a_sites = [[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]]
    b_sites = [[0.5, 0.5, 0.5], [0, 0, 0.5], [0, 0.5, 0], [0.5, 0, 0]]
    species = [a_el] * 4 + [b_el] * 4
    return Structure(lattice, species, a_sites + b_sites, validate_distances=False)


def cscl(a_el: str, b_el: str) -> Structure:
    """AB CsCl type, simple cubic with B at the body center."""
    a = 2.0 * _radius_sum(a_el, b_el) / (3 ** 0.5) * 1.05
    lattice = Lattice.cubic(a)
    return Structure(
        lattice, [a_el, b_el], [[0, 0, 0], [0.5, 0.5, 0.5]], validate_distances=False
    )


def fluorite(a_el: str, b_el: str) -> Structure:
    """AB2 fluorite (CaF2 type), conventional cubic cell."""
    a = 4.0 / (3 ** 0.5) * _radius_sum(a_el, b_el) * 1.02
    lattice = Lattice.cubic(a)
    a_sites = [[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]]
    b_sites = [
        [0.25, 0.25, 0.25], [0.75, 0.25, 0.25], [0.25, 0.75, 0.25], [0.25, 0.25, 0.75],
        [0.75, 0.75, 0.25], [0.75, 0.25, 0.75], [0.25, 0.75, 0.75], [0.75, 0.75, 0.75],
    ]
    species = [a_el] * 4 + [b_el] * 8
    return Structure(lattice, species, a_sites + b_sites, validate_distances=False)


def zincblende(a_el: str, b_el: str) -> Structure:
    """AB zincblende (sphalerite), conventional cubic cell."""
    a = 4.0 / (3 ** 0.5) * _radius_sum(a_el, b_el) * 0.98
    lattice = Lattice.cubic(a)
    a_sites = [[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]]
    b_sites = [[0.25, 0.25, 0.25], [0.75, 0.75, 0.25], [0.75, 0.25, 0.75], [0.25, 0.75, 0.75]]
    species = [a_el] * 4 + [b_el] * 4
    return Structure(lattice, species, a_sites + b_sites, validate_distances=False)


def perovskite(a_el: str, b_el: str, x_el: str = "O") -> Structure:
    """ABX3 cubic perovskite (CaTiO3 type)."""
    a = 2.0 * _radius_sum(b_el, x_el) * 0.93
    lattice = Lattice.cubic(a)
    species = [a_el, b_el, x_el, x_el, x_el]
    coords = [
        [0, 0, 0],          # A corner
        [0.5, 0.5, 0.5],    # B center
        [0.5, 0.5, 0],      # X face centers
        [0.5, 0, 0.5],
        [0, 0.5, 0.5],
    ]
    return Structure(lattice, species, coords, validate_distances=False)


def spinel(a_el: str, b_el: str, x_el: str = "O") -> Structure:
    """AB2X4 spinel-stoichiometry cell, one formula unit.

    Not the true 56-atom Fd-3m arrangement — an idealized cubic cell with
    the same stoichiometry, octahedral B and tetrahedral X environments,
    and plausible bond lengths (~2 Å for oxides), which is the fidelity the
    synthetic pipeline needs (see DESIGN.md substitutions).
    """
    a = 2.2 * _radius_sum(b_el, x_el)
    lattice = Lattice.cubic(a)
    species = [a_el, b_el, b_el] + [x_el] * 4
    coords = [
        [0.0, 0.0, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
        [0.25, 0.25, 0.25],
        [0.75, 0.75, 0.25],
        [0.75, 0.25, 0.75],
        [0.25, 0.75, 0.75],
    ]
    return Structure(lattice, species, coords, validate_distances=False)


def olivine(a_el: str, m_el: str, t_el: str = "P", x_el: str = "O") -> Structure:
    """AMTX4 olivine-like structure (LiFePO4 family), one formula unit.

    Real olivine has 28 atoms (Pnma, 4 f.u.); we build a single-f.u.
    orthorhombic analog with the same stoichiometry and plausible bond
    lengths, sufficient for energies/XRD/dedup at synthetic-data fidelity.
    """
    scale = _radius_sum(m_el, x_el)
    lattice = Lattice.orthorhombic(3.2 * scale, 2.0 * scale, 1.6 * scale)
    species = [a_el, m_el, t_el] + [x_el] * 4
    coords = [
        [0.0, 0.0, 0.0],       # alkali channel site
        [0.5, 0.25, 0.5],      # transition metal octahedron
        [0.25, 0.75, 0.25],    # tetrahedral T site
        [0.25, 0.55, 0.55],    # O around T/M
        [0.45, 0.95, 0.20],
        [0.70, 0.40, 0.25],
        [0.60, 0.10, 0.80],
    ]
    return Structure(lattice, species, coords, validate_distances=False)


def layered_amo2(a_el: str, m_el: str, x_el: str = "O") -> Structure:
    """AMO2 layered rock-salt derivative (alpha-NaFeO2 / LiCoO2 type)."""
    a = 1.25 * _radius_sum(m_el, x_el)
    c = 4.9 * _radius_sum(a_el, x_el) / 1.9
    lattice = Lattice.hexagonal(a, c)
    species = [a_el, m_el, x_el, x_el]
    coords = [
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 0.5],
        [1 / 3, 2 / 3, 0.25],
        [2 / 3, 1 / 3, 0.75],
    ]
    return Structure(lattice, species, coords, validate_distances=False)


def bcc_element(el: str) -> Structure:
    """Elemental body-centered cubic reference crystal."""
    a = 4.0 / (3 ** 0.5) * Element(el).atomic_radius
    lattice = Lattice.cubic(a)
    return Structure(lattice, [el, el], [[0, 0, 0], [0.5, 0.5, 0.5]],
                     validate_distances=False)


def fcc_element(el: str) -> Structure:
    """Elemental face-centered cubic reference crystal."""
    a = 2.0 * (2 ** 0.5) * Element(el).atomic_radius
    lattice = Lattice.cubic(a)
    coords = [[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]]
    return Structure(lattice, [el] * 4, coords, validate_distances=False)


#: Registry: name -> (builder, arity) where arity is the number of element args.
PROTOTYPES: Dict[str, tuple] = {
    "rocksalt": (rocksalt, 2),
    "cscl": (cscl, 2),
    "fluorite": (fluorite, 2),
    "zincblende": (zincblende, 2),
    "perovskite": (perovskite, 2),
    "spinel": (spinel, 2),
    "olivine": (olivine, 2),
    "layered": (layered_amo2, 2),
    "bcc": (bcc_element, 1),
    "fcc": (fcc_element, 1),
}


def prototype_names() -> List[str]:
    return sorted(PROTOTYPES)


def make_prototype(name: str, elements: Sequence[str]) -> Structure:
    """Instantiate prototype ``name`` with the given element symbols."""
    entry = PROTOTYPES.get(name)
    if entry is None:
        raise StructureError(f"unknown prototype {name!r}")
    builder, arity = entry
    if len(elements) != arity:
        raise StructureError(
            f"prototype {name!r} needs {arity} elements, got {len(elements)}"
        )
    return builder(*elements)
