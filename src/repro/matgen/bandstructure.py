"""Electronic band structures (the paper's "3,000 bandstructures").

The pseudo-DFT engine produces bands from a nearest-neighbour tight-binding
model on the crystal: one band per (site, orbital) with dispersion set by a
hopping integral that decays with bond length, plus an on-site term from
electronegativity.  That yields genuinely structure-dependent band gaps,
bandwidths, and k-resolved extrema — everything the Web UI visualizes and
the materials builder stores.

The container mirrors pymatgen's BandStructureSymmLine at the fidelity the
paper's pipeline needs: energies on a symmetry k-path, Fermi level, gap
analysis (direct/indirect), and JSON round-tripping.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MatgenError
from .structure import Structure

__all__ = ["KPath", "BandStructure", "compute_band_structure"]

#: Conventional k-path for a (pseudo-)cubic cell, in fractional reciprocal coords.
_CUBIC_PATH: List[Tuple[str, Tuple[float, float, float]]] = [
    ("Γ", (0.0, 0.0, 0.0)),
    ("X", (0.5, 0.0, 0.0)),
    ("M", (0.5, 0.5, 0.0)),
    ("Γ", (0.0, 0.0, 0.0)),
    ("R", (0.5, 0.5, 0.5)),
]


class KPath:
    """A piecewise-linear path through the Brillouin zone."""

    def __init__(
        self,
        vertices: Optional[Sequence[Tuple[str, Tuple[float, float, float]]]] = None,
        points_per_segment: int = 20,
    ):
        self.vertices = list(vertices or _CUBIC_PATH)
        if len(self.vertices) < 2:
            raise MatgenError("k-path needs at least two vertices")
        if points_per_segment < 2:
            raise MatgenError("points_per_segment must be >= 2")
        self.points_per_segment = points_per_segment

    @property
    def labels(self) -> List[str]:
        return [label for label, _ in self.vertices]

    def kpoints(self) -> Tuple[np.ndarray, List[Optional[str]]]:
        """Sampled k-points plus a label list (None off the vertices)."""
        pts: List[np.ndarray] = []
        labels: List[Optional[str]] = []
        for (la, va), (lb, vb) in zip(self.vertices, self.vertices[1:]):
            seg = np.linspace(va, vb, self.points_per_segment, endpoint=False)
            for i, k in enumerate(seg):
                pts.append(k)
                labels.append(la if i == 0 else None)
        pts.append(np.asarray(self.vertices[-1][1], dtype=float))
        labels.append(self.vertices[-1][0])
        return np.array(pts), labels


class BandStructure:
    """Band energies along a k-path, with gap analysis."""

    def __init__(
        self,
        kpoints: np.ndarray,
        bands: np.ndarray,
        fermi_level: float,
        labels: Optional[List[Optional[str]]] = None,
        formula: str = "",
    ):
        bands = np.asarray(bands, dtype=float)
        kpoints = np.asarray(kpoints, dtype=float)
        if bands.ndim != 2 or bands.shape[1] != len(kpoints):
            raise MatgenError(
                f"bands must be (n_bands, n_kpoints); got {bands.shape} "
                f"for {len(kpoints)} k-points"
            )
        self.kpoints = kpoints
        self.bands = bands
        self.fermi_level = float(fermi_level)
        self.labels = labels or [None] * len(kpoints)
        self.formula = formula

    @property
    def n_bands(self) -> int:
        return self.bands.shape[0]

    @property
    def vbm(self) -> Optional[dict]:
        """Valence-band maximum: highest energy below the Fermi level."""
        below = self.bands[self.bands <= self.fermi_level + 1e-12]
        if below.size == 0:
            return None
        e = float(below.max())
        band, k = np.argwhere(self.bands == below.max())[0]
        return {"energy": e, "band": int(band), "kpoint_index": int(k)}

    @property
    def cbm(self) -> Optional[dict]:
        """Conduction-band minimum: lowest energy above the Fermi level."""
        above = self.bands[self.bands > self.fermi_level + 1e-12]
        if above.size == 0:
            return None
        e = float(above.min())
        band, k = np.argwhere(self.bands == above.min())[0]
        return {"energy": e, "band": int(band), "kpoint_index": int(k)}

    @property
    def is_metal(self) -> bool:
        """Metallic if any single band crosses the Fermi level."""
        crosses = (self.bands.min(axis=1) < self.fermi_level) & (
            self.bands.max(axis=1) > self.fermi_level
        )
        return bool(crosses.any())

    @property
    def band_gap(self) -> float:
        """Fundamental gap in eV (0 for metals)."""
        if self.is_metal:
            return 0.0
        vbm, cbm = self.vbm, self.cbm
        if vbm is None or cbm is None:
            return 0.0
        return max(0.0, cbm["energy"] - vbm["energy"])

    @property
    def is_gap_direct(self) -> bool:
        if self.is_metal or self.band_gap == 0.0:
            return False
        return self.vbm["kpoint_index"] == self.cbm["kpoint_index"]

    def get_band_gap_summary(self) -> dict:
        return {
            "band_gap": self.band_gap,
            "is_metal": self.is_metal,
            "is_direct": self.is_gap_direct,
        }

    def as_dict(self) -> dict:
        return {
            "formula": self.formula,
            "kpoints": self.kpoints.tolist(),
            "bands": self.bands.tolist(),
            "fermi_level": self.fermi_level,
            "labels": self.labels,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BandStructure":
        return cls(
            np.array(d["kpoints"]),
            np.array(d["bands"]),
            d["fermi_level"],
            d.get("labels"),
            d.get("formula", ""),
        )


def compute_band_structure(
    structure: Structure,
    kpath: Optional[KPath] = None,
    hopping_prefactor: float = 2.0,
    gap_scale: float = 2.2,
) -> BandStructure:
    """Tight-binding-flavoured band structure of ``structure``.

    One band per site.  On-site energies come from electronegativity
    (χ above/below the structure mean → anion/cation bands split by an
    ionicity-scaled offset), hoppings decay exponentially with the
    shortest bond length.  The Fermi level is placed mid-gap between the
    lowest N_occupied bands, where occupation is half the sites (one
    "frontier orbital" each) — a cartoon, but a deterministic one whose
    gap grows with ionicity exactly like real oxides vs. alloys.
    """
    kpath = kpath or KPath()
    kpoints, labels = kpath.kpoints()

    chis = np.array([s.element.chi for s in structure.sites])
    chi_mean = float(chis.mean())
    onsite = (chis - chi_mean) * gap_scale * -1.0  # anions sink, cations rise

    bond = structure.min_bond_length()
    t = hopping_prefactor * math.exp(-bond / 2.5)

    n_sites = structure.num_sites
    bands = np.zeros((n_sites, len(kpoints)))
    # Simple-cubic-like dispersion per band (cosine in each reciprocal dir),
    # scaled by the hopping; band index ordering by on-site energy.
    order = np.argsort(onsite)
    for row, site_idx in enumerate(order):
        eps = onsite[site_idx]
        phase = 2 * math.pi * kpoints  # fractional k
        disp = -2.0 * t * np.cos(phase).sum(axis=1)
        bands[row] = eps + disp / 3.0

    n_occ = max(1, n_sites // 2)
    e_occ_max = bands[:n_occ].max()
    e_unocc_min = bands[n_occ:].min() if n_occ < n_sites else e_occ_max
    fermi = 0.5 * (e_occ_max + e_unocc_min)
    return BandStructure(
        kpoints, bands, fermi, labels, formula=structure.reduced_formula
    )
