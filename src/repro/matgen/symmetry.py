"""Crystal symmetry analysis: lattice systems and symmetry operations.

pymatgen ships a full spglib-backed symmetry layer; the reproduction
implements the honest core of it from scratch:

* :func:`lattice_system` classifies the cell (cubic, tetragonal, ...) from
  its parameters;
* :class:`SymmetryFinder` enumerates the crystal's *space-group operations*
  ``(R | t)``: candidate rotation parts are all integer matrices (entries
  −1/0/1) that preserve the lattice metric tensor ``G = M Mᵀ`` — the exact
  condition ``Rᵀ G R = G`` — and translation parts are tested against the
  site set modulo lattice translations.  For the primitive/conventional
  cells this package generates, integer rotation parts are exact, so the
  operation count is the true space-group order of the cell (rocksalt's
  conventional cell: 192 = 48 point ops × 4 centering translations).

The operation count feeds structure fingerprinting and lets tests assert
real crystallographic facts (cubic NaCl ≫ olivine in symmetry).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .lattice import Lattice
from .structure import Structure

__all__ = ["lattice_system", "SymmetryOperation", "SymmetryFinder"]


def lattice_system(lattice: Lattice, tol: float = 1e-3) -> str:
    """Classify the lattice into one of the seven lattice systems."""
    a, b, c, alpha, beta, gamma = lattice.parameters

    def eq(x: float, y: float) -> bool:
        return abs(x - y) <= tol * max(1.0, abs(x), abs(y))

    lengths_equal = (eq(a, b), eq(b, c), eq(a, c))
    right = (eq(alpha, 90), eq(beta, 90), eq(gamma, 90))

    if all(lengths_equal) and all(right):
        return "cubic"
    if all(lengths_equal) and eq(alpha, beta) and eq(beta, gamma):
        return "rhombohedral"
    if lengths_equal[0] and all(right[:2]) and eq(gamma, 120):
        return "hexagonal"
    if sum(lengths_equal) >= 1 and all(right):
        return "tetragonal"
    if all(right):
        return "orthorhombic"
    if sum(right) == 2:
        return "monoclinic"
    return "triclinic"


class SymmetryOperation:
    """A space-group operation: fractional rotation R and translation t."""

    __slots__ = ("rotation", "translation")

    def __init__(self, rotation: np.ndarray, translation: np.ndarray):
        self.rotation = np.asarray(rotation, dtype=int)
        self.translation = np.asarray(translation, dtype=float) % 1.0

    def apply(self, frac_coords: Sequence[float]) -> np.ndarray:
        return (self.rotation @ np.asarray(frac_coords) + self.translation) % 1.0

    @property
    def is_identity(self) -> bool:
        return (
            np.array_equal(self.rotation, np.eye(3, dtype=int))
            and np.allclose(self.translation, 0.0)
        )

    @property
    def is_pure_translation(self) -> bool:
        return np.array_equal(self.rotation, np.eye(3, dtype=int))

    @property
    def determinant(self) -> int:
        return int(round(np.linalg.det(self.rotation)))

    def __repr__(self) -> str:
        t = ", ".join(f"{x:.3f}" for x in self.translation)
        return f"SymmetryOperation(det={self.determinant}, t=({t}))"


_ALL_UNIMODULAR: Optional[np.ndarray] = None


def _unimodular_candidates() -> np.ndarray:
    """All 3x3 matrices with entries in {-1, 0, 1} and det = ±1 (cached).

    Built once, vectorized: 19,683 candidates reduce to 3,480 unimodular
    matrices shared by every lattice.
    """
    global _ALL_UNIMODULAR
    if _ALL_UNIMODULAR is None:
        grids = np.meshgrid(*([np.array([-1, 0, 1])] * 9), indexing="ij")
        flat = np.stack([g.ravel() for g in grids], axis=1)  # (19683, 9)
        r = flat.reshape(-1, 3, 3)
        det = (
            r[:, 0, 0] * (r[:, 1, 1] * r[:, 2, 2] - r[:, 1, 2] * r[:, 2, 1])
            - r[:, 0, 1] * (r[:, 1, 0] * r[:, 2, 2] - r[:, 1, 2] * r[:, 2, 0])
            + r[:, 0, 2] * (r[:, 1, 0] * r[:, 2, 1] - r[:, 1, 1] * r[:, 2, 0])
        )
        _ALL_UNIMODULAR = r[np.abs(det) == 1]
    return _ALL_UNIMODULAR


def _candidate_rotations(lattice: Lattice, tol: float) -> List[np.ndarray]:
    """Integer fractional matrices preserving the metric tensor."""
    m = lattice.matrix
    metric = m @ m.T
    candidates = _unimodular_candidates()
    # R^T G R for every candidate at once.
    transformed = np.einsum("nji,jk,nkl->nil", candidates, metric, candidates)
    keep = np.abs(transformed - metric).max(axis=(1, 2)) <= (
        tol * np.abs(metric).max()
    )
    return [c for c in candidates[keep]]


class SymmetryFinder:
    """Finds the space-group operations of a structure's cell."""

    def __init__(self, structure: Structure, tol: float = 1e-3):
        self.structure = structure
        self.tol = tol
        self._operations: Optional[List[SymmetryOperation]] = None

    def _site_groups(self) -> dict:
        groups: dict = {}
        for site in self.structure.sites:
            groups.setdefault(site.element.symbol, []).append(
                site.frac_coords % 1.0
            )
        return {k: np.array(v) for k, v in groups.items()}

    @staticmethod
    def _coords_match(target: np.ndarray, pool: np.ndarray, tol: float) -> bool:
        """Is ``target`` (mod 1) within ``tol`` of some row of ``pool``?"""
        delta = pool - target
        delta -= np.round(delta)
        return bool((np.abs(delta).max(axis=1) < tol).any())

    def operations(self) -> List[SymmetryOperation]:
        """All (R | t) mapping the structure onto itself."""
        if self._operations is not None:
            return self._operations
        groups = self._site_groups()
        # Smallest orbit anchors the translation search.
        anchor_symbol = min(groups, key=lambda s: len(groups[s]))
        anchor = groups[anchor_symbol]
        ops: List[SymmetryOperation] = []
        for rotation in _candidate_rotations(self.structure.lattice, self.tol):
            rotated_anchor0 = rotation @ anchor[0]
            for target in anchor:
                translation = (target - rotated_anchor0) % 1.0
                candidate = SymmetryOperation(rotation, translation)
                if self._maps_structure(candidate, groups):
                    ops.append(candidate)
        self._operations = ops
        return ops

    def _maps_structure(self, op: SymmetryOperation, groups: dict) -> bool:
        for coords in groups.values():
            transformed = (coords @ op.rotation.T + op.translation) % 1.0
            for row in transformed:
                if not self._coords_match(row, coords, self.tol * 10):
                    return False
        return True

    # -- derived quantities ------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of space-group operations of this cell."""
        return len(self.operations())

    @property
    def point_group_order(self) -> int:
        """Distinct rotation parts (the point-group order)."""
        seen = {op.rotation.tobytes() for op in self.operations()}
        return len(seen)

    @property
    def n_centering_translations(self) -> int:
        """Pure translations (identity rotation), including the trivial one."""
        return sum(1 for op in self.operations() if op.is_pure_translation)

    @property
    def is_centrosymmetric(self) -> bool:
        inversion = -np.eye(3, dtype=int)
        return any(
            np.array_equal(op.rotation, inversion) for op in self.operations()
        )

    def summary(self) -> dict:
        return {
            "lattice_system": lattice_system(self.structure.lattice),
            "n_operations": self.order,
            "point_group_order": self.point_group_order,
            "n_centering": self.n_centering_translations,
            "centrosymmetric": self.is_centrosymmetric,
        }
