"""X-ray diffraction patterns (the paper's "diffraction patterns" collection).

A real kinematic XRD calculation: enumerate (hkl) plane families allowed by
Bragg's law for Cu-Kα radiation, compute structure factors

    F(hkl) = Σ_j f_j · exp(2πi · hkl·r_j)

with an atomic form-factor proxy ``f_j ≈ Z_j · exp(-B (sinθ/λ)²)``, apply
the Lorentz-polarization correction, merge symmetry-equivalent reflections
at equal 2θ, and normalize intensities to 100.  The resulting peak lists
are what the Web UI renders as "pan and zoom real-time visualizations of
... diffraction patterns" (§III-D1).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..errors import MatgenError
from .structure import Structure

__all__ = ["XRDPattern", "XRDCalculator", "CU_KA_WAVELENGTH"]

#: Cu K-alpha wavelength in Å.
CU_KA_WAVELENGTH = 1.54184


class XRDPattern:
    """A computed powder pattern: parallel arrays of 2θ, intensity, hkl."""

    def __init__(
        self,
        two_theta: List[float],
        intensity: List[float],
        hkls: List[Tuple[int, int, int]],
        d_spacings: List[float],
        wavelength: float,
    ):
        self.two_theta = two_theta
        self.intensity = intensity
        self.hkls = hkls
        self.d_spacings = d_spacings
        self.wavelength = wavelength

    def __len__(self) -> int:
        return len(self.two_theta)

    @property
    def strongest_peak(self) -> dict:
        if not self.two_theta:
            raise MatgenError("empty pattern")
        i = int(np.argmax(self.intensity))
        return {
            "two_theta": self.two_theta[i],
            "intensity": self.intensity[i],
            "hkl": self.hkls[i],
            "d": self.d_spacings[i],
        }

    def as_dict(self) -> dict:
        return {
            "wavelength": self.wavelength,
            "peaks": [
                {
                    "two_theta": t,
                    "intensity": i,
                    "hkl": list(h),
                    "d": d,
                }
                for t, i, h, d in zip(
                    self.two_theta, self.intensity, self.hkls, self.d_spacings
                )
            ],
        }


class XRDCalculator:
    """Kinematic powder XRD calculator.

    Parameters
    ----------
    wavelength:
        X-ray wavelength in Å (default Cu-Kα).
    two_theta_range:
        Angular window in degrees.
    debye_waller_b:
        Isotropic temperature factor B in Å² for the form-factor falloff.
    """

    def __init__(
        self,
        wavelength: float = CU_KA_WAVELENGTH,
        two_theta_range: Tuple[float, float] = (10.0, 90.0),
        debye_waller_b: float = 1.0,
    ):
        if wavelength <= 0:
            raise MatgenError("wavelength must be positive")
        self.wavelength = wavelength
        self.two_theta_range = two_theta_range
        self.debye_waller_b = debye_waller_b

    def _max_hkl(self, structure: Structure) -> int:
        # sinθ ≤ 1 → d ≥ λ/2; generous bound on |hkl| from shortest axis.
        d_min = self.wavelength / 2.0
        return max(1, int(math.ceil(max(structure.lattice.lengths) / d_min)))

    def get_pattern(self, structure: Structure, scaled: bool = True) -> XRDPattern:
        """Compute the powder pattern of ``structure``.

        Fully vectorized: the (2h+1)³ reflection grid, Bragg filter,
        structure factors and Lorentz-polarization corrections are single
        numpy expressions (the original per-reflection Python loop was the
        pipeline's hottest kernel — ~30× slower).
        """
        lam = self.wavelength
        lo, hi = self.two_theta_range
        hmax = self._max_hkl(structure)
        lattice = structure.lattice
        frac = np.array([s.frac_coords for s in structure.sites])
        zs = np.array([s.element.Z for s in structure.sites], dtype=float)

        axis = np.arange(-hmax, hmax + 1)
        hh, kk, ll = np.meshgrid(axis, axis, axis, indexing="ij")
        hkls = np.stack([hh.ravel(), kk.ravel(), ll.ravel()], axis=1)
        hkls = hkls[np.any(hkls != 0, axis=1)]

        # Bragg filter: d-spacings and scattering angles for all hkl at once.
        inv_m = np.linalg.inv(lattice.matrix)
        g = hkls @ inv_m  # rows of the (no-2π) reciprocal metric
        d = 1.0 / np.linalg.norm(g, axis=1)
        sin_theta = lam / (2.0 * d)
        in_sphere = sin_theta <= 1.0
        theta = np.arcsin(np.where(in_sphere, sin_theta, 0.0))
        two_theta = np.degrees(2 * theta)
        keep = in_sphere & (two_theta >= lo) & (two_theta <= hi)
        hkls, d, theta, two_theta = hkls[keep], d[keep], theta[keep], two_theta[keep]
        sin_theta = sin_theta[keep]

        # Structure factors: (n_hkl, n_sites) phase matrix in one product.
        s_over_lam = sin_theta / lam
        form = zs[None, :] * np.exp(
            -self.debye_waller_b * (s_over_lam ** 2)[:, None]
        )
        phases = 2.0 * math.pi * (hkls @ frac.T)
        f_hkl = np.sum(form * np.exp(1j * phases), axis=1)
        i_hkl = np.abs(f_hkl) ** 2
        lp = (1 + np.cos(2 * theta) ** 2) / (
            np.sin(theta) ** 2 * np.cos(theta)
        )
        intensity = i_hkl * lp

        # Merge symmetry-equivalent reflections at equal 2θ bins.
        peaks: Dict[int, dict] = {}
        for idx in np.nonzero(i_hkl >= 1e-8)[0]:
            key = int(round(two_theta[idx] * 100))
            slot = peaks.setdefault(
                key,
                {"two_theta": float(two_theta[idx]), "intensity": 0.0,
                 "hkl": tuple(int(abs(x)) for x in hkls[idx]),
                 "d": float(d[idx])},
            )
            slot["intensity"] += float(intensity[idx])

        ordered = sorted(peaks.values(), key=lambda p: p["two_theta"])
        intensities = [p["intensity"] for p in ordered]
        if scaled and intensities:
            top = max(intensities)
            intensities = [100.0 * i / top for i in intensities]
        # Drop numerically invisible peaks, like pymatgen's default.
        keep = [i for i, inten in enumerate(intensities) if inten > 1e-3]
        return XRDPattern(
            two_theta=[ordered[i]["two_theta"] for i in keep],
            intensity=[intensities[i] for i in keep],
            hkls=[ordered[i]["hkl"] for i in keep],
            d_spacings=[ordered[i]["d"] for i in keep],
            wavelength=lam,
        )
