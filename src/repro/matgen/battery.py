"""Battery electrode analysis: voltages and capacities (paper Fig. 1).

Figure 1 of the paper plots "potential battery materials screened by the
Materials Project as a function of predicted voltage and capacity".  The
two properties come straight from computed total energies:

* the average intercalation voltage between a charged host ``H`` and a
  discharged alkali-inserted phase ``A_x H`` is
  ``V = -[E(A_xH) - E(H) - x * E(A)] / x`` (in volts, energies in eV,
  single-electron alkali ions), Aydinol et al.'s classic formula;
* the gravimetric capacity is ``C = x * F / (3.6 * M)`` in mAh/g with
  ``M`` the molar mass of the discharged electrode.

We support multi-step intercalation (a sequence of phases at increasing
alkali content → voltage profile and step pairs) and conversion electrodes
(voltage from the reaction energy against the phase-diagram hull).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import MatgenError
from .composition import Composition
from .elements import Element
from .phasediagram import PDEntry, PhaseDiagram

__all__ = ["VoltagePair", "InsertionElectrode", "ConversionElectrode",
           "FARADAY_MAH_PER_MOL"]

#: Faraday constant expressed in mAh/mol (96485 C/mol / 3.6 C per mAh).
FARADAY_MAH_PER_MOL = 96485.0 / 3.6


class VoltagePair:
    """One step of a voltage profile: charged and discharged end points."""

    __slots__ = ("charged", "discharged", "working_ion", "voltage",
                 "capacity_grav", "x_charged", "x_discharged")

    def __init__(
        self,
        charged: PDEntry,
        discharged: PDEntry,
        working_ion: Element,
        ion_reference_epa: float,
    ):
        self.charged = charged
        self.discharged = discharged
        self.working_ion = working_ion
        # Normalize both entries per formula unit of the ion-free framework.
        frame_c, x_c = _split_framework(charged.composition, working_ion)
        frame_d, x_d = _split_framework(discharged.composition, working_ion)
        if not frame_c.almost_equals(frame_d, rtol=1e-4):
            raise MatgenError(
                f"framework mismatch: {frame_c.formula} vs {frame_d.formula}"
            )
        if x_d <= x_c:
            raise MatgenError(
                "discharged phase must contain more working ion than charged"
            )
        # Scale energies to one framework formula unit.
        scale_c = 1.0 / _framework_units(charged.composition, working_ion, frame_c)
        scale_d = 1.0 / _framework_units(discharged.composition, working_ion, frame_d)
        e_c = charged.energy * scale_c
        e_d = discharged.energy * scale_d
        dx = x_d - x_c
        self.x_charged = x_c
        self.x_discharged = x_d
        self.voltage = -(e_d - e_c - dx * ion_reference_epa) / dx
        mass_d = (frame_d + Composition({working_ion: x_d})).weight
        self.capacity_grav = dx * FARADAY_MAH_PER_MOL / mass_d

    @property
    def specific_energy(self) -> float:
        """Gravimetric energy density in Wh/kg."""
        return self.voltage * self.capacity_grav

    def __repr__(self) -> str:
        return (
            f"VoltagePair({self.charged.composition.reduced_formula} -> "
            f"{self.discharged.composition.reduced_formula}, "
            f"V={self.voltage:.2f}, C={self.capacity_grav:.0f} mAh/g)"
        )


def _split_framework(
    comp: Composition, ion: Element
) -> Tuple[Composition, float]:
    """Separate ``comp`` into (framework per f.u., ion count per framework f.u.)."""
    amounts = {el: amt for el, amt in comp.items() if el != ion}
    if not amounts:
        raise MatgenError(f"{comp} is pure working ion")
    frame = Composition(amounts).reduced_composition()
    units = _framework_units(comp, ion, frame)
    x = comp[ion] / units
    return frame, x


def _framework_units(comp: Composition, ion: Element, frame: Composition) -> float:
    """How many framework formula units ``comp`` contains."""
    el = frame.elements[0]
    return comp[el] / frame[el]


class InsertionElectrode:
    """A family of phases sharing a host framework at varying ion content.

    Entries are sorted by ion fraction; adjacent (in ion content) pairs
    whose voltage profile is monotonically decreasing form the usable
    voltage steps, as in pymatgen's InsertionElectrode.
    """

    def __init__(
        self,
        entries: Sequence[PDEntry],
        working_ion: str,
        ion_reference_epa: float,
    ):
        if len(entries) < 2:
            raise MatgenError("need at least charged + discharged entries")
        self.working_ion = Element(working_ion)
        self.ion_reference_epa = float(ion_reference_epa)
        frames = set()
        keyed = []
        for entry in entries:
            frame, x = _split_framework(entry.composition, self.working_ion)
            frames.add(frame.formula)
            keyed.append((x, entry))
        if len(frames) != 1:
            raise MatgenError(f"entries span multiple frameworks: {sorted(frames)}")
        keyed.sort(key=lambda t: t[0])
        self._keyed = keyed
        self.framework = Composition(frames.pop())
        self.voltage_pairs = self._build_pairs()

    def _build_pairs(self) -> List[VoltagePair]:
        pairs = []
        for (x0, e0), (x1, e1) in zip(self._keyed, self._keyed[1:]):
            if x1 - x0 < 1e-8:
                continue
            pairs.append(
                VoltagePair(e0, e1, self.working_ion, self.ion_reference_epa)
            )
        if not pairs:
            raise MatgenError("no voltage steps found")
        return pairs

    @property
    def average_voltage(self) -> float:
        """Capacity-weighted mean voltage over all steps."""
        total_cap = sum(p.capacity_grav for p in self.voltage_pairs)
        return sum(p.voltage * p.capacity_grav for p in self.voltage_pairs) / total_cap

    @property
    def max_voltage(self) -> float:
        return max(p.voltage for p in self.voltage_pairs)

    @property
    def min_voltage(self) -> float:
        return min(p.voltage for p in self.voltage_pairs)

    @property
    def capacity_grav(self) -> float:
        """Total gravimetric capacity (mAh/g of fully discharged electrode)."""
        x_min = self._keyed[0][0]
        x_max = self._keyed[-1][0]
        mass = (self.framework + Composition({self.working_ion: x_max})).weight
        return (x_max - x_min) * FARADAY_MAH_PER_MOL / mass

    @property
    def specific_energy(self) -> float:
        return self.average_voltage * self.capacity_grav

    def get_summary_dict(self) -> dict:
        """The document shape stored in the ``batteries`` collection."""
        return {
            "battery_type": "intercalation",
            "working_ion": self.working_ion.symbol,
            "framework": self.framework.reduced_formula,
            "average_voltage": self.average_voltage,
            "max_voltage": self.max_voltage,
            "min_voltage": self.min_voltage,
            "capacity_grav": self.capacity_grav,
            "specific_energy": self.specific_energy,
            "n_steps": len(self.voltage_pairs),
            "steps": [
                {
                    "voltage": p.voltage,
                    "capacity_grav": p.capacity_grav,
                    "charged": p.charged.composition.reduced_formula,
                    "discharged": p.discharged.composition.reduced_formula,
                }
                for p in self.voltage_pairs
            ],
        }

    def __repr__(self) -> str:
        return (
            f"InsertionElectrode({self.framework.reduced_formula}, "
            f"{self.working_ion.symbol}, V={self.average_voltage:.2f}, "
            f"C={self.capacity_grav:.0f} mAh/g)"
        )


class ConversionElectrode:
    """A conversion electrode: the ion reacts the host into new phases.

    The voltage comes from the reaction energy of ``x A + Host →
    decomposition products`` evaluated on the phase-diagram hull of the
    combined chemical system (paper: "14,000 conversion batteries").
    """

    def __init__(
        self,
        host: PDEntry,
        pd: PhaseDiagram,
        working_ion: str,
        x_max: float = 1.0,
        n_steps: int = 4,
    ):
        self.host = host
        self.pd = pd
        self.working_ion = Element(working_ion)
        if self.working_ion not in {el for el in pd.elements}:
            raise MatgenError(
                f"phase diagram lacks working ion {working_ion}"
            )
        self.ion_reference_epa = pd.el_refs[self.working_ion].energy_per_atom
        self.x_max = float(x_max)
        self.n_steps = int(n_steps)
        self.profile = self._build_profile()

    def _reacted_energy_pfu(self, x: float) -> float:
        """Hull energy (eV) of host + x working ions, per host formula unit."""
        comp = self.host.composition + Composition({self.working_ion: x})
        hull_form_epa = self.pd.get_hull_energy_per_atom(comp)
        # Convert formation e/atom back to total energy via elemental refs.
        ref = sum(
            comp[el] * self.pd.el_refs[el].energy_per_atom
            for el in comp.elements
        )
        return hull_form_epa * comp.num_atoms + ref

    def _build_profile(self) -> List[dict]:
        xs = [self.x_max * (i + 1) / self.n_steps for i in range(self.n_steps)]
        profile = []
        e_prev = self._host_energy()
        x_prev = 0.0
        for x in xs:
            e_x = self._reacted_energy_pfu(x)
            dx = x - x_prev
            voltage = -(e_x - e_prev - dx * self.ion_reference_epa) / dx
            mass = (
                self.host.composition + Composition({self.working_ion: x})
            ).weight
            capacity = x * FARADAY_MAH_PER_MOL / mass
            profile.append({"x": x, "voltage": voltage, "capacity_grav": capacity})
            e_prev, x_prev = e_x, x
        return profile

    def _host_energy(self) -> float:
        return self.host.energy

    @property
    def average_voltage(self) -> float:
        return sum(p["voltage"] for p in self.profile) / len(self.profile)

    @property
    def capacity_grav(self) -> float:
        return self.profile[-1]["capacity_grav"]

    def get_summary_dict(self) -> dict:
        return {
            "battery_type": "conversion",
            "working_ion": self.working_ion.symbol,
            "host": self.host.composition.reduced_formula,
            "average_voltage": self.average_voltage,
            "capacity_grav": self.capacity_grav,
            "x_max": self.x_max,
            "profile": list(self.profile),
        }
