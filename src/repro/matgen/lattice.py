"""Crystal lattices: 3×3 cell matrices with periodic geometry helpers.

Provides the geometric substrate for structures, XRD (via ``d_hkl`` plane
spacings and the reciprocal lattice) and periodic distances (via
minimum-image displacement).  All heavy math is vectorized numpy.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import StructureError

__all__ = ["Lattice"]


class Lattice:
    """A 3D Bravais lattice defined by a row-vector cell matrix."""

    __slots__ = ("_matrix", "_inv")

    def __init__(self, matrix: Sequence[Sequence[float]]):
        m = np.asarray(matrix, dtype=float)
        if m.shape != (3, 3):
            raise StructureError(f"lattice matrix must be 3x3, got {m.shape}")
        if abs(np.linalg.det(m)) < 1e-10:
            raise StructureError("lattice matrix is singular")
        self._matrix = m
        self._inv = np.linalg.inv(m)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_parameters(
        cls,
        a: float,
        b: float,
        c: float,
        alpha: float,
        beta: float,
        gamma: float,
    ) -> "Lattice":
        """Build from lengths (Å) and angles (degrees)."""
        if min(a, b, c) <= 0:
            raise StructureError("lattice lengths must be positive")
        alpha_r, beta_r, gamma_r = map(math.radians, (alpha, beta, gamma))
        val = (math.cos(alpha_r) * math.cos(beta_r) - math.cos(gamma_r)) / (
            math.sin(alpha_r) * math.sin(beta_r)
        )
        val = max(-1.0, min(1.0, val))
        gamma_star = math.acos(val)
        v_a = [a * math.sin(beta_r), 0.0, a * math.cos(beta_r)]
        v_b = [
            -b * math.sin(alpha_r) * math.cos(gamma_star),
            b * math.sin(alpha_r) * math.sin(gamma_star),
            b * math.cos(alpha_r),
        ]
        v_c = [0.0, 0.0, c]
        return cls([v_a, v_b, v_c])

    @classmethod
    def cubic(cls, a: float) -> "Lattice":
        return cls([[a, 0, 0], [0, a, 0], [0, 0, a]])

    @classmethod
    def tetragonal(cls, a: float, c: float) -> "Lattice":
        return cls([[a, 0, 0], [0, a, 0], [0, 0, c]])

    @classmethod
    def orthorhombic(cls, a: float, b: float, c: float) -> "Lattice":
        return cls([[a, 0, 0], [0, b, 0], [0, 0, c]])

    @classmethod
    def hexagonal(cls, a: float, c: float) -> "Lattice":
        return cls.from_parameters(a, a, c, 90.0, 90.0, 120.0)

    @classmethod
    def rhombohedral(cls, a: float, alpha: float) -> "Lattice":
        return cls.from_parameters(a, a, a, alpha, alpha, alpha)

    # -- basic properties ------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    @property
    def lengths(self) -> Tuple[float, float, float]:
        return tuple(float(x) for x in np.linalg.norm(self._matrix, axis=1))

    @property
    def angles(self) -> Tuple[float, float, float]:
        """(alpha, beta, gamma) in degrees."""
        m = self._matrix
        lengths = np.linalg.norm(m, axis=1)
        out = []
        for i, j in ((1, 2), (0, 2), (0, 1)):
            cos = np.dot(m[i], m[j]) / (lengths[i] * lengths[j])
            out.append(math.degrees(math.acos(max(-1.0, min(1.0, cos)))))
        return tuple(out)  # type: ignore[return-value]

    @property
    def a(self) -> float:
        return self.lengths[0]

    @property
    def b(self) -> float:
        return self.lengths[1]

    @property
    def c(self) -> float:
        return self.lengths[2]

    @property
    def volume(self) -> float:
        """Cell volume in Å³."""
        return float(abs(np.linalg.det(self._matrix)))

    @property
    def parameters(self) -> Tuple[float, float, float, float, float, float]:
        return self.lengths + self.angles

    def reciprocal_lattice(self) -> "Lattice":
        """Reciprocal lattice including the 2π factor."""
        return Lattice(2 * math.pi * self._inv.T)

    # -- coordinate transforms -----------------------------------------------------

    def cartesian(self, frac_coords: Sequence[float]) -> np.ndarray:
        """Fractional → cartesian (Å)."""
        return np.asarray(frac_coords, dtype=float) @ self._matrix

    def fractional(self, cart_coords: Sequence[float]) -> np.ndarray:
        """Cartesian (Å) → fractional."""
        return np.asarray(cart_coords, dtype=float) @ self._inv

    # -- periodic geometry ------------------------------------------------------------

    def distance(
        self, frac_a: Sequence[float], frac_b: Sequence[float]
    ) -> float:
        """Minimum-image distance between two fractional coordinates."""
        return float(self.distance_and_image(frac_a, frac_b)[0])

    def distance_and_image(
        self, frac_a: Sequence[float], frac_b: Sequence[float]
    ) -> Tuple[float, np.ndarray]:
        """Shortest distance and the lattice image achieving it.

        Searches the 27 neighbouring images, which is exact for cells that
        are not extremely skewed (all our prototypes qualify).
        """
        fa = np.asarray(frac_a, dtype=float)
        fb = np.asarray(frac_b, dtype=float)
        delta = fb - fa
        delta -= np.round(delta)
        shifts = np.array(
            [[i, j, k] for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)]
        )
        candidates = (delta + shifts) @ self._matrix
        d2 = np.einsum("ij,ij->i", candidates, candidates)
        best = int(np.argmin(d2))
        return math.sqrt(float(d2[best])), shifts[best]

    def d_hkl(self, hkl: Sequence[int]) -> float:
        """Spacing of the (hkl) plane family — Bragg's law input for XRD."""
        h = np.asarray(hkl, dtype=float)
        if np.allclose(h, 0):
            raise StructureError("hkl cannot be (0,0,0)")
        g = h @ self._inv  # row of reciprocal (no 2π) matrix
        return 1.0 / float(np.linalg.norm(g))

    def get_points_in_sphere(
        self,
        frac_points: Sequence[Sequence[float]],
        center_cart: Sequence[float],
        r: float,
    ) -> List[Tuple[int, float]]:
        """All periodic images of ``frac_points`` within ``r`` of a center.

        Returns ``(point_index, distance)`` pairs; used by coordination
        analysis.  Brute-force over the image range implied by ``r``.
        """
        center = np.asarray(center_cart, dtype=float)
        recip_lengths = np.linalg.norm(self._inv, axis=0)
        nmax = np.ceil(r * recip_lengths + 1).astype(int)
        out: List[Tuple[int, float]] = []
        pts = np.asarray(frac_points, dtype=float)
        images = [
            np.array([i, j, k])
            for i in range(-nmax[0], nmax[0] + 1)
            for j in range(-nmax[1], nmax[1] + 1)
            for k in range(-nmax[2], nmax[2] + 1)
        ]
        for img in images:
            carts = (pts + img) @ self._matrix
            dists = np.linalg.norm(carts - center, axis=1)
            for idx in np.nonzero(dists <= r)[0]:
                out.append((int(idx), float(dists[idx])))
        return out

    # -- identity -------------------------------------------------------------------------

    def scale(self, new_volume: float) -> "Lattice":
        """Isotropically rescale to a target volume."""
        if new_volume <= 0:
            raise StructureError("volume must be positive")
        ratio = (new_volume / self.volume) ** (1.0 / 3.0)
        return Lattice(self._matrix * ratio)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        return np.allclose(self._matrix, other._matrix, atol=1e-8)

    def __hash__(self) -> int:
        return hash(tuple(np.round(self._matrix, 8).ravel()))

    def __repr__(self) -> str:
        a, b, c, al, be, ga = self.parameters
        return (
            f"Lattice(a={a:.4f}, b={b:.4f}, c={c:.4f}, "
            f"alpha={al:.2f}, beta={be:.2f}, gamma={ga:.2f})"
        )

    def as_dict(self) -> dict:
        return {"matrix": self._matrix.tolist()}

    @classmethod
    def from_dict(cls, d: dict) -> "Lattice":
        return cls(d["matrix"])
