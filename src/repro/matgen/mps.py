"""Materials Project Source (MPS) records — the paper's input JSON format.

"The input data is our standard JSON representation of a crystal and its
metadata, called Materials Project Source (MPS) ... Essential information
that must be stored and accessed is standard physical characteristics
(atomic masses, positions, etc.), and metadata indicating the source of the
crystal." (§III-B1)

An MPS record is a plain JSON document, so "import and export of the data is
trivial" with the document store — exactly as the paper says.  The record
carries: identity (``mps_id``), the crystal (lattice/sites), derived search
fields (``elements``, ``nelectrons``, ``formula`` variants) the workflow
engine queries on, and provenance metadata.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from ..errors import MatgenError
from .structure import Structure

__all__ = ["MPSRecord", "mps_from_structure", "structure_from_mps", "validate_mps"]

MPS_VERSION = 1

_REQUIRED_FIELDS = ("mps_id", "mps_version", "crystal", "formula", "elements",
                    "nelectrons", "nsites", "about")


class MPSRecord(dict):
    """An MPS document.  A dict subclass so it drops straight into the store."""

    @property
    def mps_id(self) -> str:
        return self["mps_id"]

    @property
    def structure(self) -> Structure:
        return structure_from_mps(self)


def mps_from_structure(
    structure: Structure,
    mps_id: Optional[str] = None,
    source: str = "synthetic-icsd",
    created_by: str = "mp-core",
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> MPSRecord:
    """Serialize a structure (plus provenance) into an MPS record."""
    comp = structure.composition
    if mps_id is None:
        mps_id = f"mps-{structure.structure_hash()[:12]}"
    record = MPSRecord(
        {
            "mps_id": mps_id,
            "mps_version": MPS_VERSION,
            "crystal": structure.as_dict(),
            "formula": structure.formula,
            "reduced_formula": structure.reduced_formula,
            "anonymized_formula": comp.anonymized_formula,
            "chemical_system": structure.chemical_system,
            "elements": structure.elements,
            "nelements": len(structure.elements),
            "nelectrons": comp.nelectrons,
            "nsites": structure.num_sites,
            "volume": structure.volume,
            "density": structure.density,
            "atomic_masses": {
                el.symbol: el.atomic_mass for el in comp.elements
            },
            "structure_hash": structure.structure_hash(),
            "about": {
                "source": source,
                "created_by": created_by,
                "created_at": time.time(),
                "metadata": dict(extra_metadata or {}),
            },
        }
    )
    return record


def structure_from_mps(record: Dict[str, Any]) -> Structure:
    """Rebuild the crystal structure from an MPS record."""
    if "crystal" not in record:
        raise MatgenError("MPS record has no 'crystal' field")
    return Structure.from_dict(record["crystal"])


def validate_mps(record: Dict[str, Any]) -> None:
    """Raise :class:`MatgenError` unless ``record`` is a well-formed MPS doc.

    Checks schema presence and internal consistency (the derived search
    fields must agree with the embedded crystal) — this is one of the V&V
    rules run continuously against the ``mps`` collection.
    """
    missing = [f for f in _REQUIRED_FIELDS if f not in record]
    if missing:
        raise MatgenError(f"MPS record missing fields: {missing}")
    if record["mps_version"] != MPS_VERSION:
        raise MatgenError(
            f"unsupported mps_version {record['mps_version']!r}"
        )
    structure = structure_from_mps(record)
    if record["nsites"] != structure.num_sites:
        raise MatgenError(
            f"nsites={record['nsites']} but crystal has {structure.num_sites}"
        )
    if sorted(record["elements"]) != structure.elements:
        raise MatgenError("elements field disagrees with crystal")
    if abs(record["nelectrons"] - structure.nelectrons) > 1e-6:
        raise MatgenError("nelectrons field disagrees with crystal")
    if not str(record["mps_id"]).startswith("mps-"):
        raise MatgenError(f"malformed mps_id {record['mps_id']!r}")
