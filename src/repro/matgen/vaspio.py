"""POSCAR format support — the DFT world's native structure file.

Complements :mod:`repro.matgen.cif` on the computation side: FakeVASP run
directories carry POSCAR inputs (written by :mod:`repro.dft.io`), and this
module reads them back into live :class:`~repro.matgen.structure.Structure`
objects — plus a standalone writer, so the analysis library round-trips the
format by itself.  Supports VASP-5 style files: comment line, universal
scale factor (negative = target volume), lattice rows, symbol + count
lines, and Direct or Cartesian coordinates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import MatgenError
from .elements import Element
from .lattice import Lattice
from .structure import Structure

__all__ = ["structure_to_poscar", "structure_from_poscar",
           "read_poscar_file", "write_poscar_file"]


def structure_to_poscar(structure: Structure, comment: Optional[str] = None) -> str:
    """Render a structure as a VASP-5 POSCAR (Direct coordinates)."""
    lines = [comment or structure.reduced_formula, "1.0"]
    for row in structure.lattice.matrix:
        lines.append("  " + "  ".join(f"{x:.10f}" for x in row))
    symbols = [s.element.symbol for s in structure.sites]
    ordered = sorted(set(symbols), key=symbols.index)
    lines.append(" ".join(ordered))
    lines.append(" ".join(str(symbols.count(sym)) for sym in ordered))
    lines.append("Direct")
    for sym in ordered:
        for site in structure.sites:
            if site.element.symbol == sym:
                x, y, z = site.frac_coords
                lines.append(f"  {x:.10f}  {y:.10f}  {z:.10f}  {sym}")
    return "\n".join(lines) + "\n"


def structure_from_poscar(text: str) -> Structure:
    """Parse a VASP-5 POSCAR/CONTCAR document."""
    raw_lines = [line.rstrip() for line in text.splitlines()]
    lines = [line for line in raw_lines if line.strip()]
    if len(lines) < 8:
        raise MatgenError("POSCAR too short")
    try:
        scale = float(lines[1].split()[0])
    except (ValueError, IndexError) as exc:
        raise MatgenError(f"bad POSCAR scale line {lines[1]!r}") from exc
    try:
        matrix = np.array(
            [[float(x) for x in lines[i].split()[:3]] for i in (2, 3, 4)]
        )
    except ValueError as exc:
        raise MatgenError("bad POSCAR lattice rows") from exc
    if scale < 0:
        # Negative scale: target cell volume.
        volume = abs(scale)
        current = abs(np.linalg.det(matrix))
        matrix = matrix * (volume / current) ** (1.0 / 3.0)
    else:
        matrix = matrix * scale
    lattice = Lattice(matrix)

    symbol_line = lines[5].split()
    if all(_is_int(tok) for tok in symbol_line):
        raise MatgenError(
            "VASP-4 POSCAR (no symbol line) is not supported; add symbols"
        )
    symbols = symbol_line
    try:
        counts = [int(tok) for tok in lines[6].split()]
    except ValueError as exc:
        raise MatgenError("bad POSCAR count line") from exc
    if len(counts) != len(symbols):
        raise MatgenError(
            f"{len(symbols)} symbols but {len(counts)} counts in POSCAR"
        )
    for sym in symbols:
        Element(sym)  # validate early

    mode_idx = 7
    mode = lines[mode_idx].strip().lower()
    if mode.startswith("s"):  # Selective dynamics
        mode_idx += 1
        mode = lines[mode_idx].strip().lower()
    if not (mode.startswith("d") or mode.startswith("c") or mode.startswith("k")):
        raise MatgenError(f"unknown POSCAR coordinate mode {lines[mode_idx]!r}")
    cartesian = mode.startswith(("c", "k"))

    n_sites = sum(counts)
    coord_lines = lines[mode_idx + 1: mode_idx + 1 + n_sites]
    if len(coord_lines) < n_sites:
        raise MatgenError(
            f"POSCAR declares {n_sites} sites but provides {len(coord_lines)}"
        )
    species: List[str] = []
    for sym, count in zip(symbols, counts):
        species.extend([sym] * count)
    coords = []
    for line in coord_lines:
        parts = line.split()
        try:
            xyz = [float(x) for x in parts[:3]]
        except ValueError as exc:
            raise MatgenError(f"bad POSCAR coordinate line {line!r}") from exc
        if cartesian:
            xyz = list(lattice.fractional(np.array(xyz) * (scale if scale > 0 else 1.0)))
        coords.append(xyz)
    return Structure(lattice, species, coords, validate_distances=False)


def _is_int(token: str) -> bool:
    try:
        int(token)
        return True
    except ValueError:
        return False


def write_poscar_file(structure: Structure, path: str,
                      comment: Optional[str] = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(structure_to_poscar(structure, comment))


def read_poscar_file(path: str) -> Structure:
    with open(path, encoding="utf-8") as fh:
        return structure_from_poscar(fh.read())
