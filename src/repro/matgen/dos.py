"""Densities of states derived from band structures.

A DOS is the Gaussian-smeared histogram of band energies.  It feeds the Web
UI property panels and gives the V&V layer a second, independent route to
the band gap (consistency rule: gap from DOS ≈ gap from bands).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import MatgenError
from .bandstructure import BandStructure

__all__ = ["DensityOfStates", "compute_dos"]


class DensityOfStates:
    """Energy grid + states/eV, with Fermi level and gap extraction."""

    def __init__(self, energies: np.ndarray, densities: np.ndarray, fermi_level: float):
        energies = np.asarray(energies, dtype=float)
        densities = np.asarray(densities, dtype=float)
        if energies.shape != densities.shape:
            raise MatgenError("energies and densities must have the same shape")
        if np.any(densities < -1e-12):
            raise MatgenError("densities must be non-negative")
        self.energies = energies
        self.densities = densities
        self.fermi_level = float(fermi_level)

    def get_gap(self, tol: float = 1e-3) -> float:
        """Band gap: width of the zero-density window containing E_F."""
        occupied = self.energies[
            (self.densities > tol) & (self.energies <= self.fermi_level)
        ]
        empty = self.energies[
            (self.densities > tol) & (self.energies > self.fermi_level)
        ]
        if occupied.size == 0 or empty.size == 0:
            return 0.0
        gap = float(empty.min() - occupied.max())
        return max(0.0, gap)

    @property
    def is_metal(self) -> bool:
        """Metallic if the DOS at the Fermi level is significant."""
        idx = int(np.argmin(np.abs(self.energies - self.fermi_level)))
        return bool(self.densities[idx] > 1e-2 * self.densities.max())

    def states_in_window(self, lo: float, hi: float) -> float:
        """Integrated states between two energies (trapezoidal)."""
        mask = (self.energies >= lo) & (self.energies <= hi)
        if mask.sum() < 2:
            return 0.0
        return float(np.trapezoid(self.densities[mask], self.energies[mask]))

    def as_dict(self) -> dict:
        return {
            "energies": self.energies.tolist(),
            "densities": self.densities.tolist(),
            "fermi_level": self.fermi_level,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DensityOfStates":
        return cls(np.array(d["energies"]), np.array(d["densities"]), d["fermi_level"])


def compute_dos(
    band_structure: BandStructure,
    sigma: float = 0.08,
    n_points: int = 400,
    window: Optional[Tuple[float, float]] = None,
) -> DensityOfStates:
    """Gaussian-smeared DOS from a band structure."""
    if sigma <= 0:
        raise MatgenError("smearing sigma must be positive")
    flat = band_structure.bands.ravel()
    lo, hi = window or (flat.min() - 5 * sigma, flat.max() + 5 * sigma)
    grid = np.linspace(lo, hi, n_points)
    # Sum of normalized Gaussians centered at each eigenvalue.
    diffs = grid[None, :] - flat[:, None]
    dos = np.exp(-0.5 * (diffs / sigma) ** 2).sum(axis=0)
    dos /= sigma * np.sqrt(2 * np.pi) * len(band_structure.kpoints)
    return DensityOfStates(grid, dos, band_structure.fermi_level)
