"""Periodic-table data and the :class:`Element` type.

The analysis library needs real elemental data for everything downstream:
composition mass/electron counts (the paper's ``nelectrons`` job-matching
queries), electronegativity-driven formation-energy estimates in the
pseudo-DFT engine, ionic radii for structure prototypes, and X-ray
scattering proxies.  Values are standard tabulated data (IUPAC masses,
Pauling electronegativities, Shannon-ish radii in Å); elements rarely used
in inorganic oxides carry approximate radii, which is fine for the synthetic
workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CompositionError

__all__ = ["Element", "ELEMENTS", "element"]

# symbol: (Z, name, atomic_mass, electronegativity, atomic_radius_A,
#          common_oxidation_states)
_DATA: Dict[str, Tuple[int, str, float, Optional[float], float, Tuple[int, ...]]] = {
    "H":  (1, "Hydrogen", 1.008, 2.20, 0.53, (1, -1)),
    "He": (2, "Helium", 4.0026, None, 0.31, ()),
    "Li": (3, "Lithium", 6.94, 0.98, 1.67, (1,)),
    "Be": (4, "Beryllium", 9.0122, 1.57, 1.12, (2,)),
    "B":  (5, "Boron", 10.81, 2.04, 0.87, (3,)),
    "C":  (6, "Carbon", 12.011, 2.55, 0.67, (4, -4, 2)),
    "N":  (7, "Nitrogen", 14.007, 3.04, 0.56, (-3, 3, 5)),
    "O":  (8, "Oxygen", 15.999, 3.44, 0.48, (-2,)),
    "F":  (9, "Fluorine", 18.998, 3.98, 0.42, (-1,)),
    "Ne": (10, "Neon", 20.180, None, 0.38, ()),
    "Na": (11, "Sodium", 22.990, 0.93, 1.90, (1,)),
    "Mg": (12, "Magnesium", 24.305, 1.31, 1.45, (2,)),
    "Al": (13, "Aluminium", 26.982, 1.61, 1.18, (3,)),
    "Si": (14, "Silicon", 28.085, 1.90, 1.11, (4, -4)),
    "P":  (15, "Phosphorus", 30.974, 2.19, 0.98, (5, 3, -3)),
    "S":  (16, "Sulfur", 32.06, 2.58, 0.88, (-2, 4, 6)),
    "Cl": (17, "Chlorine", 35.45, 3.16, 0.79, (-1, 5, 7)),
    "Ar": (18, "Argon", 39.948, None, 0.71, ()),
    "K":  (19, "Potassium", 39.098, 0.82, 2.43, (1,)),
    "Ca": (20, "Calcium", 40.078, 1.00, 1.94, (2,)),
    "Sc": (21, "Scandium", 44.956, 1.36, 1.84, (3,)),
    "Ti": (22, "Titanium", 47.867, 1.54, 1.76, (4, 3, 2)),
    "V":  (23, "Vanadium", 50.942, 1.63, 1.71, (5, 4, 3, 2)),
    "Cr": (24, "Chromium", 51.996, 1.66, 1.66, (3, 6, 2)),
    "Mn": (25, "Manganese", 54.938, 1.55, 1.61, (2, 3, 4, 7)),
    "Fe": (26, "Iron", 55.845, 1.83, 1.56, (2, 3)),
    "Co": (27, "Cobalt", 58.933, 1.88, 1.52, (2, 3)),
    "Ni": (28, "Nickel", 58.693, 1.91, 1.49, (2, 3)),
    "Cu": (29, "Copper", 63.546, 1.90, 1.45, (2, 1)),
    "Zn": (30, "Zinc", 65.38, 1.65, 1.42, (2,)),
    "Ga": (31, "Gallium", 69.723, 1.81, 1.36, (3,)),
    "Ge": (32, "Germanium", 72.630, 2.01, 1.25, (4, 2)),
    "As": (33, "Arsenic", 74.922, 2.18, 1.14, (-3, 3, 5)),
    "Se": (34, "Selenium", 78.971, 2.55, 1.03, (-2, 4, 6)),
    "Br": (35, "Bromine", 79.904, 2.96, 0.94, (-1, 5)),
    "Kr": (36, "Krypton", 83.798, 3.00, 0.88, ()),
    "Rb": (37, "Rubidium", 85.468, 0.82, 2.65, (1,)),
    "Sr": (38, "Strontium", 87.62, 0.95, 2.19, (2,)),
    "Y":  (39, "Yttrium", 88.906, 1.22, 2.12, (3,)),
    "Zr": (40, "Zirconium", 91.224, 1.33, 2.06, (4,)),
    "Nb": (41, "Niobium", 92.906, 1.60, 1.98, (5, 3)),
    "Mo": (42, "Molybdenum", 95.95, 2.16, 1.90, (6, 4)),
    "Tc": (43, "Technetium", 98.0, 1.90, 1.83, (7, 4)),
    "Ru": (44, "Ruthenium", 101.07, 2.20, 1.78, (3, 4)),
    "Rh": (45, "Rhodium", 102.91, 2.28, 1.73, (3,)),
    "Pd": (46, "Palladium", 106.42, 2.20, 1.69, (2, 4)),
    "Ag": (47, "Silver", 107.87, 1.93, 1.65, (1,)),
    "Cd": (48, "Cadmium", 112.41, 1.69, 1.61, (2,)),
    "In": (49, "Indium", 114.82, 1.78, 1.56, (3,)),
    "Sn": (50, "Tin", 118.71, 1.96, 1.45, (4, 2)),
    "Sb": (51, "Antimony", 121.76, 2.05, 1.33, (3, 5, -3)),
    "Te": (52, "Tellurium", 127.60, 2.10, 1.23, (-2, 4, 6)),
    "I":  (53, "Iodine", 126.90, 2.66, 1.15, (-1, 5, 7)),
    "Xe": (54, "Xenon", 131.29, 2.60, 1.08, ()),
    "Cs": (55, "Caesium", 132.91, 0.79, 2.98, (1,)),
    "Ba": (56, "Barium", 137.33, 0.89, 2.53, (2,)),
    "La": (57, "Lanthanum", 138.91, 1.10, 2.26, (3,)),
    "Ce": (58, "Cerium", 140.12, 1.12, 2.10, (3, 4)),
    "Pr": (59, "Praseodymium", 140.91, 1.13, 2.47, (3,)),
    "Nd": (60, "Neodymium", 144.24, 1.14, 2.06, (3,)),
    "Pm": (61, "Promethium", 145.0, 1.13, 2.05, (3,)),
    "Sm": (62, "Samarium", 150.36, 1.17, 2.38, (3, 2)),
    "Eu": (63, "Europium", 151.96, 1.20, 2.31, (3, 2)),
    "Gd": (64, "Gadolinium", 157.25, 1.20, 2.33, (3,)),
    "Tb": (65, "Terbium", 158.93, 1.20, 2.25, (3,)),
    "Dy": (66, "Dysprosium", 162.50, 1.22, 2.28, (3,)),
    "Ho": (67, "Holmium", 164.93, 1.23, 2.26, (3,)),
    "Er": (68, "Erbium", 167.26, 1.24, 2.26, (3,)),
    "Tm": (69, "Thulium", 168.93, 1.25, 2.22, (3,)),
    "Yb": (70, "Ytterbium", 173.05, 1.10, 2.22, (3, 2)),
    "Lu": (71, "Lutetium", 174.97, 1.27, 2.17, (3,)),
    "Hf": (72, "Hafnium", 178.49, 1.30, 2.08, (4,)),
    "Ta": (73, "Tantalum", 180.95, 1.50, 2.00, (5,)),
    "W":  (74, "Tungsten", 183.84, 2.36, 1.93, (6, 4)),
    "Re": (75, "Rhenium", 186.21, 1.90, 1.88, (7, 4)),
    "Os": (76, "Osmium", 190.23, 2.20, 1.85, (4,)),
    "Ir": (77, "Iridium", 192.22, 2.20, 1.80, (4, 3)),
    "Pt": (78, "Platinum", 195.08, 2.28, 1.77, (2, 4)),
    "Au": (79, "Gold", 196.97, 2.54, 1.74, (3, 1)),
    "Hg": (80, "Mercury", 200.59, 2.00, 1.71, (2, 1)),
    "Tl": (81, "Thallium", 204.38, 1.62, 1.56, (1, 3)),
    "Pb": (82, "Lead", 207.2, 2.33, 1.54, (2, 4)),
    "Bi": (83, "Bismuth", 208.98, 2.02, 1.43, (3, 5)),
    "Po": (84, "Polonium", 209.0, 2.00, 1.35, (4, 2)),
    "At": (85, "Astatine", 210.0, 2.20, 1.27, (-1,)),
    "Rn": (86, "Radon", 222.0, None, 1.20, ()),
    "Fr": (87, "Francium", 223.0, 0.70, 3.48, (1,)),
    "Ra": (88, "Radium", 226.0, 0.90, 2.83, (2,)),
    "Ac": (89, "Actinium", 227.0, 1.10, 2.60, (3,)),
    "Th": (90, "Thorium", 232.04, 1.30, 2.37, (4,)),
    "Pa": (91, "Protactinium", 231.04, 1.50, 2.43, (5, 4)),
    "U":  (92, "Uranium", 238.03, 1.38, 2.40, (6, 4)),
}


class Element:
    """A chemical element with tabulated physical data.

    Instances are interned: ``Element("Fe") is Element("Fe")``.  Ordering is
    by atomic number, matching pymatgen's convention, and electronegativity
    ordering is available for formula canonicalization.
    """

    _cache: Dict[str, "Element"] = {}

    __slots__ = (
        "symbol",
        "Z",
        "name",
        "atomic_mass",
        "electronegativity",
        "atomic_radius",
        "oxidation_states",
    )

    def __new__(cls, symbol: str) -> "Element":
        cached = cls._cache.get(symbol)
        if cached is not None:
            return cached
        if symbol not in _DATA:
            raise CompositionError(f"unknown element symbol {symbol!r}")
        self = super().__new__(cls)
        z, name, mass, chi, radius, oxi = _DATA[symbol]
        object.__setattr__(self, "symbol", symbol)
        object.__setattr__(self, "Z", z)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "atomic_mass", mass)
        object.__setattr__(self, "electronegativity", chi)
        object.__setattr__(self, "atomic_radius", radius)
        object.__setattr__(self, "oxidation_states", oxi)
        cls._cache[symbol] = self
        return self

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Element instances are immutable")

    @property
    def chi(self) -> float:
        """Electronegativity, with a neutral default for noble gases."""
        return self.electronegativity if self.electronegativity is not None else 0.0

    @property
    def is_metal(self) -> bool:
        """Crude metal classification used by the energy model."""
        nonmetals = {
            "H", "He", "C", "N", "O", "F", "Ne", "P", "S", "Cl", "Ar",
            "Se", "Br", "Kr", "I", "Xe", "At", "Rn", "B", "Si", "Ge",
            "As", "Sb", "Te",
        }
        return self.symbol not in nonmetals

    @property
    def is_alkali(self) -> bool:
        return self.symbol in {"Li", "Na", "K", "Rb", "Cs", "Fr"}

    @property
    def is_transition_metal(self) -> bool:
        return (21 <= self.Z <= 30) or (39 <= self.Z <= 48) or (72 <= self.Z <= 80)

    @property
    def max_oxidation_state(self) -> int:
        return max(self.oxidation_states) if self.oxidation_states else 0

    @property
    def min_oxidation_state(self) -> int:
        return min(self.oxidation_states) if self.oxidation_states else 0

    def __repr__(self) -> str:
        return f"Element({self.symbol})"

    def __str__(self) -> str:
        return self.symbol

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Element):
            return self.symbol == other.symbol
        return NotImplemented

    def __lt__(self, other: "Element") -> bool:
        return self.Z < other.Z

    def __hash__(self) -> int:
        return hash(self.symbol)

    def __reduce__(self):
        return (Element, (self.symbol,))


def element(symbol: str) -> Element:
    """Convenience constructor: ``element("Fe")``."""
    return Element(symbol)


#: All known elements, ordered by atomic number.
ELEMENTS: List[Element] = [Element(sym) for sym in _DATA]
