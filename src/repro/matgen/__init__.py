"""``repro.matgen`` — the materials object model and analysis library.

The pymatgen analog (§III-D3): "a Python object model for materials data
along with a well-tested set of structure and thermodynamic analysis tools".
Public surface: elements/compositions/lattices/structures, the MPS JSON
format, structure prototypes, phase diagrams, battery electrode analysis,
XRD patterns, band structures, and DOS.
"""

from .elements import Element, ELEMENTS, element
from .composition import Composition
from .lattice import Lattice
from .structure import Site, Structure
from .prototypes import PROTOTYPES, make_prototype, prototype_names
from .mps import MPSRecord, mps_from_structure, structure_from_mps, validate_mps
from .phasediagram import PDEntry, PhaseDiagram
from .battery import (
    ConversionElectrode,
    FARADAY_MAH_PER_MOL,
    InsertionElectrode,
    VoltagePair,
)
from .xrd import CU_KA_WAVELENGTH, XRDCalculator, XRDPattern
from .bandstructure import BandStructure, KPath, compute_band_structure
from .dos import DensityOfStates, compute_dos
from .cif import (
    read_cif_file,
    structure_from_cif,
    structure_to_cif,
    write_cif_file,
)
from .diffusion import DiffusionEstimate, estimate_diffusion, rate_class
from .symmetry import SymmetryFinder, SymmetryOperation, lattice_system
from .vaspio import (
    read_poscar_file,
    structure_from_poscar,
    structure_to_poscar,
    write_poscar_file,
)

__all__ = [
    "Element",
    "ELEMENTS",
    "element",
    "Composition",
    "Lattice",
    "Site",
    "Structure",
    "PROTOTYPES",
    "make_prototype",
    "prototype_names",
    "MPSRecord",
    "mps_from_structure",
    "structure_from_mps",
    "validate_mps",
    "PDEntry",
    "PhaseDiagram",
    "ConversionElectrode",
    "FARADAY_MAH_PER_MOL",
    "InsertionElectrode",
    "VoltagePair",
    "CU_KA_WAVELENGTH",
    "XRDCalculator",
    "XRDPattern",
    "BandStructure",
    "KPath",
    "compute_band_structure",
    "DensityOfStates",
    "compute_dos",
    "read_cif_file",
    "structure_from_cif",
    "structure_to_cif",
    "write_cif_file",
    "DiffusionEstimate",
    "estimate_diffusion",
    "rate_class",
    "SymmetryFinder",
    "SymmetryOperation",
    "lattice_system",
    "read_poscar_file",
    "structure_from_poscar",
    "structure_to_poscar",
    "write_poscar_file",
]
