"""Crystal structures: a lattice plus periodic sites.

The :class:`Structure` is the unit of data flowing through the whole
pipeline: ICSD-like inputs serialize to MPS records, the Assembler turns a
structure into pseudo-VASP input files, and builders compute XRD patterns,
densities, and phase-diagram entries from it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import StructureError
from .composition import Composition
from .elements import Element
from .lattice import Lattice

__all__ = ["Site", "Structure"]

_AVOGADRO = 6.02214076e23


class Site:
    """One atom at a fractional coordinate of a lattice."""

    __slots__ = ("element", "frac_coords", "properties")

    def __init__(
        self,
        element: Union[Element, str],
        frac_coords: Sequence[float],
        properties: Optional[dict] = None,
    ):
        self.element = element if isinstance(element, Element) else Element(element)
        fc = np.asarray(frac_coords, dtype=float)
        if fc.shape != (3,):
            raise StructureError(f"frac_coords must have length 3, got {fc.shape}")
        self.frac_coords = fc
        self.properties = dict(properties or {})

    @property
    def species_string(self) -> str:
        return self.element.symbol

    def to_unit_cell(self) -> "Site":
        """Copy with coordinates wrapped into [0, 1)."""
        return Site(self.element, self.frac_coords % 1.0, self.properties)

    def __repr__(self) -> str:
        x, y, z = self.frac_coords
        return f"Site({self.element.symbol} @ [{x:.4f}, {y:.4f}, {z:.4f}])"

    def as_dict(self) -> dict:
        return {
            "element": self.element.symbol,
            "frac_coords": [float(x) for x in self.frac_coords],
            "properties": dict(self.properties),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Site":
        return cls(d["element"], d["frac_coords"], d.get("properties"))


class Structure:
    """A periodic crystal: lattice + sites, with geometry and identity helpers."""

    def __init__(
        self,
        lattice: Lattice,
        species: Sequence[Union[Element, str]],
        frac_coords: Sequence[Sequence[float]],
        site_properties: Optional[Sequence[Optional[dict]]] = None,
        validate_distances: bool = True,
    ):
        if len(species) != len(frac_coords):
            raise StructureError(
                f"{len(species)} species but {len(frac_coords)} coordinates"
            )
        if not species:
            raise StructureError("structure must contain at least one site")
        props = site_properties or [None] * len(species)
        self.lattice = lattice
        self.sites: List[Site] = [
            Site(sp, fc, pr).to_unit_cell()
            for sp, fc, pr in zip(species, frac_coords, props)
        ]
        if validate_distances:
            self._check_overlaps()

    def _check_overlaps(self, min_dist: float = 0.35) -> None:
        for i in range(len(self.sites)):
            for j in range(i + 1, len(self.sites)):
                d = self.lattice.distance(
                    self.sites[i].frac_coords, self.sites[j].frac_coords
                )
                if d < min_dist:
                    raise StructureError(
                        f"sites {i} and {j} are {d:.3f} Å apart (< {min_dist} Å)"
                    )

    # -- chemistry --------------------------------------------------------

    @property
    def composition(self) -> Composition:
        counts: Dict[str, float] = {}
        for site in self.sites:
            counts[site.element.symbol] = counts.get(site.element.symbol, 0.0) + 1.0
        return Composition(counts)

    @property
    def formula(self) -> str:
        return self.composition.formula

    @property
    def reduced_formula(self) -> str:
        return self.composition.reduced_formula

    @property
    def chemical_system(self) -> str:
        return self.composition.chemical_system

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def elements(self) -> List[str]:
        """Sorted element symbols — the ``elements`` field of MPS records."""
        return sorted({s.element.symbol for s in self.sites})

    @property
    def nelectrons(self) -> float:
        return self.composition.nelectrons

    @property
    def volume(self) -> float:
        return self.lattice.volume

    @property
    def density(self) -> float:
        """Mass density in g/cm³."""
        mass_g = self.composition.weight / _AVOGADRO
        vol_cm3 = self.volume * 1e-24
        return mass_g / vol_cm3

    @property
    def volume_per_atom(self) -> float:
        return self.volume / self.num_sites

    # -- geometry --------------------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """Minimum-image distance between sites ``i`` and ``j`` (Å)."""
        return self.lattice.distance(
            self.sites[i].frac_coords, self.sites[j].frac_coords
        )

    def cart_coords(self) -> np.ndarray:
        return np.array([self.lattice.cartesian(s.frac_coords) for s in self.sites])

    def neighbors(self, i: int, r: float) -> List[Tuple[int, float]]:
        """Sites (by index) within ``r`` Å of site ``i``, with distances."""
        center = self.lattice.cartesian(self.sites[i].frac_coords)
        frac = [s.frac_coords for s in self.sites]
        out = [
            (idx, d)
            for idx, d in self.lattice.get_points_in_sphere(frac, center, r)
            if d > 1e-8
        ]
        return sorted(out, key=lambda t: t[1])

    def min_bond_length(self) -> float:
        """Shortest interatomic distance (Å), counting periodic images."""
        best = float("inf")
        for i in range(self.num_sites):
            for j in range(i, self.num_sites):
                if i == j:
                    # Self-image distance: nearest periodic copy.
                    d = min(self.lattice.lengths)
                else:
                    d = self.distance(i, j)
                best = min(best, d)
        return best

    # -- transformations ----------------------------------------------------------

    def make_supercell(self, scaling: Sequence[int]) -> "Structure":
        """Integer (na, nb, nc) supercell."""
        na, nb, nc = (int(x) for x in scaling)
        if min(na, nb, nc) < 1:
            raise StructureError("supercell factors must be >= 1")
        new_matrix = self.lattice.matrix * np.array([[na], [nb], [nc]])
        species: List[Element] = []
        coords: List[List[float]] = []
        props: List[dict] = []
        for i in range(na):
            for j in range(nb):
                for k in range(nc):
                    for site in self.sites:
                        species.append(site.element)
                        coords.append(
                            [
                                (site.frac_coords[0] + i) / na,
                                (site.frac_coords[1] + j) / nb,
                                (site.frac_coords[2] + k) / nc,
                            ]
                        )
                        props.append(site.properties)
        return Structure(
            Lattice(new_matrix), species, coords, props, validate_distances=False
        )

    def perturb(self, distance: float, seed: int = 0) -> "Structure":
        """Random displacement of every site by ``distance`` Å (deterministic)."""
        rng = np.random.default_rng(seed)
        species = [s.element for s in self.sites]
        coords = []
        for site in self.sites:
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            cart = self.lattice.cartesian(site.frac_coords) + direction * distance
            coords.append(self.lattice.fractional(cart))
        return Structure(self.lattice, species, coords, validate_distances=False)

    def scale_volume(self, new_volume: float) -> "Structure":
        """Isotropic rescale preserving fractional coordinates."""
        return Structure(
            self.lattice.scale(new_volume),
            [s.element for s in self.sites],
            [s.frac_coords for s in self.sites],
            [s.properties for s in self.sites],
            validate_distances=False,
        )

    def substitute(self, mapping: Dict[str, str]) -> "Structure":
        """Replace elements per ``{"Li": "Na"}``-style mapping."""
        species = [
            Element(mapping.get(s.element.symbol, s.element.symbol))
            for s in self.sites
        ]
        return Structure(
            self.lattice,
            species,
            [s.frac_coords for s in self.sites],
            [s.properties for s in self.sites],
            validate_distances=False,
        )

    def remove_species(self, symbols: Sequence[str]) -> "Structure":
        """Structure with all sites of the given elements removed."""
        drop = set(symbols)
        keep = [s for s in self.sites if s.element.symbol not in drop]
        if not keep:
            raise StructureError("removing species would empty the structure")
        return Structure(
            self.lattice,
            [s.element for s in keep],
            [s.frac_coords for s in keep],
            [s.properties for s in keep],
            validate_distances=False,
        )

    # -- identity ---------------------------------------------------------------------

    def structure_hash(self) -> str:
        """Deterministic fingerprint: reduced formula + quantized geometry.

        This is what Binder objects use for duplicate detection — two
        structures that differ only by trivial float noise (< 1e-3 in
        fractional coordinates, < 1e-2 Å in cell lengths) hash equal.
        """
        payload = {
            "formula": self.reduced_formula,
            "lattice": np.round(self.lattice.matrix, 2).tolist(),
            "sites": sorted(
                (
                    s.element.symbol,
                    # Round, then wrap again so 0.9999... and 0.0 hash equal.
                    tuple(np.round(s.frac_coords % 1.0, 3) % 1.0),
                )
                for s in self.sites
            ),
        }
        text = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha1(text.encode()).hexdigest()

    def matches(self, other: "Structure") -> bool:
        """Loose structural identity via the quantized fingerprint."""
        return self.structure_hash() == other.structure_hash()

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self) -> Iterator[Site]:
        return iter(self.sites)

    def __repr__(self) -> str:
        return (
            f"Structure({self.reduced_formula}, nsites={self.num_sites}, "
            f"volume={self.volume:.2f} A^3)"
        )

    # -- serialization --------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "lattice": self.lattice.as_dict(),
            "sites": [s.as_dict() for s in self.sites],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Structure":
        sites = [Site.from_dict(sd) for sd in d["sites"]]
        return cls(
            Lattice.from_dict(d["lattice"]),
            [s.element for s in sites],
            [s.frac_coords for s in sites],
            [s.properties for s in sites],
            validate_distances=False,
        )
