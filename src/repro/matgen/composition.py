"""Chemical compositions: formula parsing, reduction, and derived quantities.

Compositions are the join key of the whole datastore: the Materials API
resolves ``/rest/v1/materials/Fe2O3/...`` by parsed formula, the workflow
engine matches jobs on ``elements`` and ``nelectrons`` fields derived here,
and the phase-diagram builder works in fractional composition space.

Supports nested parentheses (``Li(CoO2)2``), fractional amounts from
reduction, pretty/reduced/alphabetical/anonymous formula forms, and
chemical-system strings (``"Fe-Li-O-P"``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterator, List, Mapping, Union

from ..errors import CompositionError
from .elements import Element

__all__ = ["Composition"]

_TOKEN = re.compile(r"([A-Z][a-z]?)(\d*\.?\d*)|(\()|(\))(\d*\.?\d*)")


def _gcd_float(values: List[float], tol: float = 1e-8) -> float:
    """Greatest common (floating) divisor of positive amounts."""
    from math import gcd

    # Scale to integers when possible.
    ints = []
    for v in values:
        r = round(v)
        if abs(v - r) > tol or r == 0:
            return 1.0
        ints.append(int(r))
    g = ints[0]
    for i in ints[1:]:
        g = gcd(g, i)
    return float(g)


class Composition(Mapping[Element, float]):
    """An immutable mapping of :class:`Element` to amount.

    Construct from a formula string, a dict, or keyword amounts::

        Composition("LiFePO4")
        Composition({"Fe": 2, "O": 3})
        Composition(Fe=2, O=3)
    """

    def __init__(
        self,
        formula: Union[str, Mapping, None] = None,
        **kwargs: float,
    ):
        amounts: Dict[Element, float] = {}
        if isinstance(formula, str):
            for sym, amt in self._parse(formula).items():
                amounts[Element(sym)] = amounts.get(Element(sym), 0.0) + amt
        elif isinstance(formula, Composition):
            amounts.update(formula._amounts)
        elif isinstance(formula, Mapping):
            for key, amt in formula.items():
                el = key if isinstance(key, Element) else Element(str(key))
                amounts[el] = amounts.get(el, 0.0) + float(amt)
        elif formula is not None:
            raise CompositionError(
                f"cannot build composition from {type(formula).__name__}"
            )
        for sym, amt in kwargs.items():
            el = Element(sym)
            amounts[el] = amounts.get(el, 0.0) + float(amt)
        amounts = {el: amt for el, amt in amounts.items() if abs(amt) > 1e-12}
        if not amounts:
            raise CompositionError("empty composition")
        if any(amt < 0 for amt in amounts.values()):
            raise CompositionError("negative amounts are not allowed")
        self._amounts: Dict[Element, float] = dict(
            sorted(amounts.items(), key=lambda kv: kv[0].Z)
        )

    # -- parsing ------------------------------------------------------------

    @staticmethod
    def _parse(formula: str) -> Dict[str, float]:
        formula = formula.strip()
        if not formula:
            raise CompositionError("empty formula")
        pos = 0
        stack: List[Dict[str, float]] = [{}]

        while pos < len(formula):
            ch = formula[pos]
            if ch == "(":
                stack.append({})
                pos += 1
            elif ch == ")":
                pos += 1
                m = re.match(r"\d*\.?\d*", formula[pos:])
                mult_text = m.group(0) if m else ""
                pos += len(mult_text)
                mult = float(mult_text) if mult_text else 1.0
                if len(stack) < 2:
                    raise CompositionError(f"unbalanced ')' in {formula!r}")
                group = stack.pop()
                for sym, amt in group.items():
                    stack[-1][sym] = stack[-1].get(sym, 0.0) + amt * mult
            else:
                m = re.match(r"([A-Z][a-z]?)(\d*\.?\d*)", formula[pos:])
                if not m or not m.group(1):
                    raise CompositionError(
                        f"cannot parse formula {formula!r} at position {pos}"
                    )
                sym = m.group(1)
                Element(sym)  # validates the symbol
                amt = float(m.group(2)) if m.group(2) else 1.0
                stack[-1][sym] = stack[-1].get(sym, 0.0) + amt
                pos += m.end()
        if len(stack) != 1:
            raise CompositionError(f"unbalanced '(' in {formula!r}")
        return stack[0]

    # -- mapping protocol ------------------------------------------------------

    def __getitem__(self, key: Union[Element, str]) -> float:
        el = key if isinstance(key, Element) else Element(str(key))
        return self._amounts.get(el, 0.0)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._amounts)

    def __len__(self) -> int:
        return len(self._amounts)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, str):
            try:
                key = Element(key)
            except CompositionError:
                return False
        return key in self._amounts

    # -- derived quantities ------------------------------------------------------

    @property
    def elements(self) -> List[Element]:
        """Elements present, ordered by atomic number."""
        return list(self._amounts)

    @property
    def num_atoms(self) -> float:
        return sum(self._amounts.values())

    @property
    def weight(self) -> float:
        """Molar mass in g/mol."""
        return sum(el.atomic_mass * amt for el, amt in self._amounts.items())

    @property
    def nelectrons(self) -> float:
        """Total electron count — the field the paper's job queries filter on."""
        return sum(el.Z * amt for el, amt in self._amounts.items())

    @property
    def is_element(self) -> bool:
        return len(self._amounts) == 1

    @property
    def chemical_system(self) -> str:
        """Dash-joined sorted symbols, e.g. ``"Fe-Li-O-P"``."""
        return "-".join(sorted(el.symbol for el in self._amounts))

    def get_atomic_fraction(self, el: Union[Element, str]) -> float:
        return self[el] / self.num_atoms

    def fractional_composition(self) -> "Composition":
        """Composition normalized to one atom total."""
        n = self.num_atoms
        return Composition({el: amt / n for el, amt in self._amounts.items()})

    # -- formula renderings ------------------------------------------------------

    @staticmethod
    def _fmt_amount(amt: float) -> str:
        if abs(amt - 1.0) < 1e-8:
            return ""
        if abs(amt - round(amt)) < 1e-8:
            return str(int(round(amt)))
        return f"{amt:g}"

    @property
    def formula(self) -> str:
        """Electronegativity-ordered formula with explicit amounts."""
        ordered = sorted(
            self._amounts.items(), key=lambda kv: (kv[0].chi, kv[0].symbol)
        )
        return "".join(f"{el.symbol}{self._fmt_amount(amt)}" for el, amt in ordered)

    @property
    def alphabetical_formula(self) -> str:
        ordered = sorted(self._amounts.items(), key=lambda kv: kv[0].symbol)
        return "".join(f"{el.symbol}{self._fmt_amount(amt)}" for el, amt in ordered)

    @property
    def reduced_formula(self) -> str:
        """Formula divided by the GCD of (integer) amounts: Fe4O6 → Fe2O3."""
        return self.reduced_composition().formula

    def reduced_composition(self) -> "Composition":
        g = _gcd_float(list(self._amounts.values()))
        if g <= 1.0:
            return self
        return Composition({el: amt / g for el, amt in self._amounts.items()})

    @property
    def anonymized_formula(self) -> str:
        """Amount pattern with anonymous letters: LiFePO4 → ABCD4."""
        reduced = self.reduced_composition()
        amounts = sorted(reduced._amounts.values())
        letters = "ABCDEFGHIJ"
        return "".join(
            f"{letters[i]}{self._fmt_amount(amt)}" for i, amt in enumerate(amounts)
        )

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, other: "Composition") -> "Composition":
        out = dict(self._amounts)
        for el, amt in other._amounts.items():
            out[el] = out.get(el, 0.0) + amt
        return Composition(out)

    def __sub__(self, other: "Composition") -> "Composition":
        out = dict(self._amounts)
        for el, amt in other._amounts.items():
            new = out.get(el, 0.0) - amt
            if new < -1e-9:
                raise CompositionError(
                    f"subtraction makes {el.symbol} negative"
                )
            out[el] = new
        return Composition({el: a for el, a in out.items() if a > 1e-9})

    def __mul__(self, factor: float) -> "Composition":
        if factor <= 0:
            raise CompositionError("multiplication factor must be positive")
        return Composition({el: amt * factor for el, amt in self._amounts.items()})

    __rmul__ = __mul__

    # -- identity ---------------------------------------------------------------

    def almost_equals(self, other: "Composition", rtol: float = 1e-6) -> bool:
        if set(self._amounts) != set(other._amounts):
            return False
        return all(
            math.isclose(amt, other._amounts[el], rel_tol=rtol, abs_tol=1e-9)
            for el, amt in self._amounts.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Composition):
            return NotImplemented
        return self.almost_equals(other)

    def __hash__(self) -> int:
        return hash(self.chemical_system)

    def __repr__(self) -> str:
        return f"Composition({self.formula!r})"

    def __str__(self) -> str:
        return self.formula

    # -- serialization -------------------------------------------------------------

    def as_dict(self) -> Dict[str, float]:
        return {el.symbol: amt for el, amt in self._amounts.items()}

    @classmethod
    def from_dict(cls, d: Mapping[str, float]) -> "Composition":
        return cls(d)
