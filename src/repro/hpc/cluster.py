"""Cluster hardware model: nodes, cores, memory, NUMA domains.

A minimal but honest model of the machines the paper ran on (NERSC Hopper
class): homogeneous nodes with a fixed core count, per-node memory split
over NUMA domains, and a network policy class (compute nodes cannot reach
external services — see :mod:`repro.hpc.network`).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import HPCError

__all__ = ["Node", "Cluster"]


class Node:
    """One compute node."""

    def __init__(
        self,
        name: str,
        cores: int = 24,
        memory_mb: float = 32768.0,
        numa_domains: int = 4,
        node_class: str = "compute",
    ):
        if cores < 1 or memory_mb <= 0 or numa_domains < 1:
            raise HPCError("invalid node geometry")
        if cores % numa_domains != 0:
            raise HPCError("cores must divide evenly across NUMA domains")
        self.name = name
        self.cores = cores
        self.memory_mb = memory_mb
        self.numa_domains = numa_domains
        self.node_class = node_class  # "compute" | "login" | "midrange"
        self.cores_in_use = 0

    @property
    def cores_free(self) -> int:
        return self.cores - self.cores_in_use

    @property
    def memory_per_domain_mb(self) -> float:
        return self.memory_mb / self.numa_domains

    def allocate(self, cores: int) -> None:
        if cores > self.cores_free:
            raise HPCError(
                f"node {self.name}: requested {cores} cores, "
                f"{self.cores_free} free"
            )
        self.cores_in_use += cores

    def release(self, cores: int) -> None:
        if cores > self.cores_in_use:
            raise HPCError(f"node {self.name}: releasing more cores than in use")
        self.cores_in_use -= cores

    def __repr__(self) -> str:
        return (
            f"Node({self.name}, {self.cores_free}/{self.cores} cores free, "
            f"{self.node_class})"
        )


class Cluster:
    """A set of nodes with simple first-fit core allocation."""

    def __init__(self, nodes: List[Node]):
        if not nodes:
            raise HPCError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise HPCError("duplicate node names")
        self.nodes = list(nodes)

    @classmethod
    def build(
        cls,
        n_compute: int = 8,
        cores_per_node: int = 24,
        memory_mb: float = 32768.0,
        numa_domains: int = 4,
        n_midrange: int = 1,
    ) -> "Cluster":
        """Convenience factory: N compute nodes + login + midrange nodes."""
        nodes = [
            Node(f"c{i:03d}", cores_per_node, memory_mb, numa_domains, "compute")
            for i in range(n_compute)
        ]
        nodes.append(Node("login01", cores_per_node, memory_mb, numa_domains, "login"))
        for i in range(n_midrange):
            nodes.append(
                Node(f"mid{i:02d}", cores_per_node, memory_mb, numa_domains,
                     "midrange")
            )
        return cls(nodes)

    @property
    def compute_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.node_class == "compute"]

    @property
    def total_compute_cores(self) -> int:
        return sum(n.cores for n in self.compute_nodes)

    @property
    def free_compute_cores(self) -> int:
        return sum(n.cores_free for n in self.compute_nodes)

    def node(self, name: str) -> Node:
        for n in self.nodes:
            if n.name == name:
                return n
        raise HPCError(f"unknown node {name!r}")

    def try_allocate(self, cores: int) -> Optional[List[tuple]]:
        """First-fit allocation of ``cores`` across compute nodes.

        Returns ``[(node, cores_taken), ...]`` or None if insufficient.
        The allocation is applied when successful.
        """
        if cores < 1:
            raise HPCError("must request at least one core")
        plan: List[tuple] = []
        remaining = cores
        for node in self.compute_nodes:
            if remaining == 0:
                break
            take = min(node.cores_free, remaining)
            if take > 0:
                plan.append((node, take))
                remaining -= take
        if remaining > 0:
            return None
        for node, take in plan:
            node.allocate(take)
        return plan

    def release(self, plan: List[tuple]) -> None:
        for node, take in plan:
            node.release(take)

    def utilization(self) -> float:
        total = self.total_compute_cores
        return (total - self.free_compute_cores) / total if total else 0.0
