"""Task farming: many small calculations inside one batch job.

§IV-A1: "we also address these limits with *task farming*, where a single
job in the queue runs multiple VASP calculations; task farming also smooths
large wallclock variations."

A :class:`TaskFarm` packs tasks (each with an estimated runtime) into a
fixed number of farm *slots* using LPT (longest-processing-time-first)
bin levelling, then exposes the whole farm as a single
:class:`~repro.hpc.batch.BatchJob` whose runtime is the makespan of the
slots.  The benchmark compares this against one-queue-job-per-task under a
per-user queue limit, reproducing the paper's motivation: dramatically fewer
queue slots and a smoothed effective wallclock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import HPCError
from ..obs import span
from .batch import BatchJob

__all__ = ["FarmTask", "TaskFarm"]


class FarmTask:
    """One unit of work for the farm (e.g. a single FakeVASP run)."""

    def __init__(self, name: str, estimated_runtime_s: float,
                 payload: Optional[dict] = None):
        if estimated_runtime_s <= 0:
            raise HPCError("task runtime must be positive")
        self.name = name
        self.estimated_runtime_s = float(estimated_runtime_s)
        self.payload = dict(payload or {})
        self.slot: Optional[int] = None

    def __repr__(self) -> str:
        return f"FarmTask({self.name}, {self.estimated_runtime_s:.0f}s)"


class TaskFarm:
    """Packs tasks into slots and presents them as one batch job."""

    def __init__(self, tasks: Sequence[FarmTask], n_slots: int,
                 cores_per_slot: int = 24, user: str = "mp",
                 safety_factor: float = 1.25):
        if not tasks:
            raise HPCError("farm needs at least one task")
        if n_slots < 1:
            raise HPCError("farm needs at least one slot")
        self.tasks = list(tasks)
        self.n_slots = int(n_slots)
        self.cores_per_slot = int(cores_per_slot)
        self.user = user
        self.safety_factor = float(safety_factor)
        self.slots: List[List[FarmTask]] = self._pack()

    def _pack(self) -> List[List[FarmTask]]:
        """LPT bin levelling: longest task first onto the lightest slot."""
        slots: List[List[FarmTask]] = [[] for _ in range(self.n_slots)]
        loads = [0.0] * self.n_slots
        for task in sorted(
            self.tasks, key=lambda t: -t.estimated_runtime_s
        ):
            idx = min(range(self.n_slots), key=lambda i: loads[i])
            slots[idx].append(task)
            loads[idx] += task.estimated_runtime_s
            task.slot = idx
        return slots

    @property
    def slot_loads(self) -> List[float]:
        return [sum(t.estimated_runtime_s for t in slot) for slot in self.slots]

    @property
    def makespan_s(self) -> float:
        """Farm runtime = the heaviest slot (slots run concurrently)."""
        return max(self.slot_loads)

    @property
    def total_work_s(self) -> float:
        return sum(t.estimated_runtime_s for t in self.tasks)

    @property
    def packing_efficiency(self) -> float:
        """total work / (slots × makespan); 1.0 is perfect levelling."""
        denom = self.n_slots * self.makespan_s
        return self.total_work_s / denom if denom else 0.0

    def smoothing_ratio(self) -> float:
        """Wallclock-variation smoothing: max task / makespan per-task share.

        Individually-queued tasks expose the full per-task spread to the
        scheduler; the farm exposes only the (much tighter) slot loads.
        Returns std(individual) / std(slot loads), > 1 when smoothing wins.
        """
        import statistics

        individual = [t.estimated_runtime_s for t in self.tasks]
        if len(individual) < 2 or len(self.slot_loads) < 2:
            return 1.0
        s_ind = statistics.pstdev(individual) / (sum(individual) / len(individual))
        loads = self.slot_loads
        s_farm = statistics.pstdev(loads) / (sum(loads) / len(loads))
        return s_ind / s_farm if s_farm > 1e-12 else float("inf")

    def execute(self, runner: Callable[[FarmTask], Any]) -> Dict[str, Any]:
        """Run every task through ``runner``, slot by slot, under spans.

        The farm run is one ``taskfarm.execute`` root (or child, when a
        trace is already open) with a ``taskfarm.slot`` span per slot and a
        ``taskfarm.task`` span per task, so the trace tree mirrors the LPT
        packing.  A task exception is captured on its span and recorded in
        ``failures`` without aborting the rest of the farm.
        """
        results: Dict[str, Any] = {}
        failures: Dict[str, str] = {}
        with span("taskfarm.execute", tasks=len(self.tasks),
                  slots=self.n_slots):
            for i, slot in enumerate(self.slots):
                with span("taskfarm.slot", slot=i, tasks=len(slot)):
                    for task in slot:
                        try:
                            with span("taskfarm.task", task=task.name):
                                results[task.name] = runner(task)
                        except Exception as exc:  # noqa: BLE001
                            failures[task.name] = (
                                f"{type(exc).__name__}: {exc}"
                            )
        return {"results": results, "failures": failures}

    def as_batch_job(self, priority: int = 0) -> BatchJob:
        """The whole farm as one queue entry."""
        return BatchJob(
            user=self.user,
            cores=self.n_slots * self.cores_per_slot,
            walltime_request_s=self.makespan_s * self.safety_factor,
            work=self.makespan_s,
            priority=priority,
            name=f"taskfarm-{len(self.tasks)}t-{self.n_slots}s",
        )

    def individual_batch_jobs(self, walltime_factor: float = 1.25) -> List[BatchJob]:
        """The anti-pattern: one queue job per task (for the comparison)."""
        return [
            BatchJob(
                user=self.user,
                cores=self.cores_per_slot,
                walltime_request_s=t.estimated_runtime_s * walltime_factor,
                work=t.estimated_runtime_s,
                name=t.name,
            )
            for t in self.tasks
        ]
