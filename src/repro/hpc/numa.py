"""NUMA memory placement model (§IV-A2).

"Databases such as MongoDB, where a single multi-threaded process uses most
of the system's memory, are atypical workloads for these systems.  Using the
numactl program, it is possible to interleave the allocated memory with a
minimal impact to performance."

The model: a node has D domains, each with local capacity and a local/remote
access latency.  A database working set of size W is placed under a policy:

* ``"first_touch"`` — fills domain 0, spills to the next, etc.  A
  single-threaded-allocator database lands most pages on one domain, so
  threads on other domains pay remote latency for most accesses.
* ``"interleave"`` — pages round-robin across domains; every thread sees a
  fixed local/remote mix of (1/D local, (D-1)/D remote), independent of
  working-set size — the predictable "minimal impact" the paper measured.

``effective_latency_ns`` returns the expected per-access latency for a
uniformly random access pattern from threads spread over all domains, and
``scan_time_s`` converts it into a simulated scan time for a memory-bound
query workload.
"""

from __future__ import annotations

from typing import List

from ..errors import HPCError

__all__ = ["NUMAModel"]


class NUMAModel:
    """Latency model for a multi-domain shared-memory node."""

    def __init__(
        self,
        n_domains: int = 4,
        domain_capacity_mb: float = 8192.0,
        local_latency_ns: float = 90.0,
        remote_latency_ns: float = 150.0,
    ):
        if n_domains < 1:
            raise HPCError("need at least one NUMA domain")
        if remote_latency_ns < local_latency_ns:
            raise HPCError("remote latency cannot beat local latency")
        self.n_domains = int(n_domains)
        self.domain_capacity_mb = float(domain_capacity_mb)
        self.local_latency_ns = float(local_latency_ns)
        self.remote_latency_ns = float(remote_latency_ns)

    @property
    def total_capacity_mb(self) -> float:
        return self.n_domains * self.domain_capacity_mb

    def placement(self, working_set_mb: float, policy: str) -> List[float]:
        """MB of the working set on each domain under ``policy``."""
        if working_set_mb <= 0:
            raise HPCError("working set must be positive")
        if working_set_mb > self.total_capacity_mb:
            raise HPCError(
                f"working set {working_set_mb} MB exceeds node capacity "
                f"{self.total_capacity_mb} MB"
            )
        if policy == "interleave":
            return [working_set_mb / self.n_domains] * self.n_domains
        if policy == "first_touch":
            out = []
            remaining = working_set_mb
            for _ in range(self.n_domains):
                take = min(remaining, self.domain_capacity_mb)
                out.append(take)
                remaining -= take
            return out
        raise HPCError(f"unknown placement policy {policy!r}")

    def effective_latency_ns(self, working_set_mb: float, policy: str) -> float:
        """Expected access latency for threads spread over all domains.

        A thread on domain i pays local latency for the fraction of pages
        on i and remote latency for the rest; threads are uniform over
        domains, accesses uniform over pages.
        """
        pages = self.placement(working_set_mb, policy)
        total = sum(pages)
        expected = 0.0
        for thread_domain in range(self.n_domains):
            for page_domain, mb in enumerate(pages):
                frac = mb / total
                lat = (
                    self.local_latency_ns
                    if page_domain == thread_domain
                    else self.remote_latency_ns
                )
                expected += frac * lat / self.n_domains
        return expected

    def scan_time_s(
        self,
        working_set_mb: float,
        policy: str,
        bytes_per_access: int = 64,
    ) -> float:
        """Simulated time to scan the working set once, latency-bound."""
        accesses = working_set_mb * 1024 * 1024 / bytes_per_access
        return accesses * self.effective_latency_ns(working_set_mb, policy) * 1e-9

    def interleave_penalty(self, working_set_mb: float) -> float:
        """interleave latency / best-case all-local latency.

        The paper's claim is that this is small ("minimal impact"): for a
        4-domain node it is bounded by (1 + 3·r/l)/4 relative terms —
        typically ≤ 1.4 with realistic latency ratios.
        """
        inter = self.effective_latency_ns(working_set_mb, "interleave")
        return inter / self.local_latency_ns
