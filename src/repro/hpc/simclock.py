"""Discrete-event simulation clock.

The HPC layer never sleeps: batch queues, job runtimes, and reservations all
advance a simulated clock so a "week" of cluster time runs in milliseconds.
Events are ``(time, sequence, callback)`` triples in a heap; ties break by
insertion order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from ..errors import HPCError

__all__ = ["SimClock"]


class SimClock:
    """An event-driven simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._events: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now - 1e-12:
            raise HPCError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        heapq.heappush(self._events, (when, next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise HPCError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Process the next event; returns False if none remain."""
        if not self._events:
            return False
        when, _seq, callback = heapq.heappop(self._events)
        self._now = when
        callback()
        return True

    def run_until(self, when: float) -> None:
        """Process events up to (and including) simulated time ``when``."""
        while self._events and self._events[0][0] <= when:
            self.step()
        self._now = max(self._now, when)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events processed."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise HPCError(f"event cascade exceeded {max_events} events")
        return count

    @property
    def pending_events(self) -> int:
        return len(self._events)
