"""PBS-like batch queue with per-user limits, reservations, walltime kills.

§IV-A1: "Most HPC systems allow only a handful of queued jobs per user ...
for many of the high throughput workloads like the Materials Project, there
are thousands of small jobs.  In the MP, we worked with NERSC to get
advanced reservations that temporarily suspended these limits."

The model: FIFO-with-priority scheduling over a :class:`Cluster`, a hard
``max_queued_per_user`` enforced at submission (raising
:class:`~repro.errors.QueueLimitExceeded`), advance reservations that (a)
exempt their owner from the queue limit inside the reservation window and
(b) reserve cores, and walltime enforcement that kills jobs whose actual
runtime exceeds their request — the trigger for the workflow engine's
re-run logic.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..errors import HPCError, QueueLimitExceeded
from .cluster import Cluster
from .simclock import SimClock

__all__ = ["BatchJob", "Reservation", "BatchQueue"]

_JOB_IDS = itertools.count(1)


class BatchJob:
    """One batch submission.

    ``work`` is either a number (simulated runtime in seconds) or a callable
    ``work(job) -> float`` evaluated at start time (so task farms can decide
    their contents when they launch).
    """

    def __init__(
        self,
        user: str,
        cores: int,
        walltime_request_s: float,
        work: "float | Callable[[BatchJob], float]",
        priority: int = 0,
        name: Optional[str] = None,
    ):
        if cores < 1 or walltime_request_s <= 0:
            raise HPCError("invalid job geometry")
        self.job_id = next(_JOB_IDS)
        self.user = user
        self.cores = cores
        self.walltime_request_s = float(walltime_request_s)
        self.work = work
        self.priority = int(priority)
        self.name = name or f"job-{self.job_id}"
        self.state = "QUEUED"  # QUEUED | RUNNING | COMPLETED | KILLED_WALLTIME
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.actual_runtime_s: Optional[float] = None
        self._allocation = None

    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.start_time is None or self.submit_time is None:
            return None
        return self.start_time - self.submit_time

    def __repr__(self) -> str:
        return f"BatchJob({self.name}, user={self.user}, state={self.state})"


class Reservation:
    """An advance reservation: cores held for one user over a time window."""

    def __init__(self, user: str, start: float, end: float, cores: int):
        if end <= start or cores < 1:
            raise HPCError("invalid reservation window")
        self.user = user
        self.start = float(start)
        self.end = float(end)
        self.cores = int(cores)

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


class BatchQueue:
    """The PBS-like scheduler bound to a cluster and a sim clock."""

    def __init__(
        self,
        cluster: Cluster,
        clock: Optional[SimClock] = None,
        max_queued_per_user: int = 8,
        backfill: bool = True,
    ):
        self.cluster = cluster
        self.clock = clock or SimClock()
        self.max_queued_per_user = max_queued_per_user
        #: With backfill (default), later queued jobs may start around a
        #: blocked head-of-queue job; strict FIFO (backfill=False) waits.
        self.backfill = backfill
        self._queue: List[BatchJob] = []
        self._running: List[BatchJob] = []
        self.history: List[BatchJob] = []
        self.reservations: List[Reservation] = []
        self.rejections = 0

    # -- admission -----------------------------------------------------------

    def _user_load(self, user: str) -> int:
        return sum(1 for j in self._queue if j.user == user) + sum(
            1 for j in self._running if j.user == user
        )

    def _has_reservation(self, user: str) -> bool:
        t = self.clock.now
        return any(r.user == user and r.active_at(t) for r in self.reservations)

    def submit(self, job: BatchJob) -> BatchJob:
        """Submit a job; per-user queue limits apply unless reserved."""
        if not self._has_reservation(job.user):
            if self._user_load(job.user) >= self.max_queued_per_user:
                self.rejections += 1
                raise QueueLimitExceeded(
                    f"user {job.user!r} already has "
                    f"{self._user_load(job.user)} jobs "
                    f"(limit {self.max_queued_per_user})"
                )
        job.state = "QUEUED"
        job.submit_time = self.clock.now
        self._queue.append(job)
        self._try_schedule()
        return job

    def add_reservation(self, reservation: Reservation) -> None:
        self.reservations.append(reservation)

    # -- scheduling ----------------------------------------------------------------

    def _reserved_cores_now(self, for_user: Optional[str]) -> int:
        """Cores held by active reservations not belonging to ``for_user``."""
        t = self.clock.now
        return sum(
            r.cores
            for r in self.reservations
            if r.active_at(t) and r.user != for_user
        )

    def _try_schedule(self) -> None:
        """Start queued jobs in priority-then-FIFO order.

        With backfill, a blocked job is skipped and later jobs may start;
        in strict-FIFO mode scheduling stops at the first blocked job (the
        classic utilization cost the backfill ablation measures).
        """
        self._queue.sort(key=lambda j: (-j.priority, j.submit_time, j.job_id))
        progress = True
        while progress:
            progress = False
            for job in list(self._queue):
                held = self._reserved_cores_now(job.user)
                available = self.cluster.free_compute_cores - held
                blocked = job.cores > available
                allocation = None if blocked else self.cluster.try_allocate(
                    job.cores
                )
                if allocation is None:
                    if self.backfill:
                        continue
                    break  # strict FIFO: head of queue blocks everyone
                self._start(job, allocation)
                progress = True
                break

    def _start(self, job: BatchJob, allocation) -> None:
        self._queue.remove(job)
        self._running.append(job)
        job.state = "RUNNING"
        job.start_time = self.clock.now
        job._allocation = allocation
        runtime = job.work(job) if callable(job.work) else float(job.work)
        job.actual_runtime_s = runtime
        if runtime > job.walltime_request_s:
            # Killed at the walltime limit; the work is lost.
            self.clock.schedule_in(
                job.walltime_request_s, lambda j=job: self._finish(j, killed=True)
            )
        else:
            self.clock.schedule_in(runtime, lambda j=job: self._finish(j, killed=False))

    def _finish(self, job: BatchJob, killed: bool) -> None:
        job.state = "KILLED_WALLTIME" if killed else "COMPLETED"
        job.end_time = self.clock.now
        self._running.remove(job)
        self.history.append(job)
        self.cluster.release(job._allocation)
        job._allocation = None
        self._try_schedule()

    # -- introspection ------------------------------------------------------------------

    @property
    def queued_jobs(self) -> List[BatchJob]:
        return list(self._queue)

    @property
    def running_jobs(self) -> List[BatchJob]:
        return list(self._running)

    def run_until_idle(self) -> None:
        """Advance the clock until queue and running set are empty."""
        guard = 0
        while self._queue or self._running:
            if not self.clock.step():
                if self._queue and not self._running:
                    raise HPCError(
                        "jobs stuck in queue with no events pending "
                        "(cluster too small for some job?)"
                    )
                break
            guard += 1
            if guard > 10_000_000:
                raise HPCError("scheduler livelock")

    def stats(self) -> dict:
        done = [j for j in self.history if j.state == "COMPLETED"]
        killed = [j for j in self.history if j.state == "KILLED_WALLTIME"]
        waits = [j.queue_wait_s for j in self.history if j.queue_wait_s is not None]
        return {
            "completed": len(done),
            "killed_walltime": len(killed),
            "rejections": self.rejections,
            "mean_queue_wait_s": sum(waits) / len(waits) if waits else 0.0,
            "makespan_s": max((j.end_time or 0.0) for j in self.history)
            if self.history
            else 0.0,
        }
