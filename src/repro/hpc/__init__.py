"""``repro.hpc`` — discrete-event HPC environment simulator.

Models everything §IV-A of the paper identifies as an HPC-side challenge:
the PBS-like batch queue with per-user limits and advance reservations
(:mod:`.batch`), task farming (:mod:`.taskfarm`), worker-node network policy
(:mod:`.network`), and NUMA memory placement (:mod:`.numa`) — all advancing
a simulated clock (:mod:`.simclock`) over a cluster model (:mod:`.cluster`).
"""

from .simclock import SimClock
from .cluster import Cluster, Node
from .batch import BatchJob, BatchQueue, Reservation
from .taskfarm import FarmTask, TaskFarm
from .network import NetworkPolicy
from .numa import NUMAModel
from .deploy import ClusterDeployment, deploy_cluster_scenario

__all__ = [
    "SimClock",
    "Cluster",
    "Node",
    "BatchJob",
    "BatchQueue",
    "Reservation",
    "FarmTask",
    "TaskFarm",
    "NetworkPolicy",
    "NUMAModel",
    "ClusterDeployment",
    "deploy_cluster_scenario",
]
