"""Network connectivity policy: why the proxy exists.

§IV-A2: "most HPC systems are configured such that the internal worker nodes
are not allowed to communicate outside the system.  Thus, we had to use a
proxy to have our tasks communicate with the MongoDB Server."

The policy classifies hosts (compute / login / midrange / external) and
answers "may A open a connection to B?".  Compute nodes may talk only to
in-system hosts — the login/midrange nodes where the proxy runs — never to
the external database host.  :meth:`NetworkPolicy.connect` enforces this for
real socket connections, returning a
:class:`~repro.docstore.server.RemoteClient` only when the route is legal.
"""

from __future__ import annotations

from typing import Dict

from ..errors import NetworkPolicyError

__all__ = ["NetworkPolicy"]

_CLASSES = ("compute", "login", "midrange", "external")


class NetworkPolicy:
    """Host classification + connection admission."""

    def __init__(self) -> None:
        self._hosts: Dict[str, str] = {}
        self.denied_attempts = 0
        self.allowed_attempts = 0

    def register(self, hostname: str, host_class: str) -> None:
        if host_class not in _CLASSES:
            raise NetworkPolicyError(f"unknown host class {host_class!r}")
        self._hosts[hostname] = host_class

    def register_cluster(self, cluster) -> None:
        """Register every node of a :class:`~repro.hpc.cluster.Cluster`."""
        for node in cluster.nodes:
            self.register(node.name, node.node_class)

    def host_class(self, hostname: str) -> str:
        cls = self._hosts.get(hostname)
        if cls is None:
            raise NetworkPolicyError(f"unknown host {hostname!r}")
        return cls

    def allowed(self, src: str, dst: str) -> bool:
        """May ``src`` open a TCP connection to ``dst``?

        Rules (mirroring a typical HPC center):
        * compute → compute/login/midrange: allowed (in-system fabric)
        * compute → external: DENIED (the paper's constraint)
        * login/midrange → anywhere: allowed (they are the gateways)
        * external → login: allowed (users ssh in); external → compute: denied
        """
        s = self.host_class(src)
        d = self.host_class(dst)
        if s == "compute":
            return d in ("compute", "login", "midrange")
        if s in ("login", "midrange"):
            return True
        if s == "external":
            return d in ("login", "external")
        return False

    def check(self, src: str, dst: str) -> None:
        """Raise :class:`NetworkPolicyError` when the route is forbidden."""
        if not self.allowed(src, dst):
            self.denied_attempts += 1
            raise NetworkPolicyError(
                f"{src} ({self.host_class(src)}) may not connect to "
                f"{dst} ({self.host_class(dst)})"
            )
        self.allowed_attempts += 1

    def connect(self, src: str, dst: str, address: tuple):
        """Open a datastore client connection if the policy allows it.

        ``address`` is the actual ``(ip, port)`` of the server or proxy; the
        policy works on logical host names, the socket on real addresses.
        """
        from ..docstore.server import RemoteClient

        self.check(src, dst)
        return RemoteClient(address[0], address[1])

    def stats(self) -> dict:
        return {
            "hosts": len(self._hosts),
            "allowed_attempts": self.allowed_attempts,
            "denied_attempts": self.denied_attempts,
        }
