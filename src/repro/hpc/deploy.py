"""Deploy the sharded datastore cluster as batch jobs on the HPC simulator.

PAPERS.md's "Deploying a sharded MongoDB cluster as a queued job on a shared
HPC architecture" describes exactly this operational mode: every database
process — each replica-set member of each shard — runs as an ordinary job in
the machine's batch queue, holding its cores for a *lease* and dying when
the lease ends or the scheduler's walltime limit kills it.  The database
must therefore survive its own members continuously churning through the
queue.

:class:`ClusterDeployment` maps a live
:class:`~repro.docstore.cluster.ShardedCluster` onto a
:class:`~repro.hpc.batch.BatchQueue`:

* one :class:`~repro.hpc.batch.BatchJob` per replica-set member, staggered
  within each shard so leases do not expire together;
* a job *starting* revives its member (changestream catch-up or full
  resync); a lease expiry or walltime kill marks the member dead and — when
  it was the primary — runs the election synchronously in simulated time;
* an advance reservation covers the fleet, reproducing §IV-A1's answer to
  per-user queue limits (a 12-member cluster would otherwise trip the
  default 8-job cap);
* a restart budget resubmits replacement jobs, so the deployment models a
  long-running service stitched out of finite batch allocations.

The :meth:`report` rolls up what operators care about: outages, elections,
restarts, and whether every shard ended with a live primary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ElectionFailed, HPCError
from .batch import BatchJob, BatchQueue, Reservation

__all__ = ["ClusterDeployment", "deploy_cluster_scenario"]


class ClusterDeployment:
    """Run every replica-set member of ``cluster`` as a batch job."""

    def __init__(self, cluster: Any, queue: BatchQueue, user: str = "mp-ops",
                 cores_per_member: int = 2, walltime_request_s: float = 600.0,
                 lease_s: float = 480.0, stagger_s: float = 60.0,
                 max_restarts: int = 1, reserve: bool = True):
        if lease_s <= 0 or walltime_request_s <= 0:
            raise HPCError("lease and walltime must be positive")
        self.cluster = cluster
        self.queue = queue
        self.user = user
        self.cores_per_member = cores_per_member
        self.walltime_request_s = float(walltime_request_s)
        self.lease_s = float(lease_s)
        self.stagger_s = float(stagger_s)
        self.max_restarts = int(max_restarts)
        self.reserve = reserve
        self.jobs: Dict[str, List[BatchJob]] = {}
        self._restarts_left: Dict[str, int] = {}
        self.outages = 0
        self.elections = 0
        self.failed_elections = 0
        self.restarts = 0
        self.walltime_kills = 0

    # -- submission ---------------------------------------------------------

    def submit_all(self) -> List[BatchJob]:
        """Submit one job per member of every shard, staggered per shard."""
        if self.reserve:
            members = sum(len(s.rs.members)
                          for s in self.cluster.shards.values())
            horizon = (self.lease_s + self.stagger_s * 3) * (
                self.max_restarts + 2)
            self.queue.add_reservation(Reservation(
                self.user, self.queue.clock.now,
                self.queue.clock.now + horizon,
                members * self.cores_per_member,
            ))
        submitted: List[BatchJob] = []
        for shard in self.cluster.shards.values():
            for i, member in enumerate(shard.rs.members):
                self._restarts_left[member.name] = self.max_restarts
                submitted.append(self._submit_member(
                    shard.rs, member.name,
                    lease_s=self.lease_s + i * self.stagger_s))
        return submitted

    def _submit_member(self, rs: Any, member_name: str,
                       lease_s: Optional[float] = None) -> BatchJob:
        lease = self.lease_s if lease_s is None else lease_s

        def work(job: BatchJob) -> float:
            # The job just started: the member's process is up.
            node = rs.node(member_name)
            if not node.alive:
                rs.revive(member_name)
            # The member goes down when the lease ends — or earlier, when
            # the scheduler enforces the requested walltime.  A member on
            # its *final* lease (restart budget spent) stays up: the
            # simulation horizon ends inside that lease, so the report
            # captures a live fleet rather than the trivial all-dead state.
            if self._restarts_left.get(member_name, 0) > 0:
                up_for = min(lease, job.walltime_request_s)
                self.queue.clock.schedule_in(
                    up_for,
                    lambda: self._member_down(
                        rs, member_name,
                        killed=lease > job.walltime_request_s))
            return lease

        job = BatchJob(
            user=self.user, cores=self.cores_per_member,
            walltime_request_s=self.walltime_request_s, work=work,
            name=f"dbnode-{member_name}",
        )
        self.jobs.setdefault(member_name, []).append(job)
        self.queue.submit(job)
        return job

    # -- lease lifecycle ----------------------------------------------------

    def _member_down(self, rs: Any, member_name: str, killed: bool) -> None:
        was_primary = rs.primary_name() == member_name
        node = rs.node(member_name)
        if node.alive:
            rs.kill(member_name)
            self.outages += 1
            if killed:
                self.walltime_kills += 1
        if was_primary:
            # Surviving members elect in simulated time — the failover the
            # chaos lane exercises with real threads, replayed here
            # deterministically under the batch scheduler's clock.
            try:
                rs.elect()
                self.elections += 1
            except ElectionFailed:
                self.failed_elections += 1
        if self._restarts_left.get(member_name, 0) > 0:
            self._restarts_left[member_name] -= 1
            self.restarts += 1
            self._submit_member(rs, member_name)

    # -- driving ------------------------------------------------------------

    def run_until_idle(self) -> None:
        self.queue.run_until_idle()

    def report(self) -> dict:
        primaries = {sid: shard.rs.primary_name()
                     for sid, shard in sorted(self.cluster.shards.items())}
        job_states: Dict[str, List[str]] = {
            name: [j.state for j in jobs]
            for name, jobs in sorted(self.jobs.items())
        }
        return {
            "members": len(self.jobs),
            "outages": self.outages,
            "elections": self.elections,
            "failed_elections": self.failed_elections,
            "restarts": self.restarts,
            "walltime_kills": self.walltime_kills,
            "primaries": primaries,
            "all_shards_have_primary": all(
                p is not None for p in primaries.values()),
            "jobs": job_states,
            "queue": self.queue.stats(),
        }


def deploy_cluster_scenario(n_shards: int = 2, n_replicas: int = 3,
                            n_compute: int = 4,
                            lease_s: float = 480.0,
                            walltime_request_s: float = 600.0,
                            max_restarts: int = 1) -> dict:
    """End-to-end demo: build a cluster, deploy it to the batch queue, churn.

    Returns the deployment :meth:`~ClusterDeployment.report` augmented with
    the cluster's own status — the document the tour and the HPC tests
    assert on.
    """
    from ..docstore.cluster import ShardedCluster
    from .cluster import Cluster
    from .simclock import SimClock

    clock = SimClock()
    hpc = Cluster.build(n_compute=n_compute)
    queue = BatchQueue(hpc, clock=clock)
    cluster = ShardedCluster(n_replicas=n_replicas)
    for i in range(n_shards):
        cluster.add_shard(f"s{i}")
    coll = cluster.shard_collection("mp.materials", "material_id",
                                   strategy="hashed")
    for i in range(32):
        coll.insert_one({"material_id": f"mp-{i}", "nelements": 1 + i % 4})
    deployment = ClusterDeployment(
        cluster, queue, lease_s=lease_s,
        walltime_request_s=walltime_request_s, max_restarts=max_restarts,
    )
    deployment.submit_all()
    deployment.run_until_idle()
    report = deployment.report()
    report["docs_surviving"] = coll.count_documents({})
    report["cluster"] = cluster.sharding_stats()
    return report
