"""Database-wide summary statistics: the operator's census report.

The paper quotes its deployment by numbers — "over 30,000 materials, 3,000
bandstructures, 400 intercalation batteries, and 14,000 conversion
batteries", "2500 registered users", weekly query volumes.  This module
computes the same census over a live database: collection counts, property
distributions (formation energy, band gap, voltage), chemistry coverage,
and workflow health — everything a status dashboard would show.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..docstore.database import Database

__all__ = ["histogram", "describe", "database_census"]


def histogram(
    values: Sequence[float],
    n_bins: int = 10,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> List[Tuple[float, float, int]]:
    """Equal-width histogram as (bin_lo, bin_hi, count) rows."""
    values = [v for v in values if v is not None and not math.isnan(v)]
    if not values:
        return []
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return [(lo, hi, len(values))]
    width = (hi - lo) / n_bins
    counts = [0] * n_bins
    for v in values:
        idx = min(n_bins - 1, max(0, int((v - lo) / width)))
        counts[idx] += 1
    return [(lo + i * width, lo + (i + 1) * width, counts[i])
            for i in range(n_bins)]


def describe(values: Sequence[float]) -> Dict[str, float]:
    """min/max/mean/median/std summary of a numeric sample."""
    clean = sorted(
        v for v in values if v is not None and not math.isnan(v)
    )
    if not clean:
        return {"n": 0}
    n = len(clean)
    mean = sum(clean) / n
    var = sum((v - mean) ** 2 for v in clean) / n
    return {
        "n": n,
        "min": clean[0],
        "max": clean[-1],
        "mean": mean,
        "median": clean[n // 2],
        "std": math.sqrt(var),
    }


def database_census(db: Database) -> Dict[str, Any]:
    """The full status report over a populated deployment."""
    materials = db.get_collection("materials")
    out: Dict[str, Any] = {
        "collections": {
            name: db.get_collection(name).count_documents()
            for name in db.list_collection_names()
        },
    }

    mat_docs = materials.find(
        {}, {"formation_energy_per_atom": 1, "band_gap": 1, "is_metal": 1,
             "elements": 1, "e_above_hull": 1, "nelements": 1}
    ).to_list()
    if mat_docs:
        out["formation_energy"] = describe(
            [d.get("formation_energy_per_atom") for d in mat_docs]
        )
        gaps = [d.get("band_gap") for d in mat_docs]
        out["band_gap"] = describe(gaps)
        out["n_metals"] = sum(1 for d in mat_docs if d.get("is_metal"))
        out["n_insulators"] = sum(
            1 for d in mat_docs
            if d.get("band_gap") is not None and d["band_gap"] > 0.5
        )
        hull = [d.get("e_above_hull") for d in mat_docs
                if d.get("e_above_hull") is not None]
        out["n_stable"] = sum(1 for e in hull if e < 1e-6)
        element_counts: Dict[str, int] = {}
        for d in mat_docs:
            for el in d.get("elements", []):
                element_counts[el] = element_counts.get(el, 0) + 1
        out["element_coverage"] = {
            "n_elements": len(element_counts),
            "most_common": sorted(
                element_counts.items(), key=lambda kv: -kv[1]
            )[:5],
        }
        out["nelements_distribution"] = {
            n: sum(1 for d in mat_docs if d.get("nelements") == n)
            for n in sorted({d.get("nelements") for d in mat_docs
                             if d.get("nelements")})
        }

    engines = db.get_collection("engines")
    if len(engines):
        rows = engines.aggregate(
            [{"$group": {"_id": "$state", "n": {"$sum": 1}}}]
        )
        out["workflow_states"] = {r["_id"]: r["n"] for r in rows}

    batteries = db.get_collection("batteries")
    if len(batteries):
        volts = [d.get("average_voltage")
                 for d in batteries.find({}, {"average_voltage": 1})]
        out["battery_voltage"] = describe(volts)
    return out
