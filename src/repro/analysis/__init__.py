"""``repro.analysis`` — introspection over stored documents.

Document-complexity metrics (nodes / depth / mean depth) regenerating the
paper's Table I, plus the database census / summary-statistics report.
"""

from .complexity import DocComplexity, collection_complexity, document_complexity
from .stats import database_census, describe, histogram

__all__ = [
    "DocComplexity",
    "collection_complexity",
    "document_complexity",
    "database_census",
    "describe",
    "histogram",
]
