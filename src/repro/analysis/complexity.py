"""Document-structure complexity metrics — the data behind Table I.

The paper illustrates "the complexity of the document structures ... as
graphs" with three numbers per collection: **Nodes** (size of the document
tree), **Depth** (deepest leaf), and **Mean depth** (average leaf depth).
Paper values: battery prototypes 14/4/3.6, MPS 94/6/4.8, materials
208/10/6.0, tasks 1077/12/7.4.

Conventions (chosen to reproduce those magnitudes): the root document is
depth 0 and not counted; every dict key, list element, and scalar leaf is a
node; container nodes count once plus their children.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

__all__ = ["DocComplexity", "document_complexity", "collection_complexity"]


class DocComplexity:
    """Node count, max depth, and mean leaf depth of one document tree."""

    __slots__ = ("nodes", "max_depth", "mean_depth", "n_leaves")

    def __init__(self, nodes: int, max_depth: int, mean_depth: float,
                 n_leaves: int):
        self.nodes = nodes
        self.max_depth = max_depth
        self.mean_depth = mean_depth
        self.n_leaves = n_leaves

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "depth": self.max_depth,
            "mean_depth": round(self.mean_depth, 1),
            "leaves": self.n_leaves,
        }

    def __repr__(self) -> str:
        return (
            f"DocComplexity(nodes={self.nodes}, depth={self.max_depth}, "
            f"mean_depth={self.mean_depth:.1f})"
        )


def _walk(value: Any, depth: int, stats: dict) -> None:
    if depth > 0:
        stats["nodes"] += 1
    if isinstance(value, Mapping):
        if not value and depth > 0:
            stats["leaf_depths"].append(depth)
        for child in value.values():
            _walk(child, depth + 1, stats)
    elif isinstance(value, (list, tuple)):
        if not value and depth > 0:
            stats["leaf_depths"].append(depth)
        for child in value:
            _walk(child, depth + 1, stats)
    else:
        stats["leaf_depths"].append(depth)


def document_complexity(doc: Mapping[str, Any]) -> DocComplexity:
    """Complexity of one document (root excluded, per Table I conventions)."""
    stats: dict = {"nodes": 0, "leaf_depths": []}
    _walk(doc, 0, stats)
    depths: List[int] = stats["leaf_depths"]
    if not depths:
        return DocComplexity(0, 0, 0.0, 0)
    return DocComplexity(
        nodes=stats["nodes"],
        max_depth=max(depths),
        mean_depth=sum(depths) / len(depths),
        n_leaves=len(depths),
    )


def collection_complexity(
    docs: Sequence[Mapping[str, Any]],
    name: str = "",
) -> Dict[str, Any]:
    """Aggregate Table I row for a collection: medians across documents."""
    if not docs:
        return {"collection": name, "n_docs": 0, "nodes": 0, "depth": 0,
                "mean_depth": 0.0}
    metrics = [document_complexity(d) for d in docs]
    nodes = sorted(m.nodes for m in metrics)
    depths = sorted(m.max_depth for m in metrics)
    means = sorted(m.mean_depth for m in metrics)
    mid = len(metrics) // 2
    return {
        "collection": name,
        "n_docs": len(docs),
        "nodes": nodes[mid],
        "depth": depths[mid],
        "mean_depth": round(means[mid], 1),
        "max_nodes": nodes[-1],
    }
