"""``repro.mapreduce`` — the Python MapReduce framework (§IV-B2, §IV-C2).

One job spec (:class:`MapReduceJob`), three data paths: the single-threaded
:class:`LocalExecutor` (MongoDB's built-in MR analog), the multi-process
:class:`ParallelExecutor` (the Hadoop analog), and :class:`StagedStore`
(pre-staging collection data to partitioned files, the HDFS analog).
"""

from .core import MapReduceJob, MRResult, partition_for_key
from .local import LocalExecutor
from .parallel import ParallelExecutor
from .staging import StagedStore

__all__ = [
    "MapReduceJob",
    "MRResult",
    "partition_for_key",
    "LocalExecutor",
    "ParallelExecutor",
    "StagedStore",
]
