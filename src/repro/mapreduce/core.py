"""MapReduce job specification shared by all executors.

§IV-B2 / §IV-C2: the Materials Project uses "a simple custom MapReduce
framework written in Python" for V&V and analytics, and found that
Hadoop-style execution "can be several times faster than the built-in
MongoDB MapReduce framework" (which runs in a single-threaded Javascript
engine).  This package reproduces the comparison: one job definition, two
executors (:mod:`.local` single-threaded, :mod:`.parallel` multi-process
with partitioned shuffle).

A job is four functions:

* ``mapper(doc) -> iterable[(key, value)]``
* ``combiner(key, values) -> value`` (optional, associative pre-reduce)
* ``reducer(key, values) -> value``
* ``finalize(key, value) -> value`` (optional)

For the process-based executor the functions must be picklable (defined at
module level), like any real distributed framework requires.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["MapReduceJob", "MRResult", "partition_for_key"]

Mapper = Callable[[dict], Iterable[Tuple[Any, Any]]]
Reducer = Callable[[Any, List[Any]], Any]
Finalizer = Callable[[Any, Any], Any]


class MapReduceJob:
    """An executor-independent MapReduce job."""

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        combiner: Optional[Reducer] = None,
        finalize: Optional[Finalizer] = None,
        name: str = "mr-job",
    ):
        if not callable(mapper) or not callable(reducer):
            raise ReproError("mapper and reducer must be callables")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.finalize = finalize
        self.name = name


class MRResult:
    """Rows plus execution metadata, comparable across executors."""

    def __init__(self, rows: List[dict], executor: str, wall_time_s: float,
                 counts: dict):
        self.rows = rows
        self.executor = executor
        self.wall_time_s = wall_time_s
        self.counts = counts

    def sorted_rows(self) -> List[dict]:
        """Rows in deterministic key order for cross-executor comparison."""
        return sorted(self.rows, key=lambda r: repr(r["_id"]))

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def partition_for_key(key: Any, n_partitions: int) -> int:
    """Stable partition assignment (shared by shuffle and staging)."""
    import hashlib

    payload = repr(key).encode()
    return int.from_bytes(hashlib.md5(payload).digest()[:4], "big") % n_partitions
