"""Single-threaded MapReduce executor — the MongoDB-built-in analog.

"MongoDB's built-in MapReduce functionality is severely limited by
implementation within a single-threaded Javascript engine" (§IV-C2).  This
executor is the honest model of that limitation: one thread, one pass, no
partitioning.  It is the correctness reference the parallel executor is
compared against.
"""

from __future__ import annotations

import time
from typing import Iterable, List

from ..obs import get_registry, span
from .core import MapReduceJob, MRResult

__all__ = ["LocalExecutor"]


class LocalExecutor:
    """Runs a job sequentially in the calling thread."""

    name = "local-single-thread"

    def run(self, job: MapReduceJob, documents: Iterable[dict]) -> MRResult:
        with span("mapreduce.run", executor=self.name, job=job.name):
            result = self._run(job, documents)
        get_registry().histogram(
            "repro_mapreduce_wall_seconds", "MapReduce job wall time"
        ).observe(result.wall_time_s, executor=self.name)
        return result

    def _run(self, job: MapReduceJob, documents: Iterable[dict]) -> MRResult:
        t0 = time.perf_counter()
        groups: dict = {}
        key_objects: dict = {}
        n_input = 0
        n_emit = 0
        for doc in documents:
            n_input += 1
            for key, value in job.mapper(doc):
                n_emit += 1
                ck = repr(key)
                groups.setdefault(ck, []).append(value)
                key_objects.setdefault(ck, key)
        rows: List[dict] = []
        for ck, values in groups.items():
            key = key_objects[ck]
            if job.combiner is not None and len(values) > 1:
                values = [job.combiner(key, values)]
            out = values[0] if len(values) == 1 else job.reducer(key, values)
            if job.finalize is not None:
                out = job.finalize(key, out)
            rows.append({"_id": key, "value": out})
        elapsed = time.perf_counter() - t0
        return MRResult(
            rows,
            executor=self.name,
            wall_time_s=elapsed,
            counts={"input": n_input, "emit": n_emit, "output": len(rows)},
        )
