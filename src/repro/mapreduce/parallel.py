"""Parallel MapReduce executor — the Hadoop analog.

Map tasks run over input splits in a process (or thread) pool, each
producing combiner-compressed partial groups per shuffle partition; the
shuffle merges partials by partition; reduce tasks then run per partition in
the pool.  With the process backend on CPU-bound jobs this is genuinely
several times faster than :class:`~repro.mapreduce.local.LocalExecutor`,
which is the §IV-B2 result the benchmark regenerates.

Process-pool caveats are the real ones: job functions must be picklable
(module-level), and input documents are serialized to the workers — the
same data-movement tax that makes pre-staging data to HDFS attractive
(see :mod:`repro.mapreduce.staging`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Tuple

from ..errors import ReproError
from ..obs import get_registry, span
from .core import MapReduceJob, MRResult, partition_for_key

__all__ = ["ParallelExecutor"]


def _map_task(args: Tuple[MapReduceJob, List[dict], int]):
    """One map split: mapper + combiner, bucketed by shuffle partition.

    Returns ``(buckets, task_seconds)`` — the per-task time feeds the
    simulated-parallel wall clock (see :class:`ParallelExecutor`).
    """
    job, docs, n_partitions = args
    t0 = time.process_time()  # CPU time: immune to time-slicing on busy hosts
    partitions: List[Dict[str, list]] = [dict() for _ in range(n_partitions)]
    key_objects: Dict[str, Any] = {}
    for doc in docs:
        for key, value in job.mapper(doc):
            p = partition_for_key(key, n_partitions)
            ck = repr(key)
            partitions[p].setdefault(ck, []).append(value)
            key_objects[ck] = key
    if job.combiner is not None:
        for bucket in partitions:
            for ck, values in bucket.items():
                if len(values) > 1:
                    bucket[ck] = [job.combiner(key_objects[ck], values)]
    # Ship key objects alongside (repr is only the bucket label).
    buckets = [
        {ck: (key_objects[ck], values) for ck, values in bucket.items()}
        for bucket in partitions
    ]
    return buckets, time.process_time() - t0


def _reduce_task(args: Tuple[MapReduceJob, Dict[str, tuple]]):
    """One reduce partition: merge value lists, reduce, finalize."""
    job, groups = args
    t0 = time.process_time()
    rows: List[dict] = []
    for _ck, (key, values) in groups.items():
        out = values[0] if len(values) == 1 else job.reducer(key, values)
        if job.finalize is not None:
            out = job.finalize(key, out)
        rows.append({"_id": key, "value": out})
    return rows, time.process_time() - t0


class ParallelExecutor:
    """Partitioned multi-worker executor.

    Parameters
    ----------
    n_workers:
        Pool size (processes or threads).
    n_partitions:
        Shuffle partitions (defaults to ``n_workers``).
    backend:
        ``"process"`` for true parallelism (functions must pickle) or
        ``"thread"`` for shared-memory convenience.
    """

    def __init__(self, n_workers: int = 4, n_partitions: int = 0,
                 backend: str = "process"):
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if backend not in ("process", "thread"):
            raise ReproError(f"unknown backend {backend!r}")
        self.n_workers = int(n_workers)
        self.n_partitions = int(n_partitions) or self.n_workers
        self.backend = backend
        self.name = f"parallel-{backend}-{n_workers}w"

    def _pool(self):
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.n_workers)
        return ThreadPoolExecutor(max_workers=self.n_workers)

    @staticmethod
    def _split(docs: List[dict], n: int) -> List[List[dict]]:
        if not docs:
            return []
        size = max(1, (len(docs) + n - 1) // n)
        return [docs[i:i + size] for i in range(0, len(docs), size)]

    def run(self, job: MapReduceJob, documents: Iterable[dict]) -> MRResult:
        """Execute the job; returns rows plus two timing views.

        ``wall_time_s`` is the real elapsed time.  ``counts["simulated_
        wall_time_s"]`` is the *critical-path* time — max map-task time +
        shuffle + max reduce-task time — i.e. the wall clock an N-worker
        cluster with one core per worker would observe.  On a multi-core
        host the two agree (up to pool overhead); on a single-core CI box
        only the simulated figure shows the parallel speedup, and that is
        the figure the §IV-B2 benchmark reports (documented in
        EXPERIMENTS.md).
        """
        with span("mapreduce.run", executor=self.name, job=job.name):
            result = self._run(job, documents)
        get_registry().histogram(
            "repro_mapreduce_wall_seconds", "MapReduce job wall time"
        ).observe(result.wall_time_s, executor=self.name)
        return result

    def _run(self, job: MapReduceJob, documents: Iterable[dict]) -> MRResult:
        docs = list(documents)
        t0 = time.perf_counter()
        splits = self._split(docs, self.n_workers)
        shuffled: List[Dict[str, tuple]] = [dict() for _ in range(self.n_partitions)]
        map_times: List[float] = []
        reduce_times: List[float] = []
        shuffle_s = 0.0
        if splits:
            with self._pool() as pool:
                map_outputs = list(
                    pool.map(
                        _map_task,
                        [(job, split, self.n_partitions) for split in splits],
                    )
                )
                ts = time.perf_counter()
                for buckets, task_s in map_outputs:
                    map_times.append(task_s)
                    for p, bucket in enumerate(buckets):
                        dest = shuffled[p]
                        for ck, (key, values) in bucket.items():
                            if ck in dest:
                                dest[ck][1].extend(values)
                            else:
                                dest[ck] = (key, list(values))
                shuffle_s = time.perf_counter() - ts
                reduce_inputs = [
                    (job, groups) for groups in shuffled if groups
                ]
                reduce_outputs = list(pool.map(_reduce_task, reduce_inputs))
        else:
            reduce_outputs = []
        rows: List[dict] = []
        for chunk, task_s in reduce_outputs:
            reduce_times.append(task_s)
            rows.extend(chunk)
        elapsed = time.perf_counter() - t0
        simulated = (
            (max(map_times) if map_times else 0.0)
            + shuffle_s
            + (max(reduce_times) if reduce_times else 0.0)
        )
        return MRResult(
            rows,
            executor=self.name,
            wall_time_s=elapsed,
            counts={
                "input": len(docs),
                "splits": len(splits),
                "partitions": self.n_partitions,
                "output": len(rows),
                "simulated_wall_time_s": simulated,
            },
        )
