"""Pre-staging collection data to partitioned files (the HDFS analog).

§IV-B2: "efficiency can be gained by pre-staging the MongoDB data to HDFS
... Even when HDFS is being used directly, MongoDB will continue to contain
references to the data that allow queries to be performed using the
QueryEngine abstraction layer."

:class:`StagedStore` exports a collection once into N partition files of
extended-JSON lines (paying the staging cost up front), after which repeated
MapReduce jobs stream documents from disk instead of re-querying the
datastore — and a reference document is written back to the store so the
staged data remains discoverable through normal queries.
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Optional

from ..docstore.documents import document_from_json, document_to_json
from ..errors import ReproError
from .core import MapReduceJob, MRResult, partition_for_key

__all__ = ["StagedStore"]


class StagedStore:
    """A collection exported to partitioned JSONL files on disk."""

    def __init__(self, directory: str, n_partitions: int = 4):
        if n_partitions < 1:
            raise ReproError("need at least one partition")
        self.directory = directory
        self.n_partitions = int(n_partitions)
        os.makedirs(directory, exist_ok=True)
        self.staging_time_s: Optional[float] = None
        self.n_staged = 0

    def _partition_path(self, p: int) -> str:
        return os.path.join(self.directory, f"part-{p:05d}.jsonl")

    def stage_collection(self, collection, partition_field: str = "_id") -> dict:
        """Export every document; returns (and records) staging metadata.

        Also writes a reference document into the collection's database
        (collection ``staged_refs``) so the staged copy is query-discoverable.
        """
        t0 = time.perf_counter()
        handles = [open(self._partition_path(p), "w", encoding="utf-8")
                   for p in range(self.n_partitions)]
        try:
            for doc in collection.find({}):
                key = doc.get(partition_field)
                p = partition_for_key(key, self.n_partitions)
                handles[p].write(document_to_json(doc) + "\n")
                self.n_staged += 1
        finally:
            for fh in handles:
                fh.close()
        self.staging_time_s = time.perf_counter() - t0
        ref = {
            "source_collection": collection.name,
            "directory": self.directory,
            "n_partitions": self.n_partitions,
            "n_documents": self.n_staged,
            "staged_at": time.time(),
        }
        if collection.database is not None:
            collection.database.get_collection("staged_refs").update_one(
                {"source_collection": collection.name, "directory": self.directory},
                {"$set": ref},
                upsert=True,
            )
        return ref

    def iter_partition(self, p: int) -> Iterator[dict]:
        path = self._partition_path(p)
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield document_from_json(line)

    def iter_all(self) -> Iterator[dict]:
        for p in range(self.n_partitions):
            yield from self.iter_partition(p)

    def __len__(self) -> int:
        return self.n_staged

    def run_job(self, job: MapReduceJob, executor) -> MRResult:
        """Run a MapReduce job over the staged files."""
        return executor.run(job, self.iter_all())
