"""User sandboxes: private data areas with publish-to-public flow (§III-A).

"The resulting data can be uploaded to a user-controlled area called a
sandbox, which is only visible to the creator and selected collaborators ...
At any point (e.g., after a publication or a patent filing), the user can
allow the data to become publicly disseminated."

Implementation: sandboxed documents live in the same collections as core
data but carry a ``_sandbox`` envelope (``{"sandbox_id", "visibility"}``).
:class:`SandboxManager` owns sandbox metadata (owner, collaborators) and
provides the *only* sanctioned read path, which merges public data with the
sandboxes the requesting user may see.  Publishing flips documents to
``visibility: "public"`` — the "natural by-product of the Web UI for the
sandboxes" the paper anticipates.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from ..docstore.database import Database
from ..docstore.objectid import ObjectId
from ..errors import AuthError, NotFoundError

__all__ = ["SandboxManager"]


class SandboxManager:
    """Sandbox lifecycle + visibility-aware queries."""

    def __init__(self, database: Database):
        self.db = database
        self.sandboxes = database.get_collection("sandboxes")
        if "sandbox_id_1" not in self.sandboxes.index_information():
            self.sandboxes.create_index("sandbox_id", unique=True)

    # -- lifecycle ------------------------------------------------------------

    def create_sandbox(self, owner: str, name: str) -> str:
        sandbox_id = f"sbx-{ObjectId().hex()[:12]}"
        self.sandboxes.insert_one(
            {
                "sandbox_id": sandbox_id,
                "name": name,
                "owner": owner,
                "collaborators": [],
                "created_at": time.time(),
            }
        )
        return sandbox_id

    def _sandbox(self, sandbox_id: str) -> dict:
        doc = self.sandboxes.find_one({"sandbox_id": sandbox_id})
        if doc is None:
            raise NotFoundError(f"no sandbox {sandbox_id!r}")
        return doc

    def add_collaborator(self, sandbox_id: str, owner: str, user: str) -> None:
        sandbox = self._sandbox(sandbox_id)
        if sandbox["owner"] != owner:
            raise AuthError("only the owner may add collaborators")
        self.sandboxes.update_one(
            {"sandbox_id": sandbox_id},
            {"$addToSet": {"collaborators": user}},
        )

    def accessible_sandboxes(self, user: str) -> List[str]:
        docs = self.sandboxes.find(
            {"$or": [{"owner": user}, {"collaborators": user}]},
            {"sandbox_id": 1},
        ).to_list()
        return [d["sandbox_id"] for d in docs]

    def can_access(self, sandbox_id: str, user: str) -> bool:
        sandbox = self._sandbox(sandbox_id)
        return user == sandbox["owner"] or user in sandbox["collaborators"]

    # -- data ----------------------------------------------------------------------

    def submit(self, sandbox_id: str, user: str, collection: str,
               document: Mapping[str, Any]) -> Any:
        """Insert a private document into a sandbox the user can access."""
        if not self.can_access(sandbox_id, user):
            raise AuthError(f"{user!r} cannot write to {sandbox_id!r}")
        doc = dict(document)
        doc["_sandbox"] = {"sandbox_id": sandbox_id, "visibility": "private",
                           "submitted_by": user, "submitted_at": time.time()}
        return self.db.get_collection(collection).insert_one(doc).inserted_id

    def visible_query(self, user: Optional[str], collection: str,
                      criteria: Optional[Mapping[str, Any]] = None) -> List[dict]:
        """Everything ``user`` may see: core data + public sandbox data +
        private data of accessible sandboxes.  Anonymous users see only the
        first two."""
        visibility: List[dict] = [
            {"_sandbox": {"$exists": False}},            # core database
            {"_sandbox.visibility": "public"},           # published sandbox data
        ]
        if user is not None:
            accessible = self.accessible_sandboxes(user)
            if accessible:
                visibility.append(
                    {"_sandbox.sandbox_id": {"$in": accessible}}
                )
        query: Dict[str, Any] = {"$or": visibility}
        if criteria:
            query = {"$and": [dict(criteria), query]}
        return self.db.get_collection(collection).find(query).to_list()

    def publish(self, sandbox_id: str, user: str, collection: str,
                criteria: Optional[Mapping[str, Any]] = None) -> int:
        """Make (matching) sandbox documents public; owner only."""
        sandbox = self._sandbox(sandbox_id)
        if sandbox["owner"] != user:
            raise AuthError("only the owner may publish sandbox data")
        query: Dict[str, Any] = {"_sandbox.sandbox_id": sandbox_id}
        if criteria:
            query = {"$and": [dict(criteria), query]}
        coll = self.db.get_collection(collection)
        result = coll.update_many(
            query, {"$set": {"_sandbox.visibility": "public",
                             "_sandbox.published_at": time.time()}}
        )
        return result.modified_count
