"""The Materials API: HTTP-style URIs mapped to data objects (§III-D2, Fig. 4).

URI anatomy, exactly as the paper's Figure 4::

    /rest/v1/materials/Fe2O3/vasp/energy
     ^pre  ^ver ^application  ^datatype ^property
                 identifier

The identifier may be a formula (``Fe2O3``), a material id (``mp-42``), a
chemical system (``Li-Fe-O``), or an MPS id.  The datatype selects the
calculation source (only ``vasp`` is populated here).  The property selects
a field of the materials document; omitting it returns the whole document.
Responses are JSON-ready dicts with the classic envelope::

    {"valid_response": true, "response": [...], "created_at": ...}

The router composes the security stack: API-key auth (optional), per-user
rate limiting, and the QueryEngine (so every query is sanitized and logged).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..errors import (
    APIError,
    AuthError,
    BadRequestError,
    NotFoundError,
    RateLimitExceeded,
)
from .auth import AuthRegistry
from .queryengine import QueryEngine
from .ratelimit import RateLimiter

__all__ = ["MaterialsAPI", "SUPPORTED_PROPERTIES"]

SUPPORTED_PROPERTIES = frozenset(
    {
        "energy", "energy_per_atom", "formation_energy_per_atom",
        "e_above_hull", "is_stable", "band_gap", "is_metal",
        "nsites", "elements", "nelements", "chemical_system",
        "reduced_formula", "structure", "material_id", "mps_id",
    }
)

_API_VERSION = "v1"
_APPLICATIONS = ("materials", "batteries", "tasks", "phasediagram", "xrd")


def _classify_identifier(identifier: str) -> Dict[str, Any]:
    """Map a URI identifier onto a materials-collection query."""
    if identifier.startswith("mp-"):
        return {"material_id": identifier}
    if identifier.startswith("mps-"):
        return {"mps_id": identifier}
    if "-" in identifier:
        parts = identifier.split("-")
        if all(p and p[0].isupper() for p in parts):
            return {"chemical_system": "-".join(sorted(parts))}
        raise BadRequestError(f"malformed chemical system {identifier!r}")
    # Otherwise treat as a formula; normalize through Composition.
    from ..matgen.composition import Composition
    from ..errors import CompositionError

    try:
        comp = Composition(identifier)
    except CompositionError as exc:
        raise BadRequestError(f"cannot parse identifier {identifier!r}: {exc}")
    return {"reduced_formula": comp.reduced_formula}


class MaterialsAPI:
    """The REST router behind ``/rest/v1/...``."""

    def __init__(
        self,
        query_engine: QueryEngine,
        auth: Optional[AuthRegistry] = None,
        rate_limiter: Optional[RateLimiter] = None,
        require_auth: bool = False,
    ):
        self.qe = query_engine
        self.auth = auth
        self.rate_limiter = rate_limiter
        self.require_auth = require_auth

    # -- envelope helpers -----------------------------------------------------

    @staticmethod
    def _ok(response: Any) -> dict:
        return {
            "valid_response": True,
            "version": {"api": _API_VERSION, "db": "2012.08"},
            "created_at": time.time(),
            "response": response,
        }

    @staticmethod
    def _error(status: int, message: str) -> dict:
        return {
            "valid_response": False,
            "status": status,
            "error": message,
            "created_at": time.time(),
        }

    # -- request handling ----------------------------------------------------------

    def handle(self, uri: str, api_key: Optional[str] = None) -> dict:
        """Serve one request; never raises — errors become envelopes."""
        try:
            user = self._authenticate(api_key)
            if self.rate_limiter is not None:
                self.rate_limiter.check(user or "anonymous")
            return self._ok(self._route(uri, user))
        except RateLimitExceeded as exc:
            return self._error(429, str(exc))
        except AuthError as exc:
            return self._error(401, str(exc))
        except NotFoundError as exc:
            return self._error(404, str(exc))
        except BadRequestError as exc:
            return self._error(400, str(exc))
        except APIError as exc:
            return self._error(400, str(exc))

    def _authenticate(self, api_key: Optional[str]) -> Optional[str]:
        if api_key is not None and self.auth is not None:
            return self.auth.authenticate_api_key(api_key).user_id
        if self.require_auth:
            raise AuthError("this deployment requires an API key")
        return None

    def _route(self, uri: str, user: Optional[str]) -> Any:
        parts = [p for p in uri.split("?")[0].split("/") if p]
        if len(parts) < 3 or parts[0] != "rest":
            raise BadRequestError(f"URI must start with /rest/v1/: {uri!r}")
        if parts[1] != _API_VERSION:
            raise BadRequestError(f"unsupported API version {parts[1]!r}")
        application = parts[2]
        if application not in _APPLICATIONS:
            raise NotFoundError(f"unknown application {application!r}")
        if application == "materials":
            return self._route_materials(parts[3:], user)
        if application == "batteries":
            return self._route_batteries(parts[3:], user)
        if application == "phasediagram":
            return self._route_phasediagram(parts[3:], user)
        if application == "xrd":
            return self._route_xrd(parts[3:], user)
        return self._route_tasks(parts[3:], user)

    # -- /rest/v1/materials/... -------------------------------------------------------

    def _route_materials(self, rest: List[str], user: Optional[str]) -> Any:
        if not rest:
            raise BadRequestError("missing material identifier")
        identifier = rest[0]
        criteria = _classify_identifier(identifier)
        datatype = rest[1] if len(rest) > 1 else "vasp"
        if datatype != "vasp":
            raise NotFoundError(f"no data of type {datatype!r}")
        prop = rest[2] if len(rest) > 2 else None
        if prop is not None and prop not in SUPPORTED_PROPERTIES:
            raise BadRequestError(
                f"unknown property {prop!r}; supported: "
                f"{sorted(SUPPORTED_PROPERTIES)}"
            )
        properties = ["material_id", prop] if prop else None
        docs = self.qe.query(criteria, properties, "materials", user=user)
        if not docs:
            raise NotFoundError(f"no materials match {identifier!r}")
        out = []
        for doc in docs:
            doc.pop("_id", None)
            out.append(doc)
        return out

    # -- /rest/v1/batteries/... ---------------------------------------------------------

    def _route_batteries(self, rest: List[str], user: Optional[str]) -> Any:
        criteria: Dict[str, Any] = {}
        if rest:
            criteria = {"battery_id": rest[0]}
        docs = self.qe.query(criteria, None, "batteries", user=user)
        if rest and not docs:
            raise NotFoundError(f"no battery {rest[0]!r}")
        for doc in docs:
            doc.pop("_id", None)
        return docs

    # -- /rest/v1/phasediagram/<chemsys> — a *function* endpoint ----------------------

    def _route_phasediagram(self, rest: List[str], user: Optional[str]) -> Any:
        """Compute a phase diagram on demand from stored materials.

        The paper's Web API "maps HTTP URIs to data objects and functions";
        this is a function: the hull is built per request from the live
        materials collection, so it always reflects the newest data.
        """
        if not rest:
            raise BadRequestError("missing chemical system, e.g. Li-Fe-O")
        elements = sorted(p for p in rest[0].split("-") if p)
        if not elements or not all(p[0].isupper() for p in elements):
            raise BadRequestError(f"malformed chemical system {rest[0]!r}")
        from ..dft.energy import reference_energy_per_atom
        from ..errors import CompositionError, MatgenError
        from ..matgen.phasediagram import PDEntry, PhaseDiagram

        docs = self.qe.query(
            {"elements": {"$in": elements}},
            ["material_id", "formula", "energy", "elements"],
            "materials",
            user=user,
        )
        try:
            entries = [
                PDEntry(sym, reference_energy_per_atom(sym),
                        entry_id=f"ref-{sym}")
                for sym in elements
            ]
        except CompositionError as exc:
            raise BadRequestError(str(exc))
        member_ids = []
        for doc in docs:
            if set(doc.get("elements", [])) <= set(elements) and doc.get("energy"):
                entries.append(
                    PDEntry(doc["formula"], doc["energy"],
                            entry_id=doc["material_id"])
                )
                member_ids.append(doc["material_id"])
        try:
            pd = PhaseDiagram(entries)
        except MatgenError as exc:
            raise BadRequestError(f"cannot build diagram: {exc}")
        summary = pd.summary()
        summary["member_materials"] = member_ids
        summary["e_above_hull"] = {
            e.entry_id: pd.get_e_above_hull(e)
            for e in entries
            if e.entry_id and not e.entry_id.startswith("ref-")
        }
        return [summary]

    # -- /rest/v1/xrd/<identifier> — computed diffraction pattern ----------------------

    def _route_xrd(self, rest: List[str], user: Optional[str]) -> Any:
        """Return (or compute on demand) the powder pattern of a material."""
        if not rest:
            raise BadRequestError("missing material identifier")
        criteria = _classify_identifier(rest[0])
        stored = self.qe.query(criteria, None, "materials", user=user)
        if not stored:
            raise NotFoundError(f"no materials match {rest[0]!r}")
        out = []
        for doc in stored:
            cached = self.qe.query(
                {"material_id": doc["material_id"]}, None, "xrd", user=user
            )
            if cached:
                record = cached[0]
                record.pop("_id", None)
            else:
                if doc.get("structure") is None:
                    continue
                from ..matgen.structure import Structure
                from ..matgen.xrd import XRDCalculator

                pattern = XRDCalculator().get_pattern(
                    Structure.from_dict(doc["structure"])
                )
                record = pattern.as_dict()
                record["material_id"] = doc["material_id"]
                record["computed_on_demand"] = True
            out.append(record)
        if not out:
            raise NotFoundError(f"no structures available for {rest[0]!r}")
        return out

    # -- /rest/v1/tasks/... ----------------------------------------------------------------

    def _route_tasks(self, rest: List[str], user: Optional[str]) -> Any:
        if not rest:
            raise BadRequestError("missing mps identifier")
        docs = self.qe.query(
            {"mps_id": rest[0]},
            ["mps_id", "formula", "energy", "state", "parameters"],
            "tasks",
            user=user,
        )
        if not docs:
            raise NotFoundError(f"no tasks for {rest[0]!r}")
        for doc in docs:
            doc.pop("_id", None)
        return docs
