"""Collaborative annotation tools (§III-A).

"Collaborative tools allow users to publicly annotate the data."  An
annotation is a signed note attached to any document (by collection +
natural key): corrections, experimental cross-checks, synthesis reports.
Annotations live in their own collection of the same store, are queryable
like everything else, support threaded replies, and can be flagged/retracted
— the moderation minimum a public scientific resource needs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..docstore.database import Database
from ..docstore.objectid import ObjectId
from ..errors import AuthError, BadRequestError, NotFoundError

__all__ = ["AnnotationStore"]

_MAX_LENGTH = 4000


class AnnotationStore:
    """Public annotations over datastore documents."""

    def __init__(self, database: Database):
        self.db = database
        self.annotations = database.get_collection("annotations")
        for field in ("target.key", "author"):
            name = f"{field}_1"
            if name not in self.annotations.index_information():
                self.annotations.create_index(field)

    # -- writing -------------------------------------------------------------

    def annotate(
        self,
        author: str,
        collection: str,
        key: str,
        text: str,
        reply_to: Optional[ObjectId] = None,
    ) -> ObjectId:
        """Attach a public note to ``collection``/``key``."""
        if not author:
            raise AuthError("annotations must be signed")
        text = text.strip()
        if not text:
            raise BadRequestError("empty annotation")
        if len(text) > _MAX_LENGTH:
            raise BadRequestError(
                f"annotation exceeds {_MAX_LENGTH} characters"
            )
        if reply_to is not None:
            parent = self.annotations.find_one({"_id": reply_to})
            if parent is None:
                raise NotFoundError("reply target does not exist")
            if parent["target"] != {"collection": collection, "key": key}:
                raise BadRequestError("reply must target the same document")
        doc = {
            "target": {"collection": collection, "key": key},
            "author": author,
            "text": text,
            "reply_to": reply_to,
            "created_at": time.time(),
            "retracted": False,
            "flags": [],
        }
        return self.annotations.insert_one(doc).inserted_id

    def retract(self, annotation_id: ObjectId, author: str) -> None:
        """Authors may retract their own notes (text is blanked, not erased)."""
        doc = self.annotations.find_one({"_id": annotation_id})
        if doc is None:
            raise NotFoundError("no such annotation")
        if doc["author"] != author:
            raise AuthError("only the author may retract")
        self.annotations.update_one(
            {"_id": annotation_id},
            {"$set": {"retracted": True, "text": "[retracted by author]"}},
        )

    def flag(self, annotation_id: ObjectId, reporter: str, reason: str) -> None:
        """Community moderation: flag a note for review."""
        result = self.annotations.update_one(
            {"_id": annotation_id},
            {"$addToSet": {"flags": {"by": reporter, "reason": reason}}},
        )
        if result.matched_count == 0:
            raise NotFoundError("no such annotation")

    # -- reading -----------------------------------------------------------------

    def for_target(self, collection: str, key: str,
                   include_retracted: bool = True) -> List[dict]:
        """All notes on one document, thread-ordered (roots then replies)."""
        query: Dict[str, Any] = {
            "target.collection": collection, "target.key": key,
        }
        if not include_retracted:
            query["retracted"] = False
        notes = self.annotations.find(query).sort("created_at", 1).to_list()
        roots = [n for n in notes if n.get("reply_to") is None]
        by_parent: Dict[Any, List[dict]] = {}
        for n in notes:
            if n.get("reply_to") is not None:
                by_parent.setdefault(n["reply_to"], []).append(n)
        ordered: List[dict] = []

        def add(note: dict, depth: int) -> None:
            note = dict(note)
            note["depth"] = depth
            ordered.append(note)
            for child in by_parent.get(note["_id"], []):
                add(child, depth + 1)

        for root in roots:
            add(root, 0)
        return ordered

    def by_author(self, author: str) -> List[dict]:
        return self.annotations.find({"author": author}).to_list()

    def flagged(self, min_flags: int = 1) -> List[dict]:
        """Moderation queue: notes with at least ``min_flags`` reports."""
        return [
            n for n in self.annotations.find({"flags": {"$exists": True}})
            if len(n.get("flags", [])) >= min_flags
        ]

    def stats(self) -> dict:
        rows = self.annotations.aggregate([
            {"$group": {"_id": "$target.collection", "n": {"$sum": 1}}},
        ])
        return {row["_id"]: row["n"] for row in rows}
