"""``repro.api`` — data dissemination (§III-D, §IV-D).

The QueryEngine abstraction layer (aliases + sanitization + timing), the
Materials API REST router with its HTTP server and MPRester-style client,
delegated third-party auth, per-user rate limiting, user sandboxes with a
publish flow, and the query-latency log behind Figure 5.
"""

from .querylog import QueryLog
from .queryengine import QueryEngine, SAFE_OPERATORS
from .auth import AuthRegistry, ThirdPartyProvider, User
from .ratelimit import RateLimiter
from .sandbox import SandboxManager
from .rest import MaterialsAPI, SUPPORTED_PROPERTIES
from .httpd import MaterialsAPIServer
from .client import MPRester
from .annotations import AnnotationStore
from .webui import WebUI
from .user_workflows import UserWorkflowManager

__all__ = [
    "QueryLog",
    "QueryEngine",
    "SAFE_OPERATORS",
    "AuthRegistry",
    "ThirdPartyProvider",
    "User",
    "RateLimiter",
    "SandboxManager",
    "MaterialsAPI",
    "SUPPORTED_PROPERTIES",
    "MaterialsAPIServer",
    "MPRester",
    "AnnotationStore",
    "WebUI",
    "UserWorkflowManager",
]
