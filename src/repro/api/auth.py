"""Delegated authentication and API keys (§IV-D1).

"Rather than maintaining sensitive user login information, we delegate
authentication to trusted third party providers (like Google or Yahoo) ...
anyone with an email address from a trusted third party can sign up for an
account."

The simulation keeps the trust structure: a :class:`ThirdPartyProvider`
vouches for an email and returns a signed assertion; the
:class:`AuthRegistry` accepts assertions only from registered providers,
creates/looks up the account, and issues either a session token or a
long-lived API key (what the Materials API uses).  No passwords anywhere —
exactly the paper's point.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import time
from typing import Dict

from ..errors import AuthError

__all__ = ["ThirdPartyProvider", "User", "AuthRegistry"]


class ThirdPartyProvider:
    """A simulated OpenID-style identity provider."""

    def __init__(self, name: str):
        self.name = name
        self._secret = os.urandom(16)

    def assert_identity(self, email: str) -> dict:
        """Produce a signed identity assertion for ``email``."""
        if "@" not in email:
            raise AuthError(f"not an email address: {email!r}")
        issued = time.time()
        payload = f"{self.name}|{email}|{issued:.3f}"
        signature = hmac.new(self._secret, payload.encode(),
                             hashlib.sha256).hexdigest()
        return {"provider": self.name, "email": email, "issued": issued,
                "signature": signature}

    def verify(self, assertion: dict) -> bool:
        payload = (
            f"{assertion['provider']}|{assertion['email']}|"
            f"{assertion['issued']:.3f}"
        )
        expected = hmac.new(self._secret, payload.encode(),
                            hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, assertion.get("signature", ""))


class User:
    """An account created from a third-party identity."""

    def __init__(self, user_id: str, email: str, provider: str):
        self.user_id = user_id
        self.email = email
        self.provider = provider

    def __repr__(self) -> str:
        return f"User({self.user_id}, {self.email} via {self.provider})"


class AuthRegistry:
    """Accounts, session tokens, and API keys — no password storage."""

    def __init__(self, session_ttl_s: float = 3600.0):
        self._providers: Dict[str, ThirdPartyProvider] = {}
        self._users: Dict[str, User] = {}
        self._by_email: Dict[str, str] = {}
        self._sessions: Dict[str, tuple] = {}  # token -> (user_id, expiry)
        self._api_keys: Dict[str, str] = {}  # key -> user_id
        self.session_ttl_s = session_ttl_s

    # -- provider management ----------------------------------------------

    def register_provider(self, provider: ThirdPartyProvider) -> None:
        self._providers[provider.name] = provider

    # -- sign-in flow -------------------------------------------------------

    def sign_in(self, assertion: dict) -> str:
        """Accept a provider assertion; create the account if new.

        Returns a session token.
        """
        provider = self._providers.get(assertion.get("provider", ""))
        if provider is None:
            raise AuthError(
                f"untrusted provider {assertion.get('provider')!r}"
            )
        if not provider.verify(assertion):
            raise AuthError("identity assertion failed verification")
        email = assertion["email"]
        user_id = self._by_email.get(email)
        if user_id is None:
            user_id = f"u{len(self._users) + 1:05d}"
            self._users[user_id] = User(user_id, email, provider.name)
            self._by_email[email] = user_id
        token = hashlib.sha256(os.urandom(32)).hexdigest()
        self._sessions[token] = (user_id, time.time() + self.session_ttl_s)
        return token

    def authenticate(self, token: str) -> User:
        """Resolve a session token; raises on unknown/expired tokens."""
        entry = self._sessions.get(token)
        if entry is None:
            raise AuthError("unknown session token")
        user_id, expiry = entry
        if time.time() > expiry:
            del self._sessions[token]
            raise AuthError("session expired")
        return self._users[user_id]

    # -- API keys (the Materials API credential) ----------------------------------

    def issue_api_key(self, token: str) -> str:
        """A signed-in user mints a long-lived API key."""
        user = self.authenticate(token)
        key = "mpk-" + hashlib.sha256(os.urandom(32)).hexdigest()[:32]
        self._api_keys[key] = user.user_id
        return key

    def authenticate_api_key(self, key: str) -> User:
        user_id = self._api_keys.get(key)
        if user_id is None:
            raise AuthError("invalid API key")
        return self._users[user_id]

    def revoke_api_key(self, key: str) -> None:
        self._api_keys.pop(key, None)

    @property
    def n_users(self) -> int:
        return len(self._users)
