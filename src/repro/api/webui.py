"""The Web UI: server-rendered portal pages (§III-D1).

"We have built a rich, interactive web portal focusing on the scientist as
the end-user.  Our interface uses technologies like HTML5 and AJAX to allow
users to search and browse MP data and pan and zoom real-time visualizations
of bandstructures, diffraction patterns, and other properties."

We render the same information server-side with stdlib-only HTML + inline
SVG: a searchable materials index, a per-material detail page with an SVG
XRD stick pattern and an SVG band-structure plot, and the user annotations
thread (the paper's "collaborative tools allow users to publicly annotate
the data").  Every page reads through the QueryEngine, so Web-UI traffic
lands in the same query log as API traffic — exactly the paper's
single-back-end architecture.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Optional

from ..errors import NotFoundError
from .annotations import AnnotationStore
from .queryengine import QueryEngine

__all__ = ["WebUI"]

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; color: #222; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #bbb; padding: 4px 10px; text-align: left; }}
 th {{ background: #eef; }}
 .metal {{ color: #a40; }} .insulator {{ color: #06a; }}
 svg {{ border: 1px solid #ccc; background: #fff; }}
 .annotation {{ border-left: 3px solid #8ac; margin: .5em 0; padding: .2em .8em; }}
</style></head><body>
<h1>{title}</h1>
{body}
<hr><small>Materials Project reproduction — data served through the
QueryEngine abstraction layer</small>
</body></html>"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


class WebUI:
    """Server-side HTML renderer over the QueryEngine."""

    def __init__(self, query_engine: QueryEngine,
                 annotations: Optional[AnnotationStore] = None):
        self.qe = query_engine
        self.annotations = annotations

    # -- pages -----------------------------------------------------------

    def index_page(self, search: Optional[str] = None, limit: int = 50) -> str:
        """The searchable materials browser."""
        criteria: Dict[str, Any] = {}
        if search:
            criteria = {"$or": [
                {"reduced_formula": search},
                {"chemical_system": "-".join(sorted(search.split("-")))},
                {"elements": search},
            ]}
        docs = self.qe.query(
            criteria,
            properties=["material_id", "reduced_formula", "chemical_system",
                        "formation_energy_per_atom", "band_gap", "is_metal",
                        "e_above_hull"],
            sort=[("formation_energy_per_atom", 1)],
            limit=limit,
            user="webui",
        )
        rows = []
        for d in docs:
            gap = d.get("band_gap")
            klass = "metal" if d.get("is_metal") else "insulator"
            rows.append(
                "<tr>"
                f"<td><a href='/ui/material/{_esc(d.get('material_id'))}'>"
                f"{_esc(d.get('material_id'))}</a></td>"
                f"<td>{_esc(d.get('reduced_formula'))}</td>"
                f"<td>{_esc(d.get('chemical_system'))}</td>"
                f"<td>{d.get('formation_energy_per_atom', 0) or 0:.3f}</td>"
                f"<td class='{klass}'>"
                f"{'metal' if d.get('is_metal') else f'{gap:.2f} eV' if gap is not None else '-'}"
                "</td>"
                f"<td>{d.get('e_above_hull', float('nan')) if d.get('e_above_hull') is not None else '-'}</td>"
                "</tr>"
            )
        body = (
            "<form method='get' action='/ui'>"
            "<input name='search' placeholder='formula / chemsys / element'"
            f" value='{_esc(search or '')}'/>"
            "<button>Search</button></form>"
            f"<p>{len(docs)} materials</p>"
            "<table><tr><th>id</th><th>formula</th><th>system</th>"
            "<th>E_f (eV/atom)</th><th>gap</th><th>E above hull</th></tr>"
            + "".join(rows) + "</table>"
        )
        return _PAGE.format(title="Materials Browser", body=body)

    def material_page(self, material_id: str) -> str:
        """Detail page: properties + SVG XRD + SVG bands + annotations."""
        doc = self.qe.query_one({"material_id": material_id}, user="webui")
        if doc is None:
            raise NotFoundError(f"no material {material_id!r}")
        props = "".join(
            f"<tr><th>{_esc(k)}</th><td>{_esc(doc.get(k))}</td></tr>"
            for k in ("reduced_formula", "chemical_system", "nsites",
                      "energy_per_atom", "formation_energy_per_atom",
                      "e_above_hull", "band_gap", "is_metal")
        )
        xrd_svg = self._xrd_svg(material_id)
        bands_svg = self._bands_svg(material_id)
        notes = self._annotations_html(material_id)
        body = (
            f"<table>{props}</table>"
            f"<h2>X-ray diffraction</h2>{xrd_svg}"
            f"<h2>Band structure</h2>{bands_svg}"
            f"<h2>Community annotations</h2>{notes}"
            "<p><a href='/ui'>&larr; back to browser</a></p>"
        )
        return _PAGE.format(
            title=f"{doc.get('reduced_formula')} ({material_id})", body=body
        )

    def battery_screen_page(self, working_ion: str = "Li") -> str:
        """The paper's Figure 1 as a live page: voltage vs. capacity scatter.

        Computed candidates are dots; the known-materials envelope
        (commercial cathode chemistry circa 2012) is the shaded box the
        screen is meant to break out of.
        """
        electrodes = self.qe.query(
            {"battery_type": "intercalation", "working_ion": working_ion},
            collection="batteries", user="webui",
        )
        if not electrodes:
            body = "<p>No electrodes screened yet.</p>"
            return _PAGE.format(title="Battery Screening", body=body)
        width, height = 680, 420
        v_lo, v_hi = 0.0, 5.0
        c_lo, c_hi = 0.0, max(
            350.0, max(e["capacity_grav"] for e in electrodes) * 1.1
        )

        def x(capacity: float) -> float:
            return 50 + (capacity - c_lo) / (c_hi - c_lo) * (width - 70)

        def y(voltage: float) -> float:
            return height - 35 - (voltage - v_lo) / (v_hi - v_lo) * (height - 60)

        # Known-materials envelope (the figure's comparison region).
        env = (
            f"<rect x='{x(100):.0f}' y='{y(4.3):.0f}' "
            f"width='{x(200) - x(100):.0f}' height='{y(3.0) - y(4.3):.0f}' "
            "fill='#fc6' fill-opacity='0.35' stroke='#c93'/>"
            f"<text x='{x(105):.0f}' y='{y(4.35):.0f}' font-size='11' "
            "fill='#963'>known materials</text>"
        )
        dots = []
        for e in sorted(electrodes, key=lambda d: -d["specific_energy"]):
            cx, cy = x(e["capacity_grav"]), y(e["average_voltage"])
            dots.append(
                f"<circle cx='{cx:.1f}' cy='{cy:.1f}' r='5' fill='#06a' "
                "fill-opacity='0.75'>"
                f"<title>{_esc(e['framework'])}: "
                f"{e['average_voltage']:.2f} V, "
                f"{e['capacity_grav']:.0f} mAh/g, "
                f"{e['specific_energy']:.0f} Wh/kg</title></circle>"
            )
        axes = (
            f"<line x1='50' y1='{height - 35}' x2='{width - 20}' "
            f"y2='{height - 35}' stroke='#444'/>"
            f"<line x1='50' y1='25' x2='50' y2='{height - 35}' stroke='#444'/>"
            f"<text x='{width // 2 - 60}' y='{height - 8}' font-size='12'>"
            "capacity (mAh/g)</text>"
            f"<text x='8' y='{height // 2}' font-size='12' "
            f"transform='rotate(-90 14 {height // 2})'>voltage (V)</text>"
        )
        svg = (f"<svg width='{width}' height='{height}'>" + env
               + "".join(dots) + axes + "</svg>")
        rows = "".join(
            "<tr>"
            f"<td>{_esc(e['framework'])}</td>"
            f"<td>{e['average_voltage']:.2f}</td>"
            f"<td>{e['capacity_grav']:.0f}</td>"
            f"<td>{e['specific_energy']:.0f}</td>"
            "</tr>"
            for e in sorted(electrodes, key=lambda d: -d["specific_energy"])
        )
        body = (
            f"<p>{len(electrodes)} {working_ion}-ion intercalation candidates "
            "screened by computation (the paper's Figure 1).</p>"
            + svg
            + "<table><tr><th>framework</th><th>V</th><th>mAh/g</th>"
              "<th>Wh/kg</th></tr>" + rows + "</table>"
            "<p><a href='/ui'>&larr; back to browser</a></p>"
        )
        return _PAGE.format(title="Battery Screening (Figure 1)", body=body)

    # -- SVG visualizations ------------------------------------------------------

    def _xrd_svg(self, material_id: str, width: int = 640,
                 height: int = 220) -> str:
        rows = self.qe.query({"material_id": material_id}, collection="xrd",
                             user="webui")
        if not rows or not rows[0].get("peaks"):
            return "<p>(no diffraction pattern computed)</p>"
        peaks = rows[0]["peaks"]
        sticks = []
        for p in peaks:
            x = 20 + (p["two_theta"] - 10) / 80.0 * (width - 40)
            h = p["intensity"] / 100.0 * (height - 40)
            sticks.append(
                f"<line x1='{x:.1f}' y1='{height - 20}' x2='{x:.1f}' "
                f"y2='{height - 20 - h:.1f}' stroke='#06a' stroke-width='2'>"
                f"<title>2θ={p['two_theta']:.2f}° hkl={tuple(p['hkl'])} "
                f"I={p['intensity']:.0f}</title></line>"
            )
        axis = (
            f"<line x1='20' y1='{height - 20}' x2='{width - 20}' "
            f"y2='{height - 20}' stroke='#444'/>"
            f"<text x='{width // 2}' y='{height - 4}' font-size='11'>"
            "2θ (degrees, Cu Kα)</text>"
        )
        return (f"<svg width='{width}' height='{height}'>"
                + "".join(sticks) + axis + "</svg>")

    def _bands_svg(self, material_id: str, width: int = 640,
                   height: int = 260) -> str:
        rows = self.qe.query({"material_id": material_id},
                             collection="bandstructures", user="webui")
        if not rows or not rows[0].get("bands"):
            return "<p>(no band structure computed)</p>"
        data = rows[0]["bands"]
        bands = data["bands"]
        fermi = data["fermi_level"]
        n_k = len(bands[0])
        flat = [e for band in bands for e in band]
        e_lo, e_hi = min(flat) - 0.5, max(flat) + 0.5

        def x(i: int) -> float:
            return 30 + i / max(1, n_k - 1) * (width - 50)

        def y(e: float) -> float:
            return height - 25 - (e - e_lo) / (e_hi - e_lo) * (height - 45)

        paths = []
        for band in bands:
            pts = " ".join(f"{x(i):.1f},{y(e):.1f}" for i, e in enumerate(band))
            paths.append(
                f"<polyline points='{pts}' fill='none' stroke='#06a' "
                "stroke-width='1.2'/>"
            )
        fermi_line = (
            f"<line x1='30' y1='{y(fermi):.1f}' x2='{width - 20}' "
            f"y2='{y(fermi):.1f}' stroke='#a40' stroke-dasharray='5,4'/>"
            f"<text x='{width - 90}' y='{y(fermi) - 4:.1f}' font-size='11' "
            "fill='#a40'>E_F</text>"
        )
        labels = []
        for i, label in enumerate(data.get("labels", [])):
            if label:
                labels.append(
                    f"<text x='{x(i) - 4:.1f}' y='{height - 8}' "
                    f"font-size='11'>{_esc(label)}</text>"
                )
        return (f"<svg width='{width}' height='{height}'>"
                + "".join(paths) + fermi_line + "".join(labels) + "</svg>")

    # -- annotations -----------------------------------------------------------------

    def _annotations_html(self, material_id: str) -> str:
        if self.annotations is None:
            return "<p>(annotations disabled)</p>"
        notes = self.annotations.for_target("materials", material_id)
        if not notes:
            return "<p>(no annotations yet)</p>"
        return "".join(
            f"<div class='annotation'><b>{_esc(n['author'])}</b>: "
            f"{_esc(n['text'])}</div>"
            for n in notes
        )
