"""MPRester-style client for the Materials API (§III-D3).

"The pymatgen library can import and export data from a number of existing
formats, including fetching data via the Materials API."  This client is
that bridge: it speaks the REST envelope either over real HTTP (against a
:class:`~repro.api.httpd.MaterialsAPIServer`) or in-process (against a
router directly), and returns analysis-library objects —
``get_structure_by_formula`` hands back a real
:class:`~repro.matgen.structure.Structure`, ``get_entries_in_chemsys``
returns :class:`~repro.matgen.phasediagram.PDEntry` lists ready for hull
construction — so "jointly analyzing local and remote data" is one code
path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union
from urllib.request import Request, urlopen

from ..errors import APIError, NotFoundError
from ..matgen.phasediagram import PDEntry
from ..matgen.structure import Structure
from .rest import MaterialsAPI

__all__ = ["MPRester"]


class MPRester:
    """Client over HTTP (``base_url``) or in-process (``router``)."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        router: Optional[MaterialsAPI] = None,
        api_key: Optional[str] = None,
        timeout_s: float = 30.0,
    ):
        if (base_url is None) == (router is None):
            raise APIError("provide exactly one of base_url or router")
        self.base_url = base_url.rstrip("/") if base_url else None
        self.router = router
        self.api_key = api_key
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def _get(self, path: str) -> Any:
        if self.router is not None:
            envelope = self.router.handle(path, api_key=self.api_key)
        else:
            request = Request(self.base_url + path)
            if self.api_key:
                request.add_header("X-API-KEY", self.api_key)
            try:
                with urlopen(request, timeout=self.timeout_s) as response:
                    envelope = json.loads(response.read().decode("utf-8"))
            except Exception as exc:  # urllib raises HTTPError on 4xx
                body = getattr(exc, "read", lambda: b"{}")()
                try:
                    envelope = json.loads(body.decode("utf-8"))
                except (ValueError, AttributeError):
                    raise APIError(f"transport failure: {exc}") from exc
        if not envelope.get("valid_response"):
            status = envelope.get("status")
            message = envelope.get("error", "unknown API error")
            if status == 404:
                raise NotFoundError(message)
            raise APIError(f"API error {status}: {message}")
        return envelope["response"]

    # -- the Fig. 4 call and friends ------------------------------------------------

    def get_property(self, identifier: str, prop: str) -> Any:
        """``get_property("Fe2O3", "energy")`` — the paper's example URI."""
        rows = self._get(f"/rest/v1/materials/{identifier}/vasp/{prop}")
        return rows[0][prop] if len(rows) == 1 else [r.get(prop) for r in rows]

    def get_energy(self, identifier: str) -> Union[float, List[float]]:
        return self.get_property(identifier, "energy")

    def get_band_gap(self, identifier: str) -> Union[float, List[float]]:
        return self.get_property(identifier, "band_gap")

    def get_material(self, identifier: str) -> Dict[str, Any]:
        rows = self._get(f"/rest/v1/materials/{identifier}/vasp")
        return rows[0]

    def get_materials(self, identifier: str) -> List[Dict[str, Any]]:
        return self._get(f"/rest/v1/materials/{identifier}/vasp")

    def get_structure_by_formula(self, formula: str) -> Structure:
        """Remote document → a live analysis-library object."""
        rows = self._get(f"/rest/v1/materials/{formula}/vasp/structure")
        structure_dict = rows[0]["structure"]
        if structure_dict is None:
            raise NotFoundError(f"material {formula!r} has no structure")
        return Structure.from_dict(structure_dict)

    def get_entries_in_chemsys(self, elements: List[str]) -> List[PDEntry]:
        """All materials inside a chemical system, as hull-ready entries.

        Queries every sub-system (like pymatgen's MPRester does) so binary
        entries appear in ternary hulls.
        """
        from itertools import combinations

        entries: List[PDEntry] = []
        seen = set()
        for r in range(1, len(elements) + 1):
            for combo in combinations(sorted(elements), r):
                system = "-".join(combo)
                try:
                    rows = self._get(f"/rest/v1/materials/{system}/vasp")
                except NotFoundError:
                    continue
                for doc in rows:
                    mid = doc.get("material_id")
                    if mid in seen or doc.get("energy") is None:
                        continue
                    seen.add(mid)
                    entries.append(
                        PDEntry(doc["formula"], doc["energy"], entry_id=mid)
                    )
        return entries

    def get_battery(self, battery_id: str) -> Dict[str, Any]:
        rows = self._get(f"/rest/v1/batteries/{battery_id}")
        return rows[0]

    def get_batteries(self) -> List[Dict[str, Any]]:
        return self._get("/rest/v1/batteries")

    def get_tasks(self, mps_id: str) -> List[Dict[str, Any]]:
        return self._get(f"/rest/v1/tasks/{mps_id}")
