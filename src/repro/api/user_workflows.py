"""User-defined workflows on protected datastores — the paper's future work.

"Future work in the Materials Project will address the challenges associated
with allowing users to define workflows on their own protected datastores.
This will enable broader collaborative science by shortening the materials
design cycle."

:class:`UserWorkflowManager` implements that vision on top of the existing
primitives: an authenticated user submits candidate structures; the manager
creates approval-gated Fireworks (a core-team member must release them onto
the shared HPC resources), enforces a per-user compute quota, and routes the
results into the submitting user's private sandbox rather than the public
core — closing the loop of Figure 3 for external users.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..errors import AuthError, BadRequestError, NotFoundError
from ..fireworks.launchpad import LaunchPad
from ..fireworks.model import Fuse, Workflow
from ..fireworks.dupefinder import vasp_firework
from ..matgen.mps import mps_from_structure, validate_mps
from ..matgen.structure import Structure
from .sandbox import SandboxManager

__all__ = ["UserWorkflowManager"]

#: Gentle parameters for user submissions (robust over arbitrary inputs).
_USER_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500,
               "EDIFF": 1e-5}


class UserWorkflowManager:
    """Submission, approval, quota, and sandbox routing for user workflows."""

    def __init__(
        self,
        launchpad: LaunchPad,
        sandboxes: SandboxManager,
        max_structures_per_user: int = 50,
        core_team: Optional[Sequence[str]] = None,
    ):
        self.launchpad = launchpad
        self.sandboxes = sandboxes
        self.max_structures_per_user = int(max_structures_per_user)
        self.core_team = set(core_team or ())
        self.submissions = launchpad.db.get_collection("user_submissions")
        if "submission_id_1" not in self.submissions.index_information():
            self.submissions.create_index("submission_id", unique=True)

    # -- quota ----------------------------------------------------------------

    def _used_quota(self, user: str) -> int:
        rows = self.submissions.aggregate([
            {"$match": {"user": user}},
            {"$group": {"_id": None, "n": {"$sum": "$n_structures"}}},
        ])
        return rows[0]["n"] if rows else 0

    def remaining_quota(self, user: str) -> int:
        return max(0, self.max_structures_per_user - self._used_quota(user))

    # -- submission ----------------------------------------------------------------

    def submit(
        self,
        user: str,
        structures: Sequence[Structure],
        sandbox_id: Optional[str] = None,
        description: str = "",
    ) -> dict:
        """Submit user structures as an approval-gated workflow.

        Creates (or reuses) the user's sandbox, writes the MPS records, and
        enqueues approval-gated Fireworks.  Returns the submission record.
        """
        if not structures:
            raise BadRequestError("submission contains no structures")
        if len(structures) > self.remaining_quota(user):
            raise BadRequestError(
                f"quota exceeded: {len(structures)} structures requested, "
                f"{self.remaining_quota(user)} remaining for {user!r}"
            )
        if sandbox_id is None:
            sandbox_id = self.sandboxes.create_sandbox(
                user, f"submission-{int(time.time())}"
            )
        elif not self.sandboxes.can_access(sandbox_id, user):
            raise AuthError(f"{user!r} cannot use sandbox {sandbox_id!r}")

        records = []
        for s in structures:
            record = mps_from_structure(s, source="user-submission",
                                        created_by=user)
            validate_mps(record)
            records.append(record)
            self.sandboxes.submit(sandbox_id, user, "mps", record)

        fireworks = []
        for s, record in zip(structures, records):
            fw = vasp_firework(
                s, mps_id=record["mps_id"], incar=dict(_USER_INCAR),
                walltime_s=1e9, memory_mb=1e6,
            )
            fw.fuse = Fuse(requires_approval=True)
            fw.spec["submitted_by"] = user
            fw.spec["sandbox_id"] = sandbox_id
            fireworks.append(fw)
        workflow = Workflow(fireworks, name=f"user-{user}")
        self.launchpad.add_workflow(workflow)

        submission = {
            "submission_id": f"sub-{workflow.workflow_id}",
            "workflow_id": workflow.workflow_id,
            "user": user,
            "sandbox_id": sandbox_id,
            "n_structures": len(structures),
            "description": description,
            "state": "PENDING_APPROVAL",
            "submitted_at": time.time(),
            "fw_ids": [fw.fw_id for fw in fireworks],
        }
        self.submissions.insert_one(submission)
        return submission

    # -- approval gate ----------------------------------------------------------------

    def approve(self, submission_id: str, approver: str) -> dict:
        """A core-team member releases the submission onto shared resources."""
        if approver not in self.core_team:
            raise AuthError(f"{approver!r} is not on the core team")
        submission = self.submissions.find_one({"submission_id": submission_id})
        if submission is None:
            raise NotFoundError(f"no submission {submission_id!r}")
        if submission["state"] != "PENDING_APPROVAL":
            raise BadRequestError(
                f"submission is {submission['state']}, not pending"
            )
        for fw_id in submission["fw_ids"]:
            self.launchpad.approve(fw_id)
        self.submissions.update_one(
            {"submission_id": submission_id},
            {"$set": {"state": "APPROVED", "approved_by": approver,
                      "approved_at": time.time()}},
        )
        return self.submissions.find_one({"submission_id": submission_id})

    def reject(self, submission_id: str, approver: str, reason: str) -> None:
        if approver not in self.core_team:
            raise AuthError(f"{approver!r} is not on the core team")
        submission = self.submissions.find_one({"submission_id": submission_id})
        if submission is None:
            raise NotFoundError(f"no submission {submission_id!r}")
        self.launchpad.engines.update_many(
            {"fw_id": {"$in": submission["fw_ids"]}},
            {"$set": {"state": "DEFUSED"}},
        )
        self.submissions.update_one(
            {"submission_id": submission_id},
            {"$set": {"state": "REJECTED", "rejected_by": approver,
                      "reason": reason}},
        )

    # -- result routing ----------------------------------------------------------------

    def collect_results(self, submission_id: str) -> dict:
        """Copy finished task results into the submitter's sandbox.

        Idempotent; call any time.  Marks the submission COMPLETED once
        every Firework reached a terminal state.
        """
        submission = self.submissions.find_one({"submission_id": submission_id})
        if submission is None:
            raise NotFoundError(f"no submission {submission_id!r}")
        user = submission["user"]
        sandbox_id = submission["sandbox_id"]
        routed = 0
        terminal = 0
        for fw_id in submission["fw_ids"]:
            engine = self.launchpad.engines.find_one({"fw_id": fw_id})
            state = engine.get("state")
            if state in ("COMPLETED", "FIZZLED", "DEFUSED"):
                terminal += 1
            if state != "COMPLETED" or engine.get("task_id") is None:
                continue
            already = self.launchpad.db.get_collection(
                "sandbox_results"
            ).find_one({"_sandbox.sandbox_id": sandbox_id, "fw_id": fw_id})
            if already is not None:
                continue
            task = self.launchpad.tasks.find_one({"_id": engine["task_id"]})
            task.pop("_id", None)
            self.sandboxes.submit(sandbox_id, user, "sandbox_results", task)
            routed += 1
        if terminal == len(submission["fw_ids"]):
            self.submissions.update_one(
                {"submission_id": submission_id},
                {"$set": {"state": "COMPLETED"}},
            )
        return {"routed": routed, "terminal": terminal,
                "total": len(submission["fw_ids"])}

    def pending_approvals(self) -> List[dict]:
        return self.submissions.find({"state": "PENDING_APPROVAL"}).to_list()

    def submissions_for(self, user: str) -> List[dict]:
        return self.submissions.find({"user": user}).to_list()
