"""A real HTTP front end for the Materials API (stdlib only).

Serves :class:`~repro.api.rest.MaterialsAPI` over
``http.server.ThreadingHTTPServer``: GET requests route by path, the API
key arrives via the ``X-API-KEY`` header or an ``API_KEY`` query parameter,
and responses are JSON with proper status codes.  This is the "Web API"
box of the paper's architecture served over an actual socket, so the
examples and benches exercise a genuine HTTP round trip.

Two operational endpoints ride alongside the data API:

* ``GET /metrics`` — the shared metrics registry in text exposition
  format (counters, gauges, histogram quantiles);
* ``GET /status`` — JSON: the backing database's ``serverStatus``
  (opcounters, profiling level) plus a registry snapshot;
* ``GET /ops`` — live ``currentOp()`` output for the backing store;
* ``GET /health`` — the attached :class:`~repro.obs.health.HealthMonitor`
  report (gauges + SLO evaluation); 200 while green/warn, 503 once an
  open alert reaches critical, so load balancers can act on it;
* ``GET /alerts`` — the SLO engine's alert history (open + recent);
* ``GET /provenance/<material_id>`` — the provenance DAG walked back
  from one material to its source tasks and workflows;
* ``GET /telemetry/metrics|access|traces`` — the telemetry warehouse's
  read surface: metrics history/rollups, access-log analytics (filters,
  ``top=``, ``summary=1``), and tail-sampled traces;
* ``GET /traces/<trace_id>`` — one tail-sampled trace tree (404 if the
  trace was dropped by the sampler);
* ``GET /debug/profile|flamegraph|locks`` — the continuous profiler:
  JSON snapshot of the process-global sampling profiler (``action=start``
  / ``action=stop`` drive its lifecycle), folded flamegraph stacks as
  ``text/plain``, and the backing store's lock-contention report;
* ``GET /debug/flight`` — the process-global flight recorder's status
  (``?window=N`` adds the last N in-memory snapshots, ``?anomalies=1``
  runs the MAD-z-score scan, ``?events=1`` lists recent stall/shutdown
  events).

When a :class:`~repro.obs.warehouse.TelemetryWarehouse` is attached,
every request additionally lands a structured record in
``telemetry.access`` (endpoint template, method, resolved user id,
status, duration, request/response bytes) — the paper's usage-analytics
story with the datastore as its own warehouse.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from ..docstore.documents import DocumentJSONEncoder
from ..obs import get_logger, get_registry, log_event
from .rest import MaterialsAPI

__all__ = ["MaterialsAPIServer"]


class _Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        t0 = time.perf_counter()
        parsed = urlparse(self.path)
        params = parse_qs(parsed.query)
        self._last_status: Optional[int] = None
        self._last_bytes = 0
        self._request_user: Optional[str] = None
        error: Optional[str] = None
        try:
            self._route(parsed, params)
        except Exception as exc:  # noqa: BLE001 - record, then let stdlib log it
            error = type(exc).__name__
            raise
        finally:
            self._record_access(parsed.path, t0, error)

    def _route(self, parsed: Any, params: dict) -> None:
        api: MaterialsAPI = self.server.materials_api  # type: ignore[attr-defined]
        if parsed.path == "/metrics":
            self._send_bytes(
                200, get_registry().render_text().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
            return
        if parsed.path == "/status":
            self._send_json(200, self._status_document(api))
            return
        if parsed.path == "/ops":
            self._send_json(200, self._ops_document(api))
            return
        if parsed.path == "/health":
            self._serve_health()
            return
        if parsed.path == "/alerts":
            self._serve_alerts()
            return
        if parsed.path.startswith("/telemetry/"):
            self._serve_telemetry(parsed.path, params)
            return
        if parsed.path.startswith("/traces/"):
            self._serve_trace(parsed.path.rsplit("/", 1)[-1])
            return
        if parsed.path.startswith("/provenance/"):
            self._serve_provenance(api, parsed.path.rsplit("/", 1)[-1])
            return
        if parsed.path.startswith("/debug/"):
            self._serve_debug(api, parsed.path, params)
            return
        if parsed.path == "/ui" or parsed.path.startswith("/ui/"):
            self._serve_ui(parsed.path, params)
            return
        api_key = self.headers.get("X-API-KEY") or (
            params.get("API_KEY", [None])[0]
        )
        self._request_user = self._resolve_user(api, api_key)
        envelope = api.handle(parsed.path, api_key=api_key)
        status = 200 if envelope.get("valid_response") else envelope.get(
            "status", 400
        )
        self._send_json(status, envelope)

    # -- access-log warehouse --------------------------------------------

    @staticmethod
    def _endpoint_of(path: str) -> str:
        """Bound endpoint cardinality: template away per-document ids so
        the access warehouse groups by *route*, not by material."""
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts:
            return "/"
        if parts[0] == "rest" and len(parts) >= 3:
            return "/".join(parts[:3])  # rest/v1/materials
        if parts[0] in ("provenance", "traces") and len(parts) > 1:
            return f"{parts[0]}/<id>"
        if parts[0] == "ui" and len(parts) > 2:
            return "/".join(parts[:2]) + "/<id>"
        return "/".join(parts)

    @staticmethod
    def _resolve_user(api: MaterialsAPI, api_key: Optional[str]) -> Optional[str]:
        """The user id behind an API key — never the raw key (the access
        warehouse is queryable; keys must not leak into it)."""
        auth = getattr(api, "auth", None)
        if api_key is None or auth is None:
            return None
        try:
            return auth.authenticate_api_key(api_key).user_id
        except Exception:  # noqa: BLE001 - bad key: recorded as anonymous
            return None

    def _record_access(self, path: str, t0: float,
                       error: Optional[str]) -> None:
        warehouse = getattr(self.server, "warehouse", None)
        if warehouse is None:
            return
        status = self._last_status
        if status is None:
            status = 500  # crashed before a response was written
        try:
            warehouse.access.record_access(
                endpoint=self._endpoint_of(path),
                method=self.command or "GET",
                user=self._request_user,
                status=status,
                error=error,
                duration_ms=(time.perf_counter() - t0) * 1e3,
                request_bytes=len(self.raw_requestline or b""),
                response_bytes=self._last_bytes,
            )
        except Exception:  # noqa: BLE001 - telemetry must never break serving
            pass

    # -- telemetry warehouse endpoints -----------------------------------

    def _serve_telemetry(self, path: str, params: dict) -> None:
        """``GET /telemetry/metrics|access|traces`` — warehouse queries."""
        warehouse = getattr(self.server, "warehouse", None)
        if warehouse is None:
            self._send_json(
                404, {"error": "telemetry warehouse not attached"}
            )
            return
        section = path.split("/", 2)[-1]
        try:
            if section == "metrics":
                self._serve_telemetry_metrics(warehouse, params)
            elif section == "access":
                self._serve_telemetry_access(warehouse, params)
            elif section == "traces":
                limit = int(params.get("limit", ["50"])[0])
                min_ms = params.get("min_duration_ms", [None])[0]
                self._send_json(200, {"traces": warehouse.tail_sampler.query(
                    min_duration_ms=(
                        float(min_ms) if min_ms is not None else None
                    ),
                    status=params.get("status", [None])[0],
                    limit=limit,
                )})
            else:
                self._send_json(
                    404, {"error": f"unknown telemetry section {section!r}"}
                )
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})

    def _serve_telemetry_metrics(self, warehouse: Any, params: dict) -> None:
        name = params.get("name", [None])[0]
        if name is None:
            self._send_json(200, {
                "names": warehouse.metric_names(),
                "warehouse": warehouse.stats(),
            })
            return
        since = params.get("since", [None])[0]
        until = params.get("until", [None])[0]
        series = warehouse.metrics_series(
            name,
            resolution=params.get("resolution", ["raw"])[0],
            since=float(since) if since is not None else None,
            until=float(until) if until is not None else None,
            limit=int(params.get("limit", ["0"])[0]),
        )
        self._send_json(200, {"name": name, "series": series})

    def _serve_telemetry_access(self, warehouse: Any, params: dict) -> None:
        access = warehouse.access
        top_by = params.get("top", [None])[0]
        if top_by is not None:
            self._send_json(200, {"top": access.top(
                by=top_by, limit=int(params.get("limit", ["10"])[0])
            )})
            return
        if params.get("summary", [None])[0]:
            self._send_json(200, access.summary())
            return
        status = params.get("status", [None])[0]
        min_ms = params.get("min_duration_ms", [None])[0]
        after = params.get("after", [None])[0]
        before = params.get("before", [None])[0]
        records = access.query_access_log(
            endpoint=params.get("endpoint", [None])[0],
            method=params.get("method", [None])[0],
            user=params.get("user", [None])[0],
            status=int(status) if status is not None else None,
            after=float(after) if after is not None else None,
            before=float(before) if before is not None else None,
            min_duration_ms=float(min_ms) if min_ms is not None else None,
            errors_only=bool(params.get("errors_only", [None])[0]),
            limit=int(params.get("limit", ["100"])[0]),
        )
        self._send_json(200, {"records": records})

    def _serve_debug(self, api: MaterialsAPI, path: str,
                     params: dict) -> None:
        """``GET /debug/profile|flamegraph|locks`` — continuous profiling.

        ``/debug/profile`` returns the process-global sampling profiler's
        snapshot (``?action=start&hz=N`` / ``?action=stop`` / ``?action=
        reset`` drive the lifecycle, ``?limit=N`` bounds the stack list);
        ``/debug/flamegraph`` the folded stacks as plain text (one
        ``stack count`` line each, ready for ``flamegraph.pl``);
        ``/debug/locks`` the backing store's lock totals and top-contended
        (waiter, holder) attribution.
        """
        from ..obs.profiler import get_profiler, start_profiler, stop_profiler

        section = path.split("/", 2)[-1]
        if section == "profile":
            action = params.get("action", [None])[0]
            if action == "start":
                hz = float(params.get("hz", ["100"])[0])
                profiler = start_profiler(hz=hz)
                self._send_json(200, {"running": True, "hz": profiler.hz})
                return
            if action == "stop":
                snapshot = stop_profiler()
                self._send_json(
                    200, snapshot if snapshot is not None
                    else {"running": False})
                return
            profiler = get_profiler()
            if profiler is None:
                self._send_json(200, {"running": False, "samples": 0,
                                      "stacks": []})
                return
            if action == "reset":
                profiler.reset()
            limit = int(params.get("limit", ["0"])[0])
            self._send_json(200, profiler.snapshot(limit=limit))
            return
        if section == "flamegraph":
            profiler = get_profiler()
            lines = profiler.folded() if profiler is not None else []
            self._send_bytes(200, ("\n".join(lines) + "\n").encode("utf-8")
                             if lines else b"", "text/plain; charset=utf-8")
            return
        if section == "locks":
            db = getattr(api.qe, "db", None)
            store = getattr(db, "client", None) if db is not None else None
            if store is None:
                self._send_json(404, {"error": "no backing store"})
                return
            limit = int(params.get("limit", ["10"])[0])
            self._send_json(200, store.lock_report(limit=limit))
            return
        if section == "flight":
            self._serve_flight(params)
            return
        self._send_json(404, {"error": f"unknown debug section {section!r}"})

    def _serve_flight(self, params: dict) -> None:
        """``GET /debug/flight`` — the process-global flight recorder."""
        from ..obs.flight import get_flight_recorder, scan_anomalies

        recorder = get_flight_recorder()
        if recorder is None:
            self._send_json(200, {"attached": False, "running": False})
            return
        if params.get("anomalies", [None])[0]:
            self._send_json(200, {
                "attached": True,
                "anomalies": scan_anomalies(recorder.recent()),
            })
            return
        doc = {"attached": True, **recorder.status()}
        window = int(params.get("window", ["0"])[0])
        if window:
            doc["snapshots"] = recorder.recent(window)
        if params.get("events", [None])[0]:
            doc["events"] = recorder.recent_events(50)
        self._send_json(200, doc)

    def _serve_trace(self, trace_id: str) -> None:
        """``GET /traces/<trace_id>`` — one tail-sampled trace tree."""
        warehouse = getattr(self.server, "warehouse", None)
        if warehouse is None:
            self._send_json(
                404, {"error": "telemetry warehouse not attached"}
            )
            return
        doc = warehouse.tail_sampler.get(trace_id)
        if doc is None:
            self._send_json(404, {"error": f"no sampled trace {trace_id!r}"})
            return
        self._send_json(200, doc)

    @staticmethod
    def _status_document(api: MaterialsAPI) -> dict:
        db = getattr(api.qe, "db", None)
        return {
            "server": db.server_status() if db is not None else None,
            "query_log": api.qe.query_log.summary(),
            "metrics": get_registry().snapshot(),
        }

    @staticmethod
    def _ops_document(api: MaterialsAPI) -> dict:
        """``db.currentOp()`` of the store behind the API (``/ops``)."""
        db = getattr(api.qe, "db", None)
        store = getattr(db, "client", None) if db is not None else None
        inprog = store.current_op() if store is not None else []
        return {"inprog": inprog}

    def _serve_health(self) -> None:
        """``GET /health``: evaluate the monitor and pick the status code
        by severity — only *critical* flips to 503 (a warning fleet still
        serves traffic)."""
        monitor = getattr(self.server, "health_monitor", None)
        if monitor is None:
            self._send_json(200, {"status": "green", "gauges": {},
                                  "detail": "no health monitor attached"})
            return
        report = monitor.report()
        status = 503 if report["status"] == "critical" else 200
        self._send_json(status, report)

    def _serve_alerts(self) -> None:
        monitor = getattr(self.server, "health_monitor", None)
        engine = getattr(monitor, "engine", None)
        if engine is None:
            self._send_json(200, {"open": [], "recent": [], "rules": []})
            return
        self._send_json(200, {
            "open": engine.open_alerts(),
            "recent": engine.recent_alerts(50),
            "rules": engine.describe(),
        })

    def _serve_provenance(self, api: MaterialsAPI, material_id: str) -> None:
        from ..errors import NotFoundError
        from ..obs import provenance_graph

        db = getattr(api.qe, "db", None)
        if db is None:
            self._send_json(404, {"error": "no backing database"})
            return
        try:
            self._send_json(200, provenance_graph(db, material_id))
        except NotFoundError as exc:
            self._send_json(404, {"error": str(exc)})

    def _send_json(self, status: int, document: Any) -> None:
        payload = json.dumps(document, cls=DocumentJSONEncoder).encode("utf-8")
        self._send_bytes(status, payload, "application/json")

    def _send_bytes(self, status: int, payload: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        self._last_status = status
        self._last_bytes = len(payload)
        registry = get_registry()
        registry.counter(
            "repro_http_requests_total", "HTTP requests served"
        ).inc(1, status=status)
        registry.counter(
            "repro_http_response_bytes_total", "HTTP response payload bytes"
        ).inc(len(payload))

    def _serve_ui(self, path: str, params: dict) -> None:
        """The Web UI pages (when a WebUI renderer is attached)."""
        from ..errors import NotFoundError

        webui = getattr(self.server, "webui", None)
        if webui is None:
            self._send_html(404, "<h1>Web UI not enabled</h1>")
            return
        try:
            if path in ("/ui", "/ui/"):
                search = params.get("search", [None])[0]
                html_text = webui.index_page(search=search)
            elif path in ("/ui/batteries", "/ui/batteries/"):
                ion = params.get("ion", ["Li"])[0]
                html_text = webui.battery_screen_page(working_ion=ion)
            elif path.startswith("/ui/material/"):
                html_text = webui.material_page(path.rsplit("/", 1)[-1])
            else:
                raise NotFoundError(f"no UI page {path!r}")
            self._send_html(200, html_text)
        except NotFoundError as exc:
            self._send_html(404, f"<h1>404</h1><p>{exc}</p>")

    def _send_html(self, status: int, html_text: str) -> None:
        self._send_bytes(status, html_text.encode("utf-8"),
                         "text/html; charset=utf-8")

    def log_message(self, fmt: str, *args: Any) -> None:
        # Route stdlib access lines through the structured (redacting)
        # logger instead of stderr; DEBUG so they stay quiet by default.
        log_event(get_logger("repro.api.http"), logging.DEBUG, "request",
                  client=self.address_string(), line=fmt % args)


class MaterialsAPIServer:
    """Threaded HTTP server wrapping a MaterialsAPI router."""

    def __init__(self, api: MaterialsAPI, host: str = "127.0.0.1",
                 port: int = 0, webui: Optional[Any] = None,
                 monitor: Optional[Any] = None,
                 warehouse: Optional[Any] = None):
        self.api = api
        self.monitor = monitor if monitor is not None else (
            self._default_monitor(api)
        )
        self.warehouse = warehouse
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.materials_api = api  # type: ignore[attr-defined]
        self._httpd.webui = webui  # type: ignore[attr-defined]
        self._httpd.health_monitor = self.monitor  # type: ignore[attr-defined]
        self._httpd.warehouse = warehouse  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _default_monitor(api: MaterialsAPI) -> Optional[Any]:
        """A stock :class:`HealthMonitor` with the default SLO rule set
        over the API's backing database (none when the query engine has
        no local ``db`` to watch)."""
        db = getattr(api.qe, "db", None)
        if db is None:
            return None
        from ..obs.health import HealthMonitor

        return HealthMonitor(db)

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MaterialsAPIServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "MaterialsAPIServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
