"""The QueryEngine abstraction layer (§III-B4, §IV-D1).

"We have implemented an abstraction layer for queries and updates to our
main collections, implemented as a Python QueryEngine class.  This layer
allows us to install convenient aliases for deeply nested fields or change
the names of collections in a single central place ... Because all queries
go through the QueryEngine abstraction layer, all queries are sanitized and
cannot access the database directly."

Features reproduced:

* **field aliases** — ``"e_hull"`` can stand for ``"e_above_hull"``, or a
  deep path like ``"provenance.parameters.ENCUT"``; aliases apply inside
  criteria (including logical operators), projections, and sort specs;
* **collection aliases** — rename collections centrally;
* **sanitization** — ``$where`` and any non-allowlisted operator are
  rejected; result sizes are capped; callers never touch Collection objects;
* **query timing** — every call lands in a :class:`~repro.api.querylog.
  QueryLog` (Fig. 5's data source).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..docstore.database import Database
from ..errors import APIError, QuerySyntaxError
from .querylog import QueryLog

__all__ = ["QueryEngine", "SAFE_OPERATORS"]

#: Query operators a web user may issue ($where notably absent).
SAFE_OPERATORS = frozenset(
    {
        "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin",
        "$exists", "$all", "$size", "$elemMatch", "$not",
        "$and", "$or", "$nor", "$regex", "$options", "$type", "$mod",
    }
)


class QueryEngine:
    """Central, sanitizing gateway to the main collections."""

    def __init__(
        self,
        database: Database,
        aliases: Optional[Mapping[str, str]] = None,
        collection_aliases: Optional[Mapping[str, str]] = None,
        max_results: int = 1000,
        query_log: Optional[QueryLog] = None,
    ):
        self.db = database
        self.aliases: Dict[str, str] = dict(aliases or {})
        self.collection_aliases: Dict[str, str] = dict(collection_aliases or {})
        self.max_results = int(max_results)
        self.query_log = query_log if query_log is not None else QueryLog()

    # -- alias machinery -----------------------------------------------------

    def add_alias(self, alias: str, real_field: str) -> None:
        self.aliases[alias] = real_field

    def resolve_field(self, field: str) -> str:
        """Alias → real dotted path; alias may also prefix a deeper path."""
        if field in self.aliases:
            return self.aliases[field]
        # "alias.sub.path" resolves through the alias table too.
        head, _, rest = field.partition(".")
        if rest and head in self.aliases:
            return f"{self.aliases[head]}.{rest}"
        return field

    def resolve_collection(self, name: str) -> str:
        return self.collection_aliases.get(name, name)

    # -- sanitization -------------------------------------------------------------

    def _sanitize_and_translate(self, criteria: Any, _depth: int = 0) -> Any:
        if _depth > 16:
            raise APIError("query nesting too deep")
        if isinstance(criteria, Mapping):
            out: Dict[str, Any] = {}
            for key, value in criteria.items():
                if not isinstance(key, str):
                    raise APIError("query keys must be strings")
                if key.startswith("$"):
                    if key not in SAFE_OPERATORS:
                        raise APIError(f"operator {key!r} is not permitted")
                    if key in ("$and", "$or", "$nor"):
                        if not isinstance(value, list):
                            raise APIError(f"{key} requires a list")
                        out[key] = [
                            self._sanitize_and_translate(v, _depth + 1)
                            for v in value
                        ]
                    else:
                        out[key] = self._sanitize_and_translate(value, _depth + 1)
                else:
                    out[self.resolve_field(key)] = self._sanitize_and_translate(
                        value, _depth + 1
                    )
            return out
        if isinstance(criteria, list):
            return [self._sanitize_and_translate(v, _depth + 1) for v in criteria]
        if callable(criteria):
            raise APIError("callable values are not permitted in queries")
        return criteria

    # -- the read path -------------------------------------------------------------

    def query(
        self,
        criteria: Optional[Mapping[str, Any]] = None,
        properties: Optional[Sequence[str]] = None,
        collection: str = "materials",
        sort: Optional[Sequence[Tuple[str, int]]] = None,
        skip: int = 0,
        limit: int = 0,
        user: Optional[str] = None,
    ) -> List[dict]:
        """Sanitized, alias-translated, size-capped find."""
        real_name = self.resolve_collection(collection)
        coll = self.db.get_collection(real_name)
        translated = self._sanitize_and_translate(criteria or {})
        projection = None
        if properties:
            projection = {self.resolve_field(p): 1 for p in properties}
        effective_limit = min(limit or self.max_results, self.max_results)

        t0 = time.perf_counter()
        try:
            cursor = coll.find(translated, projection)
        except QuerySyntaxError as exc:
            raise APIError(f"bad query: {exc}") from exc
        if sort:
            cursor = cursor.sort(
                [(self.resolve_field(f), d) for f, d in sort]
            )
        if skip:
            cursor = cursor.skip(skip)
        docs = cursor.limit(effective_limit).to_list()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        self.query_log.record(
            real_name, elapsed_ms, len(docs), user=user,
            query_repr=repr(translated)[:200],
        )
        return docs

    def query_one(
        self,
        criteria: Optional[Mapping[str, Any]] = None,
        properties: Optional[Sequence[str]] = None,
        collection: str = "materials",
        user: Optional[str] = None,
    ) -> Optional[dict]:
        docs = self.query(criteria, properties, collection, limit=1, user=user)
        return docs[0] if docs else None

    def count(self, criteria: Optional[Mapping[str, Any]] = None,
              collection: str = "materials", user: Optional[str] = None) -> int:
        real_name = self.resolve_collection(collection)
        coll = self.db.get_collection(real_name)
        translated = self._sanitize_and_translate(criteria or {})
        t0 = time.perf_counter()
        n = coll.count_documents(translated)
        self.query_log.record(real_name, (time.perf_counter() - t0) * 1e3, 0,
                              user=user)
        return n

    def distinct(self, field: str, criteria: Optional[Mapping[str, Any]] = None,
                 collection: str = "materials", user: Optional[str] = None) -> List[Any]:
        real_name = self.resolve_collection(collection)
        coll = self.db.get_collection(real_name)
        translated = self._sanitize_and_translate(criteria or {})
        t0 = time.perf_counter()
        values = coll.distinct(self.resolve_field(field), translated)
        self.query_log.record(real_name, (time.perf_counter() - t0) * 1e3,
                              len(values), user=user)
        return values

    # -- the (restricted) write path --------------------------------------------------

    def update(
        self,
        criteria: Mapping[str, Any],
        update: Mapping[str, Any],
        collection: str = "materials",
    ) -> int:
        """Alias-translated update for internal builders (not web users)."""
        real_name = self.resolve_collection(collection)
        coll = self.db.get_collection(real_name)
        translated = self._sanitize_and_translate(criteria)
        translated_update: Dict[str, Any] = {}
        for op, clause in update.items():
            if not op.startswith("$"):
                raise APIError("QueryEngine.update requires operator updates")
            if not isinstance(clause, Mapping):
                raise APIError(f"{op} clause must be a mapping")
            translated_update[op] = {
                self.resolve_field(f): v for f, v in clause.items()
            }
        return coll.update_many(translated, translated_update).modified_count
