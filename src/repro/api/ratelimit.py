"""Per-user rate limiting (§IV-D1).

"We also implement checks to limit the number of queries from a given user
to prevent denial-of-service or data scraping attacks."

A sliding-window limiter: each user may issue at most ``max_requests``
within any trailing ``window_s`` seconds.  The clock is injectable so tests
and simulations control time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..errors import RateLimitExceeded

__all__ = ["RateLimiter"]


class RateLimiter:
    """Sliding-window request limiter keyed by user id."""

    def __init__(
        self,
        max_requests: int = 120,
        window_s: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_requests < 1 or window_s <= 0:
            raise ValueError("invalid rate limit configuration")
        self.max_requests = int(max_requests)
        self.window_s = float(window_s)
        self._clock = clock or time.monotonic
        self._windows: Dict[str, Deque[float]] = {}
        self._lock = threading.Lock()
        self.denials = 0

    def check(self, user: str) -> None:
        """Admit one request for ``user`` or raise RateLimitExceeded."""
        now = self._clock()
        with self._lock:
            window = self._windows.setdefault(user, deque())
            cutoff = now - self.window_s
            while window and window[0] <= cutoff:
                window.popleft()
            if len(window) >= self.max_requests:
                self.denials += 1
                retry_in = window[0] + self.window_s - now
                raise RateLimitExceeded(
                    f"user {user!r} exceeded {self.max_requests} requests per "
                    f"{self.window_s:g}s window; retry in {retry_in:.1f}s"
                )
            window.append(now)

    def remaining(self, user: str) -> int:
        now = self._clock()
        with self._lock:
            window = self._windows.get(user)
            if not window:
                return self.max_requests
            cutoff = now - self.window_s
            live = sum(1 for t in window if t > cutoff)
            return max(0, self.max_requests - live)

    def reset(self, user: Optional[str] = None) -> None:
        with self._lock:
            if user is None:
                self._windows.clear()
            else:
                self._windows.pop(user, None)
