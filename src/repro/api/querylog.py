"""Access-log warehouse — structured request records in a real collection.

The paper's operational premise is that a datastore's own usage data is
best served *by* the datastore: Materials Project runs its query logs and
usage analytics through the same MongoDB that serves science.  This module
is that loop closed.  Every served request — QueryEngine queries (the
Figure 5 measurement), Materials API HTTP hits, and wire-protocol
exchanges — lands as a structured record in a queryable collection
(``telemetry.access`` in a warehouse deployment, a detached in-memory
collection otherwise)::

    {"ts": ..., "seq": 17, "endpoint": "rest/v1/materials", "method":
     "GET", "user": "alice", "status": 200, "duration_ms": 1.8,
     "nreturned": 10, "request_bytes": 91, "response_bytes": 2048,
     "collection": "materials", "query": "...", "error": None}

The QCFractal-style :meth:`QueryLog.query_access_log` filter surface
answers "who hit what, when, how slowly" straight from the collection, and
the legacy Figure 5 views (:meth:`histogram`, :meth:`time_series`,
:meth:`summary`, :meth:`by_collection`) are reimplemented as warehouse
queries over the same records.  Compound ``(endpoint, ts)`` and ``ts``
indexes keep those reads on the planner's IXSCAN path.

The log also feeds the shared metrics registry (:mod:`repro.obs`), so
``GET /metrics`` exposes the same latency distribution as
``repro_api_query_millis`` quantiles without a second measurement path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..docstore.collection import Collection
from ..obs import get_registry

__all__ = ["QueryLog", "ACCESS_CAP", "access_top"]

#: Records kept before the oldest are evicted (capped-collection analog;
#: a TTL index on ``ts`` usually reaps much earlier in a warehouse).
ACCESS_CAP = 100_000

_Filter = Union[str, int, Sequence[Any], None]


def _filter_clause(value: _Filter) -> Any:
    """One filter argument → a query condition (scalar or ``$in``)."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return {"$in": list(value)}
    return value


def access_top(collection: Any, by: str = "duration",
               limit: int = 10) -> List[dict]:
    """Endpoints ranked by total time / hits / errors over any collection
    holding access records — a local ``telemetry.access`` or a
    :class:`~repro.docstore.server.RemoteCollection` over the wire (the
    CLI's remote path), since only ``aggregate`` is required."""
    rows = collection.aggregate([
        {"$group": {
            "_id": "$endpoint",
            "count": {"$sum": 1},
            "total_ms": {"$sum": "$duration_ms"},
            "mean_ms": {"$avg": "$duration_ms"},
            "max_ms": {"$max": "$duration_ms"},
            "nreturned": {"$sum": "$nreturned"},
            "response_bytes": {"$sum": "$response_bytes"},
        }},
    ])
    errors: Dict[str, int] = {}
    for rec in collection.aggregate([
        {"$match": {"status": {"$gte": 400}}},
        {"$group": {"_id": "$endpoint", "errors": {"$sum": 1}}},
    ]):
        errors[rec["_id"]] = rec["errors"]
    out = []
    for row in rows:
        out.append({
            "endpoint": row["_id"],
            "count": row["count"],
            "total_ms": row["total_ms"] or 0.0,
            "mean_ms": row["mean_ms"] or 0.0,
            "max_ms": row["max_ms"] or 0.0,
            "nreturned": row["nreturned"] or 0,
            "response_bytes": row["response_bytes"] or 0,
            "errors": errors.get(row["_id"], 0),
        })
    sort_key = {
        "duration": lambda r: r["total_ms"],
        "count": lambda r: r["count"],
        "errors": lambda r: r["errors"],
    }.get(by)
    if sort_key is None:
        raise ValueError(f"unknown top ordering {by!r}")
    out.sort(key=sort_key, reverse=True)
    return out[:limit] if limit else out


class QueryLog:
    """Thread-safe access log backed by a docstore collection.

    ``QueryLog()`` uses a detached in-memory collection (seed-era
    behaviour, exercised heavily by the Figure 5 tests); the telemetry
    warehouse passes ``collection=store["telemetry"]["access"]`` so
    records persist, survive restarts, and are queryable over the wire.
    """

    def __init__(self, collection: Optional[Collection] = None,
                 cap: int = ACCESS_CAP, ttl_s: Optional[float] = None):
        self.collection = (
            collection if collection is not None else Collection("access")
        )
        self.cap = int(cap)
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self._ensure_indexes()
        self._seq = self._resume_seq()

    def _ensure_indexes(self) -> None:
        # (endpoint, ts) serves the per-endpoint analytics; ts alone serves
        # time-range scans, sort push-down, and doubles as the TTL key when
        # the warehouse sets retention (``ttl_s``); seq gives stable FIFO
        # eviction.
        self.collection.create_index([("endpoint", 1), ("ts", 1)])
        self.collection.create_index("ts", expire_after_seconds=self.ttl_s)
        self.collection.create_index("seq")

    def _resume_seq(self) -> int:
        last = list(
            self.collection.find({}, {"seq": 1}).sort([("seq", -1)]).limit(1)
        )
        return int(last[0].get("seq", -1)) + 1 if last else 0

    # -- recording -----------------------------------------------------------

    def record_access(
        self,
        endpoint: str,
        method: str = "GET",
        user: Optional[str] = None,
        status: int = 200,
        duration_ms: float = 0.0,
        nreturned: int = 0,
        request_bytes: int = 0,
        response_bytes: int = 0,
        ts: Optional[float] = None,
        collection: Optional[str] = None,
        query_repr: Optional[str] = None,
        error: Optional[str] = None,
    ) -> dict:
        """Append one structured access record; returns the stored doc."""
        with self._lock:
            seq = self._seq
            self._seq += 1
        record = {
            "ts": time.time() if ts is None else float(ts),
            "seq": seq,
            "endpoint": endpoint,
            "method": method,
            "user": user,
            "status": int(status),
            "error": error,
            "duration_ms": float(duration_ms),
            "nreturned": int(nreturned),
            "request_bytes": int(request_bytes),
            "response_bytes": int(response_bytes),
            "collection": collection,
            "query": query_repr,
        }
        self.collection.insert_one(record)
        self._evict()
        get_registry().counter(
            "repro_api_access_total", "access records written"
        ).inc(1, method=method)
        return record

    def record(
        self,
        collection: str,
        millis: float,
        nreturned: int,
        user: Optional[str] = None,
        ts: Optional[float] = None,
        query_repr: Optional[str] = None,
    ) -> None:
        """Legacy QueryEngine entry point (Figure 5 measurement path)."""
        self.record_access(
            endpoint=f"query/{collection}",
            method="QUERY",
            user=user,
            duration_ms=millis,
            nreturned=nreturned,
            ts=ts,
            collection=collection,
            query_repr=query_repr,
        )
        registry = get_registry()
        registry.counter(
            "repro_api_queries_total", "queries served by the QueryEngine"
        ).inc(1, collection=collection)
        registry.histogram(
            "repro_api_query_millis", "QueryEngine latency"
        ).observe(float(millis), collection=collection)

    def _evict(self) -> None:
        while self.collection.count_documents() > self.cap:
            if self.collection.find_one_and_delete(
                {}, sort=[("seq", 1)]
            ) is None:
                break

    def clear(self) -> None:
        """Drop every record (test/benchmark isolation)."""
        self.collection.delete_many({})

    def __len__(self) -> int:
        return self.collection.count_documents()

    # -- the analytics query surface ----------------------------------------

    def query_access_log(
        self,
        endpoint: _Filter = None,
        method: _Filter = None,
        user: _Filter = None,
        status: _Filter = None,
        collection: _Filter = None,
        before: Optional[float] = None,
        after: Optional[float] = None,
        min_duration_ms: Optional[float] = None,
        errors_only: bool = False,
        limit: int = 0,
        skip: int = 0,
    ) -> List[dict]:
        """Filtered access records, most recent first (QCFractal style).

        Scalar filters match exactly; list filters become ``$in``.  Time
        bounds are epoch seconds; ``errors_only`` keeps records whose
        status is >= 400 or that carry an ``error`` type.
        """
        query: Dict[str, Any] = {}
        for fname, value in (
            ("endpoint", endpoint), ("method", method), ("user", user),
            ("status", status), ("collection", collection),
        ):
            if value is not None:
                query[fname] = _filter_clause(value)
        ts_bounds: Dict[str, float] = {}
        if after is not None:
            ts_bounds["$gte"] = float(after)
        if before is not None:
            ts_bounds["$lt"] = float(before)
        if ts_bounds:
            query["ts"] = ts_bounds
        if min_duration_ms is not None:
            query["duration_ms"] = {"$gte": float(min_duration_ms)}
        if errors_only:
            query["$or"] = [
                {"status": {"$gte": 400}},
                {"error": {"$ne": None}},
            ]
        cursor = self.collection.find(query, {"_id": 0}).sort(
            [("ts", -1), ("seq", -1)]
        )
        if skip:
            cursor = cursor.skip(int(skip))
        if limit:
            cursor = cursor.limit(int(limit))
        return list(cursor)

    def top(self, by: str = "duration", limit: int = 10) -> List[dict]:
        """Endpoints ranked by total time (``by="duration"``), hit count
        (``"count"``), or error count (``"errors"``) — the data behind
        ``repro telemetry top``."""
        return access_top(self.collection, by=by, limit=limit)

    # -- legacy Fig. 5 views (now warehouse queries) -------------------------

    @property
    def entries(self) -> List[dict]:
        """Records in arrival order, shaped like the seed-era log entries."""
        return [
            {
                "ts": doc["ts"],
                "collection": doc.get("collection") or doc.get("endpoint"),
                "millis": doc.get("duration_ms", 0.0),
                "nreturned": doc.get("nreturned", 0),
                "user": doc.get("user"),
                "query": doc.get("query"),
            }
            for doc in self.collection.find({}).sort([("seq", 1)])
        ]

    def _durations(self) -> List[float]:
        return [
            doc.get("duration_ms", 0.0)
            for doc in self.collection.find({}, {"duration_ms": 1})
        ]

    def histogram(
        self, bin_edges_ms: Optional[Sequence[float]] = None
    ) -> List[Tuple[str, int]]:
        """Latency histogram as (label, count) rows.

        Default bins are logarithmic, matching the paper's figure which
        spans sub-ms to multi-second outliers.
        """
        edges = list(
            bin_edges_ms
            if bin_edges_ms is not None
            else [0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000]
        )
        counts = [0] * (len(edges) + 1)
        for ms in self._durations():
            placed = False
            for i, edge in enumerate(edges):
                if ms < edge:
                    counts[i] += 1
                    placed = True
                    break
            if not placed:
                counts[-1] += 1
        rows = []
        lo = 0.0
        for i, edge in enumerate(edges):
            rows.append((f"[{lo:g}, {edge:g}) ms", counts[i]))
            lo = edge
        rows.append((f">= {edges[-1]:g} ms", counts[-1]))
        return rows

    def time_series(self) -> List[Tuple[float, float]]:
        """(timestamp, millis) pairs in time order — the inset scatter.

        Served by an index-ordered scan on ``ts`` (sort push-down)."""
        return [
            (doc["ts"], doc.get("duration_ms", 0.0))
            for doc in self.collection.find(
                {}, {"ts": 1, "duration_ms": 1}
            ).sort([("ts", 1)])
        ]

    def percentile(self, p: float) -> float:
        from ..obs import percentile as _percentile

        return _percentile(self._durations(), p)

    def summary(self) -> dict:
        n = self.collection.count_documents()
        if not n:
            return {"queries": 0, "records_returned": 0}
        grouped = self.collection.aggregate([
            {"$group": {
                "_id": None,
                "records_returned": {"$sum": "$nreturned"},
            }},
        ])
        users = {
            doc["user"]
            for doc in self.collection.find(
                {"user": {"$ne": None}}, {"user": 1}
            )
        }
        lat = self._durations()
        return {
            "queries": n,
            "records_returned": grouped[0]["records_returned"] if grouped else 0,
            "distinct_users": len(users),
            "median_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": max(lat),
            "mean_ms": sum(lat) / len(lat),
        }

    def by_collection(self) -> Dict[str, dict]:
        rows = self.collection.aggregate([
            {"$match": {"collection": {"$ne": None}}},
            {"$group": {
                "_id": "$collection",
                "queries": {"$sum": 1},
                "mean_ms": {"$avg": "$duration_ms"},
                "max_ms": {"$max": "$duration_ms"},
            }},
        ])
        return {
            row["_id"]: {
                "queries": row["queries"],
                "mean_ms": row["mean_ms"] or 0.0,
                "max_ms": row["max_ms"] or 0.0,
            }
            for row in rows
        }
