"""Per-query latency log — the measurement behind Figure 5.

Every query served through the QueryEngine appends an entry (timestamp,
collection, latency, rows returned, user).  :meth:`QueryLog.histogram`
reproduces the paper's latency histogram; :meth:`QueryLog.time_series`
reproduces the scatterplot inset; :meth:`QueryLog.summary` gives the
headline numbers ("3315 distinct queries returning a total of 12,951,099
records").

The log also feeds the shared metrics registry (:mod:`repro.obs`), so
``GET /metrics`` exposes the same latency distribution as
``repro_api_query_millis`` quantiles without a second measurement path.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_registry

__all__ = ["QueryLog"]


class QueryLog:
    """Thread-safe append-only log of served queries."""

    def __init__(self) -> None:
        self._entries: List[dict] = []
        self._lock = threading.Lock()

    def record(
        self,
        collection: str,
        millis: float,
        nreturned: int,
        user: Optional[str] = None,
        ts: Optional[float] = None,
        query_repr: Optional[str] = None,
    ) -> None:
        import time

        with self._lock:
            self._entries.append(
                {
                    "ts": time.time() if ts is None else ts,
                    "collection": collection,
                    "millis": float(millis),
                    "nreturned": int(nreturned),
                    "user": user,
                    "query": query_repr,
                }
            )
        registry = get_registry()
        registry.counter(
            "repro_api_queries_total", "queries served by the QueryEngine"
        ).inc(1, collection=collection)
        registry.histogram(
            "repro_api_query_millis", "QueryEngine latency"
        ).observe(float(millis), collection=collection)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def entries(self) -> List[dict]:
        with self._lock:
            return list(self._entries)

    # -- Fig. 5 views --------------------------------------------------------

    def histogram(
        self, bin_edges_ms: Optional[Sequence[float]] = None
    ) -> List[Tuple[str, int]]:
        """Latency histogram as (label, count) rows.

        Default bins are logarithmic, matching the paper's figure which
        spans sub-ms to multi-second outliers.
        """
        edges = list(
            bin_edges_ms
            if bin_edges_ms is not None
            else [0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000]
        )
        counts = [0] * (len(edges) + 1)
        for entry in self.entries:
            ms = entry["millis"]
            placed = False
            for i, edge in enumerate(edges):
                if ms < edge:
                    counts[i] += 1
                    placed = True
                    break
            if not placed:
                counts[-1] += 1
        rows = []
        lo = 0.0
        for i, edge in enumerate(edges):
            rows.append((f"[{lo:g}, {edge:g}) ms", counts[i]))
            lo = edge
        rows.append((f">= {edges[-1]:g} ms", counts[-1]))
        return rows

    def time_series(self) -> List[Tuple[float, float]]:
        """(timestamp, millis) pairs in time order — the inset scatter."""
        return sorted((e["ts"], e["millis"]) for e in self.entries)

    def percentile(self, p: float) -> float:
        from ..obs import percentile as _percentile

        return _percentile([e["millis"] for e in self.entries], p)

    def summary(self) -> dict:
        entries = self.entries
        if not entries:
            return {"queries": 0, "records_returned": 0}
        lat = [e["millis"] for e in entries]
        return {
            "queries": len(entries),
            "records_returned": sum(e["nreturned"] for e in entries),
            "distinct_users": len({e["user"] for e in entries if e["user"]}),
            "median_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": max(lat),
            "mean_ms": sum(lat) / len(lat),
        }

    def by_collection(self) -> Dict[str, dict]:
        out: Dict[str, List[float]] = {}
        for entry in self.entries:
            out.setdefault(entry["collection"], []).append(entry["millis"])
        return {
            coll: {
                "queries": len(ms),
                "mean_ms": sum(ms) / len(ms),
                "max_ms": max(ms),
            }
            for coll, ms in out.items()
        }
