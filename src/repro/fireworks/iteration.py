"""Iteration strategies for convergence studies (§III-C3 **Iteration**).

"Some calculations require iterative runs of the same job, with incrementing
input parameters, until a condition is met.  In general, the number of
iterations required is not known in advance.  More sophisticated search
algorithms than simple linear increments (e.g., genetic algorithms) may be
required."

Three strategies over a common protocol — each proposes parameter dicts,
receives scores, and decides when the loop is done:

* :class:`LinearScan` — the paper's "simple linear increments" (e.g. raise
  ENCUT by 100 eV until the energy change drops below a threshold);
* :class:`BisectionSearch` — find a parameter threshold by bisection;
* :class:`GeneticSearch` — the paper's "genetic algorithms" case, a small
  deterministic GA over a bounded parameter box.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import WorkflowError

__all__ = ["IterationResult", "LinearScan", "BisectionSearch", "GeneticSearch",
           "run_iteration"]

Evaluator = Callable[[Dict[str, Any]], float]


class IterationResult:
    """Outcome of an iterative study: history + the accepted parameters."""

    def __init__(self, converged: bool, best_params: Dict[str, Any],
                 best_value: float, history: List[Tuple[Dict[str, Any], float]]):
        self.converged = converged
        self.best_params = best_params
        self.best_value = best_value
        self.history = history

    @property
    def n_evaluations(self) -> int:
        return len(self.history)


class LinearScan:
    """Increment one parameter until successive values agree within tol."""

    def __init__(self, param: str, start: float, step: float,
                 tolerance: float, max_iterations: int = 20):
        if step <= 0 or tolerance <= 0 or max_iterations < 2:
            raise WorkflowError("invalid linear scan configuration")
        self.param = param
        self.start = float(start)
        self.step = float(step)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)

    def run(self, evaluate: Evaluator,
            base_params: Optional[Dict[str, Any]] = None) -> IterationResult:
        base = dict(base_params or {})
        history: List[Tuple[Dict[str, Any], float]] = []
        previous: Optional[float] = None
        for i in range(self.max_iterations):
            params = dict(base, **{self.param: self.start + i * self.step})
            value = evaluate(params)
            history.append((params, value))
            if previous is not None and abs(value - previous) < self.tolerance:
                return IterationResult(True, params, value, history)
            previous = value
        best_params, best_value = history[-1]
        return IterationResult(False, best_params, best_value, history)


class BisectionSearch:
    """Find the smallest parameter value whose result crosses a threshold."""

    def __init__(self, param: str, lo: float, hi: float,
                 predicate: Callable[[float], bool],
                 resolution: float, max_iterations: int = 40):
        if hi <= lo or resolution <= 0:
            raise WorkflowError("invalid bisection configuration")
        self.param = param
        self.lo = float(lo)
        self.hi = float(hi)
        self.predicate = predicate
        self.resolution = float(resolution)
        self.max_iterations = int(max_iterations)

    def run(self, evaluate: Evaluator,
            base_params: Optional[Dict[str, Any]] = None) -> IterationResult:
        base = dict(base_params or {})
        history: List[Tuple[Dict[str, Any], float]] = []
        lo, hi = self.lo, self.hi

        def probe(x: float) -> Tuple[float, bool]:
            params = dict(base, **{self.param: x})
            value = evaluate(params)
            history.append((params, value))
            return value, self.predicate(value)

        _, ok_hi = probe(hi)
        if not ok_hi:
            return IterationResult(False, history[-1][0], history[-1][1], history)
        value_lo, ok_lo = probe(lo)
        if ok_lo:
            return IterationResult(True, history[-1][0], value_lo, history)
        for _ in range(self.max_iterations):
            if hi - lo <= self.resolution:
                break
            mid = 0.5 * (lo + hi)
            _, ok = probe(mid)
            if ok:
                hi = mid
            else:
                lo = mid
        params = dict(base, **{self.param: hi})
        value = evaluate(params)
        history.append((params, value))
        return IterationResult(True, params, value, history)


class GeneticSearch:
    """Deterministic small-population GA minimizing the evaluator.

    Parameters are bounded floats: ``bounds = {"AMIX": (0.05, 0.9), ...}``.
    Tournament selection, blend crossover, Gaussian mutation; fixed seed for
    reproducibility.
    """

    def __init__(self, bounds: Dict[str, Tuple[float, float]],
                 population: int = 12, generations: int = 10,
                 mutation_sigma: float = 0.15, seed: int = 42,
                 target: Optional[float] = None):
        if not bounds:
            raise WorkflowError("GA needs at least one bounded parameter")
        for name, (lo, hi) in bounds.items():
            if hi <= lo:
                raise WorkflowError(f"empty bounds for {name!r}")
        if population < 4 or generations < 1:
            raise WorkflowError("population >= 4 and generations >= 1 required")
        self.bounds = dict(bounds)
        self.population = int(population)
        self.generations = int(generations)
        self.mutation_sigma = float(mutation_sigma)
        self.seed = int(seed)
        self.target = target

    def _clip(self, name: str, x: float) -> float:
        lo, hi = self.bounds[name]
        return min(hi, max(lo, x))

    def run(self, evaluate: Evaluator,
            base_params: Optional[Dict[str, Any]] = None) -> IterationResult:
        rng = random.Random(self.seed)
        base = dict(base_params or {})
        names = sorted(self.bounds)
        history: List[Tuple[Dict[str, Any], float]] = []

        def make(genes: Dict[str, float]) -> Tuple[Dict[str, Any], float]:
            params = dict(base, **genes)
            value = evaluate(params)
            history.append((params, value))
            return params, value

        pop: List[Tuple[Dict[str, float], float]] = []
        for _ in range(self.population):
            genes = {
                n: rng.uniform(*self.bounds[n]) for n in names
            }
            _, value = make(genes)
            pop.append((genes, value))

        for _gen in range(self.generations):
            pop.sort(key=lambda gv: gv[1])
            if self.target is not None and pop[0][1] <= self.target:
                break
            survivors = pop[: max(2, self.population // 2)]
            children: List[Tuple[Dict[str, float], float]] = []
            while len(survivors) + len(children) < self.population:
                pa = min(rng.sample(survivors, 2), key=lambda gv: gv[1])[0]
                pb = min(rng.sample(survivors, 2), key=lambda gv: gv[1])[0]
                alpha = rng.random()
                genes = {}
                for n in names:
                    blended = alpha * pa[n] + (1 - alpha) * pb[n]
                    span = self.bounds[n][1] - self.bounds[n][0]
                    mutated = blended + rng.gauss(0, self.mutation_sigma * span)
                    genes[n] = self._clip(n, mutated)
                _, value = make(genes)
                children.append((genes, value))
            pop = survivors + children

        pop.sort(key=lambda gv: gv[1])
        best_genes, best_value = pop[0]
        converged = self.target is None or best_value <= self.target
        return IterationResult(
            converged, dict(base, **best_genes), best_value, history
        )


def run_iteration(strategy, evaluate: Evaluator,
                  base_params: Optional[Dict[str, Any]] = None) -> IterationResult:
    """Uniform entry point over the three strategies."""
    return strategy.run(evaluate, base_params)
