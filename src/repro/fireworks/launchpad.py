"""The LaunchPad: workflow state in the ``engines`` and ``tasks`` collections.

§III-B2: "We store all the execution state in two database collections:
engines and tasks.  The engines collection contains jobs that are waiting to
be run, running, and completed ... Jobs can be selected using MongoDB
queries on the inputs, which provides mechanism for matching types of jobs
to types of resources that resembles Condor classads."

The LaunchPad owns every state transition:

* :meth:`add_workflow` inserts Firework docs, applying Binder duplicate
  detection ("replace the execution of duplicate jobs with a pointer to the
  previous result");
* :meth:`checkout_firework` atomically claims a READY job matching a
  classad-style resource query (the document store's
  ``find_one_and_update`` is the queue-pop);
* :meth:`apply_actions` consumes Analyzer actions — complete / rerun /
  detour / abort — updating both collections and releasing children whose
  Fuses become satisfied.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..docstore.database import Database
from ..errors import WorkflowError
from ..obs import current_span
from .model import Workflow, component_from_spec

__all__ = ["LaunchPad"]

#: Maximum automatic resubmissions of one Firework before giving up.
DEFAULT_MAX_LAUNCHES = 5


class LaunchPad:
    """State manager bound to a datastore database."""

    def __init__(self, database: Database, max_launches: int = DEFAULT_MAX_LAUNCHES):
        self.db = database
        self.engines = database.get_collection("engines")
        self.tasks = database.get_collection("tasks")
        self.max_launches = max_launches
        # The queries the launcher runs constantly: index them.
        self.engines.create_index("state")
        self.engines.create_index("fw_id")
        self.engines.create_index("binder_key")
        self.tasks.create_index("fw_id")
        self.tasks.create_index("binder_key")

    # -- workflow intake ------------------------------------------------------

    def add_workflow(self, workflow: Workflow) -> Dict[str, Any]:
        """Insert a workflow; returns intake stats including dedup hits."""
        added = 0
        duplicates = 0
        for fw in workflow.fireworks:
            doc = fw.to_doc(workflow.workflow_id)
            if doc["binder_key"] is not None:
                previous = self._find_previous_result(doc["binder_key"])
                if previous is not None:
                    # Idempotent submission: point at the existing result.
                    doc["state"] = "COMPLETED"
                    doc["duplicate_of"] = previous["_id"]
                    doc["task_id"] = previous.get("task_id")
                    duplicates += 1
                    self.engines.insert_one(doc)
                    continue
            added += 1
            self.engines.insert_one(doc)
        # Newly added roots may immediately release children of completed
        # duplicates.
        self._release_ready(workflow.workflow_id)
        return {
            "workflow_id": workflow.workflow_id,
            "added": added,
            "duplicates": duplicates,
        }

    def _find_previous_result(self, binder_key: str) -> Optional[dict]:
        """Pointer info for an existing run with this key, or None.

        Returns ``{"_id": <engine or task id>, "task_id": <task id or
        None>}`` — the task id is None when the duplicate is still in
        flight (queued/running), in which case the pointer resolves once
        the original completes.
        """
        task = self.tasks.find_one(
            {"binder_key": binder_key, "state": "COMPLETED"}
        )
        if task is not None:
            return {"_id": task["_id"], "task_id": task["_id"]}
        engine = self.engines.find_one(
            {"binder_key": binder_key, "state": {"$in": ["COMPLETED", "RUNNING",
                                                          "READY", "WAITING"]}}
        )
        if engine is not None:
            return {"_id": engine["_id"], "task_id": engine.get("task_id")}
        return None

    # -- claiming --------------------------------------------------------------

    def checkout_firework(
        self,
        resource_query: Optional[Mapping[str, Any]] = None,
        worker: str = "worker",
    ) -> Optional[dict]:
        """Atomically claim one READY Firework matching ``resource_query``.

        The query operates on the job's *inputs* directly (classad-style),
        e.g. ``{"spec.elements": {"$all": ["Li", "O"]},
        "spec.nelectrons": {"$lte": 200}}``.
        """
        query = {"state": "READY"}
        if resource_query:
            query.update(resource_query)
        return self.engines.find_one_and_update(
            query,
            {"$set": {"state": "RUNNING", "worker": worker,
                      "checkout_time": time.time()},
             "$inc": {"launches": 1}},
            sort=[("spec.priority", -1), ("fw_id", 1)],
            return_document="after",
        )

    # -- fuse evaluation ----------------------------------------------------------

    def _parent_tasks(self, fw_doc: Mapping[str, Any]) -> List[dict]:
        parents = fw_doc.get("parents", [])
        if not parents:
            return []
        out = []
        for pid in parents:
            parent_engine = self.engines.find_one({"fw_id": pid})
            if parent_engine is None:
                continue
            task = None
            if parent_engine.get("task_id") is not None:
                task = self.tasks.find_one({"_id": parent_engine["task_id"]})
            out.append(task or {"state": parent_engine.get("state")})
        return out

    def _release_ready(self, workflow_id: Optional[str] = None) -> int:
        """Flip WAITING Fireworks whose Fuses are satisfied to READY."""
        query: Dict[str, Any] = {"state": "WAITING"}
        if workflow_id is not None:
            query["workflow_id"] = workflow_id
        released = 0
        for fw_doc in self.engines.find(query):
            fuse = component_from_spec(fw_doc.get("fuse"))
            parent_tasks = self._parent_tasks(fw_doc)
            if fuse.is_ready(fw_doc, parent_tasks):
                overrides = fuse.compute_overrides(parent_tasks)
                update: Dict[str, Any] = {"$set": {"state": "READY"}}
                if overrides:
                    # Record and apply the Fuse's modification "within the
                    # FireWorks database for later analysis" (§III-C2).
                    from .model import Stage

                    new_spec = Stage(fw_doc["spec"]).apply_overrides(overrides)
                    update["$set"]["spec"] = dict(new_spec)
                    update["$set"]["fuse_overrides_applied"] = overrides
                r = self.engines.update_one(
                    {"fw_id": fw_doc["fw_id"], "state": "WAITING"}, update
                )
                released += r.modified_count
        return released

    def approve(self, fw_id: int) -> None:
        """User approval for approval-gated Fuses."""
        self.engines.update_one({"fw_id": fw_id}, {"$set": {"approved": True}})
        self._release_ready()

    # -- analyzer actions ------------------------------------------------------------

    def apply_actions(self, fw_doc: Mapping[str, Any],
                      actions: Sequence[Mapping[str, Any]]) -> List[str]:
        """Consume Analyzer actions for a just-run Firework."""
        applied = []
        for action in actions:
            kind = action.get("action")
            if kind == "complete":
                self._complete(fw_doc, action["task"])
            elif kind == "rerun":
                self._resubmit(fw_doc, action.get("overrides") or {},
                               bump="launches_requeued")
            elif kind == "detour":
                self._resubmit(fw_doc, action.get("overrides") or {},
                               bump="detours")
            elif kind == "abort":
                self._abort(fw_doc, action.get("reason", ""))
            else:
                raise WorkflowError(f"unknown analyzer action {kind!r}")
            applied.append(kind)
        return applied

    def _complete(self, fw_doc: Mapping[str, Any], task: Mapping[str, Any]) -> None:
        task_doc = dict(task)
        task_doc.update(
            {
                "fw_id": fw_doc["fw_id"],
                "workflow_id": fw_doc.get("workflow_id"),
                "binder_key": fw_doc.get("binder_key"),
                "state": "COMPLETED",
                "spec": fw_doc.get("spec"),
                "completed_at": time.time(),
            }
        )
        # Provenance ledger stamp: everything needed to trace this result
        # back — which firework and workflow produced it, which parent
        # tasks fed it, under which code version and trace.
        parent = current_span()
        source_task_ids = [
            t["_id"] for t in self._parent_tasks(fw_doc) if "_id" in t
        ]
        task_doc["provenance"] = {
            "source": "launcher",
            "fw_id": fw_doc["fw_id"],
            "workflow_id": fw_doc.get("workflow_id"),
            "source_task_ids": source_task_ids,
            "code_version": task_doc.get("code_version"),
            "trace_id": parent.trace_id if parent is not None else None,
            "wall_time_s": task_doc.get("walltime_used_s"),
        }
        task_id = self.tasks.insert_one(task_doc).inserted_id
        self.engines.update_one(
            {"fw_id": fw_doc["fw_id"]},
            {"$set": {"state": "COMPLETED", "task_id": task_id}},
        )
        self._release_ready(fw_doc.get("workflow_id"))

    def _resubmit(self, fw_doc: Mapping[str, Any], overrides: Mapping[str, Any],
                  bump: str) -> None:
        if fw_doc.get("launches", 0) >= self.max_launches:
            self._abort(
                fw_doc,
                f"max launches ({self.max_launches}) exhausted",
            )
            return
        from .model import Stage

        new_spec = Stage(fw_doc["spec"]).apply_overrides(overrides)
        self.engines.update_one(
            {"fw_id": fw_doc["fw_id"]},
            {
                "$set": {"state": "READY", "spec": dict(new_spec)},
                "$inc": {bump: 1},
                "$push": {"resubmit_history": {
                    "overrides": dict(overrides), "at": time.time(),
                }},
            },
        )

    def _abort(self, fw_doc: Mapping[str, Any], reason: str) -> None:
        """Fizzle the Firework and mark the workflow for manual intervention."""
        self.engines.update_one(
            {"fw_id": fw_doc["fw_id"]},
            {"$set": {"state": "FIZZLED", "fizzle_reason": reason}},
        )
        wf_id = fw_doc.get("workflow_id")
        if wf_id is not None:
            self.engines.update_many(
                {"workflow_id": wf_id, "state": {"$in": ["WAITING", "READY"]}},
                {"$set": {"state": "DEFUSED"}},
            )
            self.db.get_collection("workflows_flagged").update_one(
                {"workflow_id": wf_id},
                {"$set": {"needs_manual_intervention": True,
                          "reason": reason, "at": time.time()}},
                upsert=True,
            )

    # -- introspection -----------------------------------------------------------------

    def fw_state(self, fw_id: int) -> Optional[str]:
        doc = self.engines.find_one({"fw_id": fw_id}, {"state": 1})
        return doc["state"] if doc else None

    def workflow_states(self, workflow_id: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for doc in self.engines.find({"workflow_id": workflow_id}, {"state": 1}):
            counts[doc["state"]] = counts.get(doc["state"], 0) + 1
        return counts

    def workflow_complete(self, workflow_id: str) -> bool:
        states = self.workflow_states(workflow_id)
        return set(states) == {"COMPLETED"} if states else False

    def flagged_workflows(self) -> List[dict]:
        return self.db.get_collection("workflows_flagged").find(
            {"needs_manual_intervention": True}
        ).to_list()

    def stats(self) -> dict:
        pipeline = [{"$group": {"_id": "$state", "n": {"$sum": 1}}}]
        return {row["_id"]: row["n"] for row in self.engines.aggregate(pipeline)}
