"""FireWorks object model: Firework, Stage, Fuse, Analyzer, Binder, Workflow.

§III-C2 verbatim: "A *Firework* represents one step in a workflow, and can
consist of several sub-components ... Each job ... is specified as a
dictionary of runtime parameters (*Stage*) that are later translated into
input files on a compute node by a component called the *Assembler* ...
A *Fuse* object is embedded within each Firework and is capable of
overriding input parameters prior to execution, based on the output state of
any parent jobs.  The parameters to override are specified as a Python dict
that is similar to Mongo atomic update syntax."

All components serialize to JSON documents (they live in the ``engines``
collection), so dynamic Python behaviour is reconstructed through a type
registry: a component document is ``{"_type": "<registered name>",
"params": {...}}``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Sequence, Type

from ..errors import WorkflowError
from ..docstore.updates import apply_update

__all__ = [
    "Stage",
    "Fuse",
    "Analyzer",
    "Binder",
    "Firework",
    "Workflow",
    "register_component",
    "component_from_spec",
    "FW_STATES",
]

#: Firework lifecycle states.
FW_STATES = ("WAITING", "READY", "RUNNING", "COMPLETED", "FIZZLED", "DEFUSED")

_COMPONENT_REGISTRY: Dict[str, Type] = {}


def register_component(cls: Type) -> Type:
    """Class decorator adding a component type to the serialization registry."""
    _COMPONENT_REGISTRY[cls.__name__] = cls
    return cls


def component_from_spec(spec: Optional[Mapping[str, Any]]):
    """Rebuild a registered component from its ``{"_type", "params"}`` doc."""
    if spec is None:
        return None
    name = spec.get("_type")
    cls = _COMPONENT_REGISTRY.get(name)
    if cls is None:
        raise WorkflowError(f"unknown component type {name!r}")
    return cls(**spec.get("params", {}))


class _Component:
    """Base: components serialize as registry name + constructor params."""

    def params(self) -> Dict[str, Any]:
        return {}

    def to_spec(self) -> Dict[str, Any]:
        return {"_type": type(self).__name__, "params": self.params()}


class Stage(dict):
    """The job specification blueprint: a plain dict of runtime parameters.

    Conventional keys for a FakeVASP stage: ``structure`` (crystal dict),
    ``incar`` (SCF parameters), ``resources`` (walltime/memory), ``code``
    and ``functional``.  Being a dict, it stores and queries directly as a
    JSON document in the engines collection — the property the paper calls
    out.
    """

    def apply_overrides(self, overrides: Mapping[str, Any]) -> "Stage":
        """Apply Mongo-atomic-syntax overrides, returning a new Stage."""
        from ..docstore.documents import deep_copy_doc

        new = Stage(deep_copy_doc(dict(self)))
        if overrides:
            apply_update(new, overrides)
        return new


@register_component
class Fuse(_Component):
    """Release condition + parameter overrides for a Firework.

    The base Fuse releases when all parents are COMPLETED and applies a
    static override document.  Subclasses add output-dependent conditions
    ("the parent jobs have some specific output value") and approval gates.
    """

    def __init__(self, overrides: Optional[Dict[str, Any]] = None,
                 requires_approval: bool = False):
        self.overrides = dict(overrides or {})
        self.requires_approval = bool(requires_approval)

    def params(self) -> Dict[str, Any]:
        return {
            "overrides": self.overrides,
            "requires_approval": self.requires_approval,
        }

    def is_ready(self, fw_doc: Mapping[str, Any],
                 parent_tasks: Sequence[Mapping[str, Any]]) -> bool:
        """May this Firework be released, given its parents' task docs?"""
        if self.requires_approval and not fw_doc.get("approved", False):
            return False
        n_parents = len(fw_doc.get("parents", []))
        done = [t for t in parent_tasks if t.get("state") == "COMPLETED"]
        return len(done) >= n_parents

    def compute_overrides(
        self, parent_tasks: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Override document (Mongo atomic syntax) to apply to the Stage."""
        return dict(self.overrides)


@register_component
class OutputConditionFuse(Fuse):
    """Releases only when a parent output field satisfies a query.

    ``condition`` is a Mongo query evaluated against every parent task doc;
    all parents must match.  Example: release the bandstructure step only if
    the relaxation converged below some energy.
    """

    def __init__(self, condition: Optional[Dict[str, Any]] = None,
                 overrides: Optional[Dict[str, Any]] = None,
                 requires_approval: bool = False):
        super().__init__(overrides, requires_approval)
        self.condition = dict(condition or {})

    def params(self) -> Dict[str, Any]:
        base = super().params()
        base["condition"] = self.condition
        return base

    def is_ready(self, fw_doc, parent_tasks) -> bool:
        if not super().is_ready(fw_doc, parent_tasks):
            return False
        if not self.condition:
            return True
        from ..docstore.matching import compile_query

        matcher = compile_query(self.condition)
        return all(matcher.matches(t) for t in parent_tasks)


@register_component
class Analyzer(_Component):
    """Post-run logic: inspect the outcome, emit follow-up actions.

    ``analyze`` returns a list of action documents consumed by the
    LaunchPad:

    * ``{"action": "complete", "task": {...}}`` — store the (reduced) task
    * ``{"action": "rerun", "overrides": {...}}`` — resubmit with more
      resources (the paper's **re-runs**)
    * ``{"action": "detour", "overrides": {...}}`` — resubmit with changed
      input parameters (the paper's **detours**)
    * ``{"action": "abort", "reason": "..."}`` — fizzle the workflow and
      mark it for manual intervention
    """

    def analyze(self, fw_doc: Mapping[str, Any],
                outcome: Mapping[str, Any]) -> List[Dict[str, Any]]:
        if outcome.get("status") == "COMPLETED":
            return [{"action": "complete", "task": dict(outcome)}]
        return [{"action": "abort",
                 "reason": outcome.get("error_message", "unknown failure")}]


@register_component
class Binder(_Component):
    """Uniqueness definition for duplicate detection (§III-C3).

    "In the case of VASP runs, a Binder may contain a reference to a
    crystal structure ID and the type of functional."  The key is computed
    from selected Stage fields; two Fireworks with equal keys are duplicates
    and the second becomes a pointer to the first's result.
    """

    def __init__(self, fields: Optional[List[str]] = None):
        self.fields = list(fields or ["structure_hash", "functional"])

    def params(self) -> Dict[str, Any]:
        return {"fields": self.fields}

    def key(self, spec: Mapping[str, Any]) -> str:
        from ..docstore.documents import get_path, MISSING

        parts = []
        for field in self.fields:
            value = get_path(spec, field)
            parts.append(f"{field}={'<missing>' if value is MISSING else value}")
        return "|".join(parts)


_FW_IDS = itertools.count(1)


class Firework:
    """One step of a workflow: spec + fuse + analyzer + binder + parents."""

    def __init__(
        self,
        spec: Mapping[str, Any],
        name: Optional[str] = None,
        fuse: Optional[Fuse] = None,
        analyzer: Optional[Analyzer] = None,
        binder: Optional[Binder] = None,
        parents: Optional[Sequence["Firework"]] = None,
    ):
        self.fw_id = next(_FW_IDS)
        self.name = name or f"fw-{self.fw_id}"
        self.spec = Stage(spec)
        self.fuse = fuse or Fuse()
        self.analyzer = analyzer or Analyzer()
        self.binder = binder
        self.parents: List[Firework] = list(parents or [])

    def to_doc(self, workflow_id: Optional[str] = None) -> Dict[str, Any]:
        """The engines-collection document for this Firework."""
        gated = self.parents or getattr(self.fuse, "requires_approval", False)
        state = "WAITING" if gated else "READY"
        return {
            "fw_id": self.fw_id,
            "name": self.name,
            "workflow_id": workflow_id,
            "state": state,
            "spec": dict(self.spec),
            "fuse": self.fuse.to_spec(),
            "analyzer": self.analyzer.to_spec(),
            "binder": self.binder.to_spec() if self.binder else None,
            "binder_key": self.binder.key(self.spec) if self.binder else None,
            "parents": [p.fw_id for p in self.parents],
            "launches": 0,
            "detours": 0,
            "approved": False,
        }

    def __repr__(self) -> str:
        return f"Firework({self.name}, id={self.fw_id})"


class Workflow:
    """A DAG of Fireworks (edges implied by each Firework's parents)."""

    _WF_IDS = itertools.count(1)

    def __init__(self, fireworks: Sequence[Firework], name: Optional[str] = None):
        if not fireworks:
            raise WorkflowError("workflow needs at least one firework")
        self.workflow_id = f"wf-{next(self._WF_IDS)}"
        self.name = name or self.workflow_id
        self.fireworks = list(fireworks)
        ids = {fw.fw_id for fw in self.fireworks}
        for fw in self.fireworks:
            for parent in fw.parents:
                if parent.fw_id not in ids:
                    raise WorkflowError(
                        f"{fw.name} has parent outside the workflow"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Kahn's algorithm over the parent edges.
        indegree = {fw.fw_id: len(fw.parents) for fw in self.fireworks}
        children: Dict[int, List[int]] = {fw.fw_id: [] for fw in self.fireworks}
        for fw in self.fireworks:
            for parent in fw.parents:
                children[parent.fw_id].append(fw.fw_id)
        frontier = [fid for fid, deg in indegree.items() if deg == 0]
        seen = 0
        while frontier:
            fid = frontier.pop()
            seen += 1
            for child in children[fid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if seen != len(self.fireworks):
            raise WorkflowError("workflow graph has a cycle")

    def roots(self) -> List[Firework]:
        return [fw for fw in self.fireworks if not fw.parents]

    def leaves(self) -> List[Firework]:
        parent_ids = {p.fw_id for fw in self.fireworks for p in fw.parents}
        return [fw for fw in self.fireworks if fw.fw_id not in parent_ids]

    def __len__(self) -> int:
        return len(self.fireworks)
