"""Analyzers: the post-run logic for re-runs, detours, and aborts.

§III-C3: "to perform **re-runs** with jobs that have failed due to
insufficient walltime, the Analyzer can create a new Firework that is a copy
of the failed job but with a longer walltime.  To handle **detours**, the
Analyzer can terminate a workflow, or create an entirely new workflow based
on the result of the job."

:class:`VaspAnalyzer` maps the FakeVASP failure taxonomy onto those
strategies:

* ``WALLTIME`` / ``OOM`` → **re-run** with resources scaled up
  (``walltime ×2`` / ``memory ×2``), bounded by the LaunchPad launch limit;
* ``SCF`` → **detour**: first soften the mixing (``AMIX × 0.5``), then
  switch ``ALGO`` Fast → Normal → All; after the escalation ladder is
  exhausted, **abort** and flag the workflow for manual intervention;
* success → **complete** with the reduced task document (the analyzer also
  performs the §III-B parse-and-reduce of the raw run directory when one
  exists).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from .model import Analyzer, register_component

__all__ = ["VaspAnalyzer"]

_ALGO_LADDER = ["Fast", "Normal", "All"]


@register_component
class VaspAnalyzer(Analyzer):
    """Failure-aware analyzer for FakeVASP runs."""

    def __init__(self, walltime_factor: float = 2.0, memory_factor: float = 2.0,
                 amix_factor: float = 0.5, max_detours: int = 4):
        self.walltime_factor = float(walltime_factor)
        self.memory_factor = float(memory_factor)
        self.amix_factor = float(amix_factor)
        self.max_detours = int(max_detours)

    def params(self) -> Dict[str, Any]:
        return {
            "walltime_factor": self.walltime_factor,
            "memory_factor": self.memory_factor,
            "amix_factor": self.amix_factor,
            "max_detours": self.max_detours,
        }

    def analyze(self, fw_doc: Mapping[str, Any],
                outcome: Mapping[str, Any]) -> List[Dict[str, Any]]:
        status = outcome.get("status")
        if status == "COMPLETED":
            return [{"action": "complete", "task": dict(outcome)}]

        kind = outcome.get("error_kind")
        spec = fw_doc.get("spec", {})

        if kind == "WALLTIME":
            current = spec.get("resources", {}).get("walltime_s", 6 * 3600.0)
            return [{
                "action": "rerun",
                "overrides": {"$set": {
                    "resources.walltime_s": current * self.walltime_factor,
                }},
            }]

        if kind == "OOM":
            current = spec.get("resources", {}).get("memory_mb", 4096.0)
            return [{
                "action": "rerun",
                "overrides": {"$set": {
                    "resources.memory_mb": current * self.memory_factor,
                }},
            }]

        if kind == "SCF":
            detours = fw_doc.get("detours", 0)
            if detours >= self.max_detours:
                return [{
                    "action": "abort",
                    "reason": f"SCF still failing after {detours} detours",
                }]
            incar = spec.get("incar", {})
            amix = incar.get("AMIX", 0.4)
            algo = incar.get("ALGO", "Fast")
            nelm = incar.get("NELM", 60)
            # Gentler mixing converges more slowly, so every detour also
            # raises the iteration budget.
            new_nelm = min(1000, nelm * 2)
            if amix > 0.2:
                overrides = {"$set": {
                    "incar.AMIX": max(0.1, amix * self.amix_factor),
                    "incar.NELM": new_nelm,
                }}
            else:
                idx = _ALGO_LADDER.index(algo) if algo in _ALGO_LADDER else 0
                if idx + 1 < len(_ALGO_LADDER):
                    overrides = {"$set": {"incar.ALGO": _ALGO_LADDER[idx + 1],
                                          "incar.AMIX": 0.3,
                                          "incar.NELM": new_nelm}}
                else:
                    return [{
                        "action": "abort",
                        "reason": "SCF failing on the gentlest algorithm",
                    }]
            return [{"action": "detour", "overrides": overrides}]

        return [{
            "action": "abort",
            "reason": outcome.get("error_message", f"unknown failure {kind!r}"),
        }]
