"""Duplicate detection helpers: VASP-flavoured Binders and spec builders.

§III-C3: "Duplicates may arise from two users simply submitting the same
thing, or from a job that was specified dynamically during the running of a
workflow ... By defining appropriate Binders, the FireWorks code allows
workflows to be idempotent and be submitted without regard to prior history
of the project."
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..matgen.structure import Structure
from .model import Binder, Firework, register_component
from .analyzers import VaspAnalyzer

__all__ = ["VaspBinder", "vasp_stage", "vasp_firework"]


@register_component
class VaspBinder(Binder):
    """Structure hash + functional — the paper's example Binder exactly."""

    def __init__(self, fields=None):
        super().__init__(fields or ["structure_hash", "functional"])


def vasp_stage(
    structure: Structure,
    mps_id: Optional[str] = None,
    functional: str = "GGA",
    incar: Optional[Mapping[str, Any]] = None,
    walltime_s: float = 6 * 3600.0,
    memory_mb: float = 4096.0,
    priority: int = 0,
) -> Dict[str, Any]:
    """A canonical FakeVASP Stage dict with queryable derived fields.

    The derived ``elements``/``nelectrons`` fields are what make classad-
    style resource matching possible (the §III-B2 example query).
    """
    return {
        "code": "fake_vasp",
        "functional": functional,
        "structure": structure.as_dict(),
        "structure_hash": structure.structure_hash(),
        "mps_id": mps_id,
        "formula": structure.reduced_formula,
        "elements": structure.elements,
        "nelectrons": structure.nelectrons,
        "nsites": structure.num_sites,
        "incar": dict(incar or {"ENCUT": 520, "AMIX": 0.4, "ALGO": "Fast",
                                "NELM": 60, "EDIFF": 1e-5}),
        "resources": {"walltime_s": walltime_s, "memory_mb": memory_mb,
                      "cores": 24},
        "priority": priority,
    }


def vasp_firework(
    structure: Structure,
    mps_id: Optional[str] = None,
    name: Optional[str] = None,
    parents=None,
    **stage_kwargs: Any,
) -> Firework:
    """A ready-to-submit Firework: VASP stage + VaspAnalyzer + VaspBinder."""
    spec = vasp_stage(structure, mps_id=mps_id, **stage_kwargs)
    return Firework(
        spec,
        name=name or f"vasp-{structure.reduced_formula}",
        analyzer=VaspAnalyzer(),
        binder=VaspBinder(),
        parents=parents,
    )
