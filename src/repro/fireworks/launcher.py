"""The Rocket launcher: pull a job, assemble inputs, run, analyze.

One :meth:`Rocket.launch` is one iteration of the paper's execution loop:
claim a READY Firework via a classad-style query (§III-B2), let the
*Assembler* translate the Stage dict into input files, execute FakeVASP,
then hand the parsed-and-reduced outcome to the Analyzer and apply its
actions.  :meth:`Rocket.rapidfire` loops until the queue is drained —
exactly how a task-farm slot consumes work.

The launcher also keeps the overhead ledger (time spent talking to the
datastore vs. simulated calculation time) that backs the §III-C claim that
"queries to pull down inputs and update the database with new job statuses
execute in a negligible fraction of the time to perform the calculations".
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, Mapping, Optional

from ..dft.scf import SCFParameters
from ..dft.vasp import FakeVASP, Resources
from ..errors import DFTError, ReproError, WorkflowError
from ..matgen.structure import Structure
from ..obs import get_registry, span
from .launchpad import LaunchPad
from .model import component_from_spec

__all__ = ["Assembler", "Rocket"]


class Assembler:
    """Translates a Stage dict into concrete execution state (§III-C2).

    "The job specification blueprint and subsequent translation to execution
    state (i.e., input files) by the Assembler, is dependent on the desired
    code to be executed."  For the ``fake_vasp`` code that means a
    Structure + SCFParameters + Resources triple and, when a work directory
    is given, INCAR/POSCAR files on disk.
    """

    def assemble(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        code = spec.get("code", "fake_vasp")
        if code != "fake_vasp":
            raise WorkflowError(f"no assembler for code {code!r}")
        if "structure" not in spec:
            raise WorkflowError("stage has no structure")
        return {
            "structure": Structure.from_dict(spec["structure"]),
            "params": SCFParameters.from_dict(spec.get("incar", {})),
            "resources": Resources.from_dict(spec.get("resources", {})),
        }


class Rocket:
    """Claims and executes Fireworks against a LaunchPad."""

    def __init__(
        self,
        launchpad: LaunchPad,
        worker_name: str = "rocket-0",
        scratch_dir: Optional[str] = None,
        write_run_dirs: bool = False,
    ):
        self.launchpad = launchpad
        self.worker_name = worker_name
        self.scratch_dir = scratch_dir
        self.write_run_dirs = write_run_dirs
        self.vasp = FakeVASP()
        self.assembler = Assembler()
        # Overhead ledger (real seconds on DB ops vs simulated calc time).
        self.db_overhead_s = 0.0
        self.simulated_calc_s = 0.0
        self.launches = 0

    # -- single launch --------------------------------------------------------

    def launch(
        self, resource_query: Optional[Mapping[str, Any]] = None
    ) -> Optional[dict]:
        """Run one Firework; returns its engine doc or None if queue empty."""
        t0 = time.perf_counter()
        fw_doc = self.launchpad.checkout_firework(resource_query, self.worker_name)
        self.db_overhead_s += time.perf_counter() - t0
        if fw_doc is None:
            return None
        self.launches += 1

        # The root span of one unit of work: the docstore ops issued while
        # it is open (task insert, engine-state updates) attach themselves
        # as timed children, giving the full launch → SCF → write trace.
        with span("firework.launch", fw_id=fw_doc["fw_id"],
                  worker=self.worker_name) as launch_span:
            with span("firework.execute", fw_id=fw_doc["fw_id"]):
                outcome = self._execute(fw_doc)
            launch_span.set_attribute("status", outcome.get("status"))
            analyzer = component_from_spec(fw_doc.get("analyzer"))

            t0 = time.perf_counter()
            self.launchpad.apply_actions(
                fw_doc, analyzer.analyze(fw_doc, outcome)
            )
            self.db_overhead_s += time.perf_counter() - t0
        get_registry().counter(
            "repro_firework_launches_total", "fireworks executed"
        ).inc(1, status=str(outcome.get("status")))
        return fw_doc

    def _execute(self, fw_doc: Mapping[str, Any]) -> Dict[str, Any]:
        spec = fw_doc["spec"]
        try:
            assembled = self.assembler.assemble(spec)
        except (WorkflowError, ReproError) as exc:
            return {"status": "FAILED", "error_kind": "INPUT",
                    "error_message": str(exc)}

        run_dir = None
        if self.write_run_dirs:
            base = self.scratch_dir or tempfile.mkdtemp(prefix="fw-scratch-")
            run_dir = os.path.join(
                base, f"launch-{fw_doc['fw_id']}-{fw_doc.get('launches', 0)}"
            )

        try:
            run = self.vasp.run(
                assembled["structure"],
                assembled["params"],
                assembled["resources"],
                run_dir=run_dir,
            )
        except DFTError as exc:
            kind = {
                "WalltimeExceeded": "WALLTIME",
                "MemoryExceeded": "OOM",
                "ConvergenceError": "SCF",
                "InputError": "INPUT",
            }.get(type(exc).__name__, "UNKNOWN")
            self.simulated_calc_s += float(
                spec.get("resources", {}).get("walltime_s", 0.0)
                if kind == "WALLTIME" else 0.0
            )
            return {"status": "FAILED", "error_kind": kind,
                    "error_message": str(exc), "run_dir": run_dir}

        self.simulated_calc_s += run.walltime_used_s
        # Parse-and-reduce: from the run directory when written, else from
        # the in-memory run (same reduced shape either way).
        if run_dir is not None:
            from ..dft.io import parse_run_directory

            reduced = parse_run_directory(run_dir)
        else:
            reduced = {
                "status": "COMPLETED",
                "energy": run.final_energy,
                "energy_per_atom": run.energy_per_atom,
                "n_iterations": run.scf.n_iterations,
                "walltime_used_s": run.walltime_used_s,
                "memory_used_mb": run.memory_used_mb,
                "parameters": run.scf.parameters.as_dict(),
                "structure": run.structure.as_dict(),
                "band_gap": run.band_gap,
                "is_metal": run.band_structure.is_metal,
                "code_version": self.vasp.version,
                # Bounded convergence record (the reduced OSZICAR): enough
                # for restart logic and V&V without the raw bulk.
                "convergence": {
                    "final_residual": run.scf.residuals[-1],
                    "trace": run.scf.residuals[-40:],
                },
            }
        reduced.setdefault("status", "COMPLETED")
        reduced["mps_id"] = spec.get("mps_id")
        reduced["formula"] = assembled["structure"].reduced_formula
        reduced["elements"] = assembled["structure"].elements
        reduced["functional"] = spec.get("functional", "GGA")
        return reduced

    # -- loops ------------------------------------------------------------------

    def rapidfire(
        self,
        resource_query: Optional[Mapping[str, Any]] = None,
        max_launches: Optional[int] = None,
    ) -> int:
        """Launch until the queue yields nothing (or the cap is reached)."""
        count = 0
        while max_launches is None or count < max_launches:
            if self.launch(resource_query) is None:
                break
            count += 1
        return count

    def overhead_fraction(self) -> float:
        """DB-time / simulated-calculation-time (§III-C's 'negligible')."""
        if self.simulated_calc_s <= 0:
            return float("inf")
        return self.db_overhead_s / self.simulated_calc_s
