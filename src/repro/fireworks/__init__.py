"""``repro.fireworks`` — the workflow engine (FireWorks analog, §III-C).

Fireworks carry a Stage (job spec dict), a Fuse (release condition +
Mongo-atomic-syntax overrides), an Analyzer (re-runs / detours / aborts) and
a Binder (duplicate detection).  The LaunchPad persists all state in the
``engines`` and ``tasks`` collections of the document store; Rockets claim
READY jobs with classad-style queries and run them through FakeVASP.
"""

from .model import (
    Analyzer,
    Binder,
    Firework,
    Fuse,
    FW_STATES,
    OutputConditionFuse,
    Stage,
    Workflow,
    component_from_spec,
    register_component,
)
from .launchpad import LaunchPad
from .launcher import Assembler, Rocket
from .analyzers import VaspAnalyzer
from .dupefinder import VaspBinder, vasp_firework, vasp_stage
from .iteration import (
    BisectionSearch,
    GeneticSearch,
    IterationResult,
    LinearScan,
    run_iteration,
)

__all__ = [
    "Analyzer",
    "Binder",
    "Firework",
    "Fuse",
    "FW_STATES",
    "OutputConditionFuse",
    "Stage",
    "Workflow",
    "component_from_spec",
    "register_component",
    "LaunchPad",
    "Assembler",
    "Rocket",
    "VaspAnalyzer",
    "VaspBinder",
    "vasp_firework",
    "vasp_stage",
    "BisectionSearch",
    "GeneticSearch",
    "IterationResult",
    "LinearScan",
    "run_iteration",
]
