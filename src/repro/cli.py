"""Command-line interface: populate, serve, query, validate, report.

A downstream operator's entry points over a persistent datastore directory::

    python -m repro.cli populate  --data-dir ./mpdb --n 40
    python -m repro.cli status    --data-dir ./mpdb
    python -m repro.cli query     --data-dir ./mpdb --formula NaCl
    python -m repro.cli vnv       --data-dir ./mpdb
    python -m repro.cli serve     --data-dir ./mpdb --port 8899
    python -m repro.cli mongostat --data-dir ./mpdb --n 5 --interval 1
    python -m repro.cli mongotop  --data-dir ./mpdb --n 3
    python -m repro.cli advise    --data-dir ./mpdb --verify
    python -m repro.cli profile   --host localhost --port 8900 --flame
    python -m repro.cli diagnose  --data-dir ./mpdb --crash

Every command opens the same snapshot+journal-backed store, so state
persists between invocations — a one-machine analog of operating the
production deployment.  ``mongostat``/``mongotop`` also run against a
live wire-protocol server (``--host``/--port``), sampling the fleet the
way their MongoDB namesakes do.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .api import MaterialsAPI, MaterialsAPIServer, QueryEngine, WebUI
from .api.annotations import AnnotationStore
from .builders import (
    BandStructureBuilder,
    BatteryBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    SymmetryBuilder,
    VnVRunner,
    XRDBuilder,
)
from .datagen import SyntheticICSD, elemental_references
from .docstore import DocumentStore
from .fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from .matgen import mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def _open_store(args: argparse.Namespace) -> DocumentStore:
    return DocumentStore(persistence_dir=args.data_dir,
                         fsync=getattr(args, "fsync", "interval"))


def cmd_populate(args: argparse.Namespace) -> int:
    store = _open_store(args)
    db = store["mp"]
    icsd = SyntheticICSD(seed=args.seed)
    structures = icsd.structures(args.n)
    elements = sorted({el for s in structures for el in s.elements})
    structures += elemental_references(elements)
    seen, unique = set(), []
    for s in structures:
        if s.structure_hash() not in seen:
            seen.add(s.structure_hash())
            unique.append(s)
    records = [mps_from_structure(s) for s in unique]
    existing = {d["mps_id"] for d in db["mps"].find({}, {"mps_id": 1})}
    fresh = [(s, r) for s, r in zip(unique, records)
             if r["mps_id"] not in existing]
    if fresh:
        db["mps"].insert_many([r for _, r in fresh])
    launchpad = LaunchPad(db)
    intake = launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(unique, records)
    ]))
    launches = Rocket(launchpad).rapidfire()
    print(f"workflow: {intake['added']} new fireworks, "
          f"{intake['duplicates']} dedup hits, {launches} launched")
    print(f"materials: {MaterialsBuilder(db).run()}")
    print(f"phase diagrams: {PhaseDiagramBuilder(db).run()}")
    print(f"batteries: {BatteryBuilder(db, 'Li').run_intercalation()}")
    print(f"xrd: {XRDBuilder(db).run()}")
    print(f"bands: {BandStructureBuilder(db).run()}")
    print(f"symmetry: {SymmetryBuilder(db).run()}")
    store.snapshot()
    print(f"snapshot written to {args.data_dir}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from .analysis import database_census

    store = _open_store(args)
    db = store["mp"]
    stats = db.command_stats()
    print(f"database: {stats['db']}  collections: {stats['collections']}  "
          f"documents: {stats['objects']}  bytes: {stats['dataSize']}")
    for name in db.list_collection_names():
        print(f"  {name:20s} {db[name].count_documents():6d} docs")
    census = database_census(db)
    if "formation_energy" in census:
        fe = census["formation_energy"]
        print(f"formation energy: mean {fe['mean']:.2f} eV/atom "
              f"(range {fe['min']:.2f} .. {fe['max']:.2f})")
        print(f"stable materials: {census.get('n_stable', 0)}  "
              f"metals: {census.get('n_metals', 0)}  "
              f"insulators: {census.get('n_insulators', 0)}")
        cov = census["element_coverage"]
        print(f"chemistry: {cov['n_elements']} elements; most common "
              + ", ".join(f"{el} ({n})" for el, n in cov["most_common"]))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    store = _open_store(args)
    qe = QueryEngine(store["mp"])
    if args.formula:
        criteria = {"reduced_formula": args.formula}
    elif args.criteria:
        criteria = json.loads(args.criteria)
    else:
        criteria = {}
    docs = qe.query(criteria, limit=args.limit,
                    properties=args.properties.split(",")
                    if args.properties else None)
    for doc in docs:
        doc.pop("_id", None)
        doc.pop("structure", None)
        print(json.dumps(doc, default=str))
    print(f"({len(docs)} documents)", file=sys.stderr)
    return 0


def cmd_vnv(args: argparse.Namespace) -> int:
    store = _open_store(args)
    report = VnVRunner(store["mp"]).run_all()
    print(f"V&V: {report['n_violations']} violations in "
          f"{report['elapsed_s'] * 1e3:.0f} ms")
    for violation in report["violations"]:
        print(f"  [{violation['rule']}] {violation['message']}")
    store.snapshot()
    return 0 if report["clean"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    store = _open_store(args)
    db = store["mp"]
    warehouse = None
    monitor = None
    query_log = None
    if not args.no_telemetry:
        from .obs.health import HealthMonitor
        from .obs.slo import default_rules
        from .obs.warehouse import TelemetryWarehouse

        warehouse = TelemetryWarehouse(store)
        warehouse.tail_sampler.install()
        warehouse.watch_profile(db)
        warehouse.start(interval_s=args.telemetry_interval)
        query_log = warehouse.access
        # Alerts live in telemetry.alerts: open alerts survive restarts.
        monitor = HealthMonitor(
            engine=warehouse.slo_engine(default_rules(db))
        )
    qe = QueryEngine(db, query_log=query_log)
    api = MaterialsAPI(qe)
    webui = WebUI(qe, AnnotationStore(db))
    server = MaterialsAPIServer(api, port=args.port, webui=webui,
                                monitor=monitor, warehouse=warehouse)
    server.start()
    wire = None
    if args.wire_port is not None:
        from .docstore.server import DatastoreServer

        wire = DatastoreServer(
            store, port=args.wire_port,
            access_log=warehouse.access if warehouse else None,
        ).start()
        print(f"wire protocol on {wire.address[0]}:{wire.port}")
    recorder = None
    watchdog = None
    if not args.no_flight:
        from .obs.flight import (
            StallWatchdog,
            enable_fault_handler,
            generate_crash_report,
            start_flight_recorder,
            stop_flight_recorder,
        )

        flight_dir = args.flight_dir or os.path.join(args.data_dir, "flight")
        enable_fault_handler(flight_dir)
        crash = generate_crash_report(
            flight_dir, journal_recovery=store.last_recovery)
        if crash is not None:
            print(f"unclean shutdown detected: crash report written to "
                  f"{os.path.join(flight_dir, 'crash_report.json')}")
            if warehouse is not None:
                warehouse.record_flight_event({
                    "type": "crash",
                    "session": crash.get("session"),
                    "last_snapshot_ts": crash.get("last_snapshot_ts"),
                    "snapshots_in_window": crash.get("snapshots_in_window"),
                    "journal_recovery": crash.get("journal_recovery"),
                })
        recorder = start_flight_recorder(
            store, flight_dir, interval_s=args.flight_interval)
        watchdog = StallWatchdog(
            recorder, store=store, wire_server=wire,
            stall_timeout_s=args.stall_timeout,
            event_sink=(warehouse.record_flight_event
                        if warehouse is not None else None),
        ).start()
        print(f"flight recorder on {flight_dir} "
              f"(every {args.flight_interval:g}s, stall timeout "
              f"{args.stall_timeout:g}s)")
    print(f"Materials API + Web UI on {server.base_url} "
          f"(try {server.base_url}/ui) — Ctrl-C to stop")
    if warehouse is not None:
        print(f"telemetry warehouse recording every "
              f"{args.telemetry_interval:g}s "
              f"(try {server.base_url}/telemetry/access?top=duration)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        if watchdog is not None:
            watchdog.stop()
        if recorder is not None:
            stop_flight_recorder()
        if wire is not None:
            wire.stop()
        server.stop()
        if warehouse is not None:
            warehouse.stop()
        store.close()
    return 0


def _monitor_target(args: argparse.Namespace):
    """``(target, close)`` for the sampler commands: a live wire-protocol
    server when ``--host`` is given, the local persistent store otherwise."""
    if args.host:
        if args.port is None:
            raise SystemExit("--host requires --port")
        from .docstore.server import RemoteClient

        client = RemoteClient(args.host, args.port,
                              pool_size=getattr(args, "pool_size", 4))
        return client, client.close
    return _open_store(args), (lambda: None)


def cmd_mongostat(args: argparse.Namespace) -> int:
    import time

    from .obs import ServerStatusSampler, format_stat_table

    target, close = _monitor_target(args)
    try:
        sampler = ServerStatusSampler(target)
        for i in range(args.n):
            if i:
                time.sleep(args.interval)
            sample = sampler.sample()
            if args.json:
                print(json.dumps(sample, default=str))
            else:
                print(format_stat_table([sample], header=(i == 0)))
            sys.stdout.flush()
    finally:
        close()
    return 0


def cmd_mongotop(args: argparse.Namespace) -> int:
    import time

    from .obs import TopSampler, format_top_table

    target, close = _monitor_target(args)
    try:
        sampler = TopSampler(target[args.db])
        for i in range(args.n):
            if i:
                time.sleep(args.interval)
            sample = sampler.sample()
            if args.json:
                print(json.dumps(sample, default=str))
            else:
                if i:
                    print()
                print(format_top_table(sample))
            sys.stdout.flush()
    finally:
        close()
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: admin the sharded cluster on a live server."""
    if not args.host or args.port is None:
        raise SystemExit(
            "repro cluster requires --host and --port (a live server "
            "started with an attached sharded cluster)"
        )
    from .docstore.server import RemoteClient
    from .errors import ClusterError

    client = RemoteClient(args.host, args.port)
    try:
        if args.action == "status":
            status = client.shard_status()
            if args.json:
                print(json.dumps(status, default=str))
                return 0
            print(
                f"shards: {len(status['shards'])}"
                f"  migrations: {status['migrations']}"
                f"  splits: {status['splits']}"
                f"  staleEpochRetries: {status['staleEpochRetries']}"
                f"  balancer: "
                f"{'on' if status['balancerRunning'] else 'off'}"
            )
            for shard_id, rs in sorted(status["shards"].items()):
                members = "  ".join(
                    f"{m['name']}:{m['role'].lower()}"
                    for m in rs["members"]
                )
                print(f"  {shard_id}: term={rs['term']} "
                      f"primary={rs['primary']}  {members}")
            for ns, info in sorted(status["namespaces"].items()):
                chunks = " ".join(f"{s}={n}" for s, n
                                  in sorted(info["chunks"].items()))
                print(f"  {ns}: key={info['shardKey']} "
                      f"({info['strategy']}) epoch={info['epoch']} "
                      f"chunks: {chunks}")
            return 0
        if args.action == "add-shard":
            if not args.shard:
                raise SystemExit("add-shard requires --shard")
            print(json.dumps(client.add_shard(args.shard)))
            return 0
        if args.action == "move-chunk":
            if not (args.ns and args.chunk and args.to):
                raise SystemExit(
                    "move-chunk requires --ns, --chunk and --to")
            print(json.dumps(client.move_chunk(args.ns, args.chunk,
                                               args.to)))
            return 0
        if not args.shard:
            raise SystemExit("step-down requires --shard")
        print(json.dumps(client.step_down(args.shard)))
        return 0
    except ClusterError as exc:
        raise SystemExit(f"repro cluster: {exc}") from exc
    finally:
        client.close()


def _parse_keys(spec: str):
    """``"formula:1,e_above_hull:-1"`` -> ``[("formula", 1), ...]``.

    A bare field name means ascending; directions must be 1 or -1.
    """
    keys = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            field, _, direction = part.rpartition(":")
            keys.append((field.strip(), int(direction)))
        else:
            keys.append((part, 1))
    if not keys:
        raise SystemExit(f"empty index key spec: {spec!r}")
    return keys


def cmd_explain(args: argparse.Namespace) -> int:
    target, close = _monitor_target(args)
    try:
        coll = target[args.db][args.coll]
        report = coll.explain(
            json.loads(args.criteria) if args.criteria else {},
            sort=_parse_keys(args.sort) if args.sort else None,
            projection={f: 1 for f in args.projection.split(",")}
            if args.projection else None,
            hint=args.hint,
            verbosity=args.verbosity,
        )
    finally:
        close()
    if args.json:
        print(json.dumps(report, default=str))
        return 0
    print(f"{args.db}.{args.coll}: {report['planSummary']}")
    print(f"  nReturned {report['nReturned']}  "
          f"keysExamined {report['keysExamined']}  "
          f"docsExamined {report['docsExamined']}  "
          f"{report['executionTimeMillis']:.2f} ms")
    print(f"  blockingSort {report['blockingSort']}  "
          f"covered {report['covered']}")
    for rejected in report.get("rejectedPlans") or []:
        print(f"  rejected: {rejected['planSummary']}")
    return 0


def cmd_create_index(args: argparse.Namespace) -> int:
    target, close = _monitor_target(args)
    try:
        coll = target[args.db][args.coll]
        name = coll.create_index(_parse_keys(args.keys),
                                 unique=args.unique, name=args.name,
                                 expire_after_seconds=args.expire_after)
        if hasattr(target, "snapshot"):
            target.snapshot()
    finally:
        close()
    ttl = (f" (TTL {args.expire_after:g}s)"
           if args.expire_after is not None else "")
    print(f"created index {name} on {args.db}.{args.coll}{ttl}")
    return 0


def _find_docs(coll, query=None, projection=None, sort=None, limit=0):
    """find() over a local Collection (cursor API) or a RemoteCollection
    (kwargs API) — the telemetry commands work against either."""
    from .docstore.server import RemoteCollection

    if isinstance(coll, RemoteCollection):
        return coll.find(query or {}, projection, sort=sort,
                         limit=int(limit))
    cursor = coll.find(query or {}, projection)
    if sort:
        cursor = cursor.sort(sort)
    if limit:
        cursor = cursor.limit(int(limit))
    return list(cursor)


def _fmt_ts(ts: float) -> str:
    import time

    return time.strftime("%m-%d %H:%M:%S", time.localtime(ts))


def cmd_telemetry(args: argparse.Namespace) -> int:
    """``repro telemetry top|trends|access`` — warehouse analytics, local
    or over the wire (the collections are plain data, so a RemoteClient
    answers the same queries a local store does)."""
    target, close = _monitor_target(args)
    try:
        tdb = target["telemetry"]
        if args.action == "top":
            from .api.querylog import access_top

            rows = access_top(tdb["access"], by=args.by, limit=args.limit)
            if args.json:
                print(json.dumps(rows, default=str))
                return 0
            print(f"{'endpoint':<32s}{'count':>8s}{'errors':>8s}"
                  f"{'total(ms)':>12s}{'mean(ms)':>10s}{'max(ms)':>10s}")
            for r in rows:
                print(f"{str(r['endpoint']):<32s}{r['count']:>8d}"
                      f"{r['errors']:>8d}{r['total_ms']:>12.1f}"
                      f"{r['mean_ms']:>10.2f}{r['max_ms']:>10.2f}")
            return 0
        if args.action == "access":
            query = {}
            if args.endpoint:
                query["endpoint"] = args.endpoint
            if args.user:
                query["user"] = args.user
            if args.status is not None:
                query["status"] = args.status
            if args.errors_only:
                query["$or"] = [{"status": {"$gte": 400}},
                                {"error": {"$ne": None}}]
            records = _find_docs(
                tdb["access"], query, {"_id": 0},
                sort=[("ts", -1), ("seq", -1)], limit=args.limit,
            )
            if args.json:
                for rec in records:
                    print(json.dumps(rec, default=str))
                return 0
            for rec in records:
                user = rec.get("user") or "-"
                err = f"  !{rec['error']}" if rec.get("error") else ""
                print(f"{_fmt_ts(rec.get('ts', 0.0))}  {rec.get('status', 0):3d}  "
                      f"{rec.get('method', '-'):5s} "
                      f"{str(rec.get('endpoint')):<32s}"
                      f"{rec.get('duration_ms', 0.0):>9.2f} ms  {user}{err}")
            print(f"({len(records)} records)", file=sys.stderr)
            return 0
        # trends: metrics history (raw) or rollup buckets (1m / 1h)
        if not args.name:
            names = tdb["metrics"].distinct("name")
            for name in sorted(names):
                print(name)
            print(f"({len(names)} metrics with history; "
                  "pick one with --name)", file=sys.stderr)
            return 0
        if args.resolution == "raw":
            rows = _find_docs(
                tdb["metrics"], {"name": args.name}, {"_id": 0},
                sort=[("ts", 1)], limit=0,
            )
        else:
            rows = _find_docs(
                tdb["metrics_rollup"],
                {"name": args.name, "resolution": args.resolution},
                {"_id": 0}, sort=[("ts", 1)], limit=0,
            )
        if args.limit:
            rows = rows[-args.limit:]
        if args.json:
            for row in rows:
                print(json.dumps(row, default=str))
            return 0
        if args.resolution == "raw":
            for row in rows:
                print(f"{_fmt_ts(row['ts'])}  {row.get('value', 0.0):>12.4g}"
                      f"  {row.get('labels_key', '')}")
        else:
            print(f"{'bucket':<15s}{'count':>7s}{'mean':>12s}{'min':>12s}"
                  f"{'max':>12s}{'p95':>12s}  labels")
            for row in rows:
                print(f"{_fmt_ts(row['ts']):<15s}{row['count']:>7d}"
                      f"{row['mean']:>12.4g}{row['min']:>12.4g}"
                      f"{row['max']:>12.4g}{row['p95']:>12.4g}"
                      f"  {row.get('labels_key', '')}")
        print(f"({len(rows)} points)", file=sys.stderr)
        return 0
    finally:
        close()


def _print_profile_snapshot(snap: dict) -> None:
    print(f"profiler: {'running' if snap.get('running') else 'stopped'}  "
          f"{snap.get('hz', 0):g} Hz  samples {snap.get('samples', 0)}  "
          f"threads {snap.get('threads', 0)}  "
          f"stacks {snap.get('distinct_stacks', 0)}"
          + ("  [truncated]" if snap.get("truncated") else ""))
    if snap.get("duration_s"):
        print(f"  window {snap['duration_s']:.1f}s  "
              f"achieved {snap.get('achieved_hz', 0.0):.1f} Hz  "
              f"overhead {snap.get('overhead_ms', 0.0):.1f} ms")
    top = snap.get("top") or []
    if top:
        print(f"{'self':>8s}  {'%':>6s}  function")
        total = max(snap.get("samples", 0), 1)
        for row in top:
            print(f"{row['count']:>8d}  "
                  f"{100.0 * row['count'] / total:>5.1f}%"
                  f"  {row['function']}")


def _print_lock_report(report: dict) -> None:
    totals = report.get("totals", {})
    print("lock totals: "
          + "  ".join(f"{k} {totals[k]:g}" for k in sorted(totals)))
    rows = report.get("top_contended") or []
    if not rows:
        print("no lock contention above the noise floor")
        return
    print(f"{'wait(ms)':>10s}{'count':>7s}  {'mode':<6s}"
          f"{'ns':<24s}waiter -> holder")
    for row in rows:
        ns = f"{row.get('db', '?')}.{row.get('coll', '?')}"
        print(f"{row['wait_ms']:>10.2f}{row['count']:>7d}  "
              f"{row['mode']:<6s}{ns:<24s}"
              f"{row['waiter']} -> {row['holder']}")


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile`` — continuous-profiler snapshots, folded stacks
    for flamegraphs, and the lock-contention report; local or over the
    wire (the wire path profiles the *server* process)."""
    import time

    if args.locks:
        target, close = _monitor_target(args)
        try:
            report = target.lock_report(limit=args.top or 10)
        finally:
            close()
        if args.json:
            print(json.dumps(report, default=str))
        else:
            _print_lock_report(report)
        return 0

    if args.host:
        if args.port is None:
            raise SystemExit("--host requires --port")
        from .docstore.server import RemoteClient

        client = RemoteClient(args.host, args.port)
        try:
            started = client.profile("start", hz=args.hz)
            time.sleep(args.duration)
            if args.flame:
                for line in client.profile("flame", limit=args.top or 0):
                    print(line)
            else:
                snap = client.profile("snapshot", limit=args.top)
                if args.json:
                    print(json.dumps(snap, default=str))
                else:
                    _print_profile_snapshot(snap)
            # Leave a profiler someone else started running; only stop
            # the one this command started.
            if not started.get("already_running"):
                client.profile("stop")
        finally:
            client.close()
        return 0

    # Local mode: profile *this* process while the store serves the
    # sampling window (warehouse ticks, TTL reaper, any embedding app).
    from .obs.profiler import get_profiler, start_profiler, stop_profiler

    existing = get_profiler()
    already = existing is not None and existing.running
    profiler = start_profiler(hz=args.hz)
    time.sleep(args.duration)
    snap = (profiler.snapshot(limit=args.top)
            if already else (stop_profiler() or {}))
    if args.flame:
        for line in snap.get("stacks") or []:
            print(f"{line['stack']} {line['count']}")
    elif args.json:
        print(json.dumps(snap, default=str))
    else:
        _print_profile_snapshot(snap)
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    """``repro diagnose`` — decode the flight-recorder ring: recent
    windows, time-range slices, window diffs, an anomaly scan, and the
    pre-crash report.  The local path reads only the ring directory —
    it never opens the docstore, so it works when the data files are
    the casualty; ``--host`` asks a live server about *its* recorder."""
    from .obs import flight as fl

    if args.host:
        if args.port is None:
            raise SystemExit("--host requires --port")
        from .docstore.server import RemoteClient

        client = RemoteClient(args.host, args.port)
        try:
            if args.crash:
                doc = client.flight("crash")
            elif args.anomalies:
                doc = client.flight("anomalies", threshold=args.threshold)
            elif args.window:
                doc = client.flight("window", limit=args.window)
            else:
                doc = client.flight("status")
        finally:
            client.close()
        print(json.dumps(doc, default=str,
                         indent=None if args.json else 2))
        return 0

    flight_dir = args.flight_dir or os.path.join(args.data_dir, "flight")

    if args.crash:
        report = fl.read_crash_report(flight_dir)
        source = "crash_report.json"
        if report is None:
            report = fl.build_crash_report(flight_dir,
                                           window_s=args.window_s)
            source = "ring"
        if args.json:
            print(json.dumps(report, default=str))
            return 0
        print(f"crash report ({source}) for {flight_dir}")
        session = report.get("session") or {}
        if session:
            print(f"  session: pid {session.get('pid')}  "
                  f"clean={session.get('clean')}")
        final = report.get("final")
        if final:
            print(f"  last snapshot: seq {final.get('seq')} at "
                  f"{_fmt_ts(final.get('ts') or 0.0)} "
                  f"({report.get('snapshots_in_window', 0)} snapshots in "
                  f"the final {report.get('window_s', 0.0):g}s)")
            ops = final.get("opcounters") or {}
            if ops:
                print("  opcounters: "
                      + "  ".join(f"{k} {ops[k]}" for k in sorted(ops)))
            journal = final.get("journal") or {}
            if journal:
                print(f"  journal: pending {journal.get('pending')}  "
                      f"appended {journal.get('appended')}  "
                      f"committed {journal.get('committed')}")
        else:
            print("  no snapshots in the ring")
        if report.get("journal_recovery"):
            print(f"  journal recovery: {report['journal_recovery']}")
        for warning in report.get("decode_warnings") or []:
            print(f"  warning: {warning}")
        for event in (report.get("events") or [])[-5:]:
            print(f"  event: {event.get('type')} at "
                  f"{_fmt_ts(event.get('ts', 0.0))}")
        for finding in (report.get("anomalies") or [])[:5]:
            print(f"  anomaly: {finding['series']} z={finding['z']:+.1f} "
                  f"value {finding['value']:g} (median "
                  f"{finding['median']:g})")
        return 0

    decoded = fl.decode_ring(flight_dir, since=args.since, until=args.until)
    snaps = decoded["snapshots"]
    window = snaps[-args.window:] if args.window else snaps

    if args.diff:
        result = fl.diff_window(snaps, args.diff[0], args.diff[1])
        if args.json:
            print(json.dumps(result, default=str))
            return 0
        print(f"window diff: {result.get('snapshots', 0)} snapshots "
              f"{_fmt_ts(result.get('first_ts') or 0.0)} .. "
              f"{_fmt_ts(result.get('last_ts') or 0.0)}")
        for path in sorted(result.get("deltas", {})):
            d = result["deltas"][path]
            print(f"  {path}: {d['from']:g} -> {d['to']:g} "
                  f"({d['delta']:+g})")
        return 0

    if args.anomalies:
        findings = fl.scan_anomalies(window, threshold=args.threshold)
        if args.json:
            print(json.dumps(findings, default=str))
            return 0
        if not findings:
            print(f"no anomalies above |z| >= {args.threshold:g} "
                  f"in {len(window)} snapshots")
        for finding in findings:
            print(f"{finding['z']:>+8.1f}  {finding['series']}  "
                  f"value {finding['value']:g} (median "
                  f"{finding['median']:g}) at {_fmt_ts(finding['ts'])}")
        return 0

    if args.json:
        print(json.dumps({
            "directory": flight_dir,
            "chunks": decoded["chunks"],
            "records": decoded["records"],
            "snapshots": len(snaps),
            "events": decoded["events"],
            "warnings": decoded["warnings"],
            "window": window,
        }, default=str))
        return 0
    print(f"flight ring {flight_dir}: {decoded['chunks']} chunks, "
          f"{decoded['records']} records, {len(snaps)} snapshots, "
          f"{len(decoded['events'])} events")
    for warning in decoded["warnings"]:
        print(f"  warning: {warning}")
    for event in decoded["events"][-10:]:
        print(f"  event: {event.get('type')} at "
              f"{_fmt_ts(event.get('ts', 0.0))}")
    shown = window if args.window else window[-5:]
    for snap in shown:
        server = snap.get("server") or {}
        ops = server.get("opcounters") or {}
        proc = snap.get("process") or {}
        rss = proc.get("rss_bytes")
        print(f"  {_fmt_ts(snap.get('ts', 0.0))}  seq {snap.get('seq')}  "
              f"ops {sum(ops.values()) if ops else 0}  "
              f"rss {'-' if rss is None else f'{rss / 1048576.0:.1f}M'}")
    return 0


def cmd_plan_cache(args: argparse.Namespace) -> int:
    target, close = _monitor_target(args)
    try:
        if args.coll:
            stats = target[args.db][args.coll].plan_cache_stats()
        elif args.host:
            raise SystemExit("--host requires --coll for plan-cache")
        else:
            stats = target[args.db].plan_cache_status()
    finally:
        close()
    print(json.dumps(stats, default=str, indent=2 if not args.json else None))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from .obs import IndexAdvisor

    store = _open_store(args)
    advisor = IndexAdvisor(store[args.db], min_millis=args.min_millis,
                           min_occurrences=args.min_occurrences)
    recs = advisor.analyze()
    if args.json:
        print(json.dumps({
            "recommendations": [r.to_dict() for r in recs],
            "unused_indexes": advisor.unused_indexes(),
        }, default=str))
        return 0
    if not recs:
        print("no missing-index candidates in system.profile "
              "(is profiling enabled? try db.set_profiling_level)")
    for rec in recs:
        print(f"{rec.ns}: {rec.command}")
        print(f"  seen {rec.occurrences}x, avg {rec.avg_millis:.2f} ms, "
              f"docsExamined {rec.docs_examined_before} -> "
              f"~{rec.estimated_docs_examined_after} "
              f"({rec.estimated_reduction:.0%} fewer)")
        if args.verify:
            result = advisor.verify(rec, keep=args.keep)
            print(f"  explain(): {result['before']['stage']} "
                  f"{result['before']['docsExamined']} docs -> "
                  f"{result['after']['stage']} "
                  f"{result['after']['docsExamined']} docs"
                  + ("  [index kept]" if args.keep else "  [index dropped]"))
    unused = advisor.unused_indexes()
    for ix in unused:
        print(f"{ix['ns']}: index {ix['name']} ({ix['field']}) "
              f"unused since creation — drop candidate")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Materials Project reproduction CLI"
    )
    parser.add_argument("--data-dir", default="./mp-datastore",
                        help="persistence directory for the document store")
    parser.add_argument("--fsync", choices=["always", "interval", "never"],
                        default="interval",
                        help="journal fsync policy: 'always' fsyncs every "
                             "group commit, 'interval' amortizes fsyncs on "
                             "a timer, 'never' leaves flushing to the OS")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("populate", help="generate inputs, compute, build")
    p.add_argument("--n", type=int, default=30, help="ICSD structures")
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=cmd_populate)

    p = sub.add_parser("status", help="collection census")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("query", help="query the materials collection")
    p.add_argument("--formula", help="reduced formula shortcut")
    p.add_argument("--criteria", help="raw JSON query document")
    p.add_argument("--properties", help="comma-separated projection")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("vnv", help="run validation & verification")
    p.set_defaults(fn=cmd_vnv)

    p = sub.add_parser("serve", help="serve the Materials API + Web UI")
    p.add_argument("--port", type=int, default=8899)
    p.add_argument("--wire-port", type=int,
                   help="also serve the wire protocol on this port")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the telemetry warehouse (metrics history, "
                        "access log, tail-sampled traces, TTL retention)")
    p.add_argument("--telemetry-interval", type=float, default=5.0,
                   help="seconds between warehouse recording passes")
    p.add_argument("--no-flight", action="store_true",
                   help="disable the flight recorder, stall watchdog, and "
                        "crash forensics")
    p.add_argument("--flight-dir",
                   help="flight-ring directory (default <data-dir>/flight)")
    p.add_argument("--flight-interval", type=float, default=1.0,
                   help="seconds between flight-recorder snapshots")
    p.add_argument("--stall-timeout", type=float, default=5.0,
                   help="seconds a liveness probe must fail before the "
                        "watchdog declares a stall")
    p.set_defaults(fn=cmd_serve)

    for name, help_text in (
        ("mongostat", "sample opcounter deltas (mongostat analog)"),
        ("mongotop", "sample per-collection read/write time (mongotop)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--n", type=int, default=5, help="samples to take")
        p.add_argument("--interval", type=float, default=1.0,
                       help="seconds between samples")
        p.add_argument("--json", action="store_true",
                       help="one JSON document per sample")
        p.add_argument("--host", help="sample a live wire-protocol server")
        p.add_argument("--port", type=int, help="server port (with --host)")
        p.add_argument("--pool-size", type=int, default=4,
                       help="client connection-pool size (with --host)")
        if name == "mongotop":
            p.add_argument("--db", default="mp", help="database to watch")
            p.set_defaults(fn=cmd_mongotop)
        else:
            p.set_defaults(fn=cmd_mongostat)

    def _add_wire_target(p):
        p.add_argument("--host", help="target a live wire-protocol server")
        p.add_argument("--port", type=int, help="server port (with --host)")

    p = sub.add_parser("cluster",
                       help="sharded-cluster admin (status/add-shard/"
                            "move-chunk/step-down)")
    p.add_argument("action",
                   choices=["status", "add-shard", "move-chunk",
                            "step-down"])
    p.add_argument("--shard", help="shard id (add-shard / step-down)")
    p.add_argument("--ns", help="sharded namespace (move-chunk)")
    p.add_argument("--chunk", help="chunk id (move-chunk)")
    p.add_argument("--to", help="destination shard (move-chunk)")
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("explain", help="run the query planner and report")
    p.add_argument("--db", default="mp")
    p.add_argument("--coll", default="materials")
    p.add_argument("--criteria", help="raw JSON query document")
    p.add_argument("--sort", help='sort spec, e.g. "e_above_hull:1"')
    p.add_argument("--projection", help="comma-separated included fields")
    p.add_argument("--hint", help="force an index by name ($natural scans)")
    p.add_argument("--verbosity", default="executionStats",
                   choices=["executionStats", "allPlansExecution"])
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("create-index",
                       help="create a (compound) secondary index")
    p.add_argument("--db", default="mp")
    p.add_argument("--coll", default="materials")
    p.add_argument("--keys", required=True,
                   help='key spec, e.g. "formula:1,e_above_hull:-1"')
    p.add_argument("--unique", action="store_true")
    p.add_argument("--name", help="index name (defaults to key-derived)")
    p.add_argument("--expire-after", type=float,
                   help="TTL: expire documents whose (single) key field is "
                        "an epoch-seconds timestamp older than this many "
                        "seconds")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_create_index)

    p = sub.add_parser("telemetry",
                       help="telemetry warehouse analytics (top/trends/"
                            "access)")
    p.add_argument("action", choices=["top", "trends", "access"])
    p.add_argument("--by", default="duration",
                   choices=["duration", "count", "errors"],
                   help="ranking for 'top'")
    p.add_argument("--name", help="metric name for 'trends'")
    p.add_argument("--resolution", default="raw",
                   choices=["raw", "1m", "1h"],
                   help="metrics history granularity for 'trends'")
    p.add_argument("--endpoint", help="filter 'access' by endpoint")
    p.add_argument("--user", help="filter 'access' by user id")
    p.add_argument("--status", type=int, help="filter 'access' by status")
    p.add_argument("--errors-only", action="store_true",
                   help="only failed requests (status >= 400 or error)")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_telemetry)

    p = sub.add_parser("profile",
                       help="continuous profiler: sample stacks, emit "
                            "folded flamegraph lines, or report lock "
                            "contention (local or over the wire)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds to sample before reporting")
    p.add_argument("--hz", type=float, default=100.0,
                   help="sampling frequency")
    p.add_argument("--flame", action="store_true",
                   help="emit folded 'stack count' lines for "
                        "flamegraph.pl / speedscope")
    p.add_argument("--locks", action="store_true",
                   help="report top contended locks instead of sampling")
    p.add_argument("--top", type=int, default=0,
                   help="bound the reported stacks / contended sites "
                        "(0 = profiler default)")
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("diagnose",
                       help="decode the flight-recorder ring: windows, "
                            "diffs, anomalies, crash forensics (never "
                            "opens the docstore)")
    p.add_argument("--flight-dir",
                   help="ring directory (default <data-dir>/flight)")
    p.add_argument("--window", type=int, default=0,
                   help="only the last N snapshots")
    p.add_argument("--since", type=float,
                   help="epoch-seconds lower bound on returned records")
    p.add_argument("--until", type=float,
                   help="epoch-seconds upper bound on returned records")
    p.add_argument("--diff", nargs=2, type=float, metavar=("T0", "T1"),
                   help="numeric-leaf deltas between two instants")
    p.add_argument("--anomalies", action="store_true",
                   help="MAD-z-score outlier scan over the window")
    p.add_argument("--threshold", type=float, default=6.0,
                   help="modified z-score threshold for --anomalies")
    p.add_argument("--crash", action="store_true",
                   help="pre-crash report: the persisted crash_report.json "
                        "or one rebuilt from the ring alone")
    p.add_argument("--window-s", type=float, default=30.0,
                   help="pre-crash window size in seconds for --crash")
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_diagnose)

    p = sub.add_parser("plan-cache", help="plan-cache counters and size")
    p.add_argument("--db", default="mp")
    p.add_argument("--coll", help="one collection (required with --host)")
    p.add_argument("--json", action="store_true")
    _add_wire_target(p)
    p.set_defaults(fn=cmd_plan_cache)

    p = sub.add_parser("advise",
                       help="recommend indexes from system.profile")
    p.add_argument("--db", default="mp")
    p.add_argument("--min-millis", type=float, default=0.0,
                   help="ignore profile entries faster than this")
    p.add_argument("--min-occurrences", type=int, default=1,
                   help="require a query shape this many times")
    p.add_argument("--verify", action="store_true",
                   help="replay explain() with the index created")
    p.add_argument("--keep", action="store_true",
                   help="keep indexes created during --verify")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_advise)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`): not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
