"""Command-line interface: populate, serve, query, validate, report.

A downstream operator's entry points over a persistent datastore directory::

    python -m repro.cli populate --data-dir ./mpdb --n 40
    python -m repro.cli status   --data-dir ./mpdb
    python -m repro.cli query    --data-dir ./mpdb --formula NaCl
    python -m repro.cli vnv      --data-dir ./mpdb
    python -m repro.cli serve    --data-dir ./mpdb --port 8899

Every command opens the same snapshot+journal-backed store, so state
persists between invocations — a one-machine analog of operating the
production deployment.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .api import MaterialsAPI, MaterialsAPIServer, QueryEngine, WebUI
from .api.annotations import AnnotationStore
from .builders import (
    BandStructureBuilder,
    BatteryBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    SymmetryBuilder,
    VnVRunner,
    XRDBuilder,
)
from .datagen import SyntheticICSD, elemental_references
from .docstore import DocumentStore
from .fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from .matgen import mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def _open_store(args: argparse.Namespace) -> DocumentStore:
    return DocumentStore(persistence_dir=args.data_dir)


def cmd_populate(args: argparse.Namespace) -> int:
    store = _open_store(args)
    db = store["mp"]
    icsd = SyntheticICSD(seed=args.seed)
    structures = icsd.structures(args.n)
    elements = sorted({el for s in structures for el in s.elements})
    structures += elemental_references(elements)
    seen, unique = set(), []
    for s in structures:
        if s.structure_hash() not in seen:
            seen.add(s.structure_hash())
            unique.append(s)
    records = [mps_from_structure(s) for s in unique]
    existing = {d["mps_id"] for d in db["mps"].find({}, {"mps_id": 1})}
    fresh = [(s, r) for s, r in zip(unique, records)
             if r["mps_id"] not in existing]
    if fresh:
        db["mps"].insert_many([r for _, r in fresh])
    launchpad = LaunchPad(db)
    intake = launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(unique, records)
    ]))
    launches = Rocket(launchpad).rapidfire()
    print(f"workflow: {intake['added']} new fireworks, "
          f"{intake['duplicates']} dedup hits, {launches} launched")
    print(f"materials: {MaterialsBuilder(db).run()}")
    print(f"phase diagrams: {PhaseDiagramBuilder(db).run()}")
    print(f"batteries: {BatteryBuilder(db, 'Li').run_intercalation()}")
    print(f"xrd: {XRDBuilder(db).run()}")
    print(f"bands: {BandStructureBuilder(db).run()}")
    print(f"symmetry: {SymmetryBuilder(db).run()}")
    store.snapshot()
    print(f"snapshot written to {args.data_dir}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from .analysis import database_census

    store = _open_store(args)
    db = store["mp"]
    stats = db.command_stats()
    print(f"database: {stats['db']}  collections: {stats['collections']}  "
          f"documents: {stats['objects']}  bytes: {stats['dataSize']}")
    for name in db.list_collection_names():
        print(f"  {name:20s} {db[name].count_documents():6d} docs")
    census = database_census(db)
    if "formation_energy" in census:
        fe = census["formation_energy"]
        print(f"formation energy: mean {fe['mean']:.2f} eV/atom "
              f"(range {fe['min']:.2f} .. {fe['max']:.2f})")
        print(f"stable materials: {census.get('n_stable', 0)}  "
              f"metals: {census.get('n_metals', 0)}  "
              f"insulators: {census.get('n_insulators', 0)}")
        cov = census["element_coverage"]
        print(f"chemistry: {cov['n_elements']} elements; most common "
              + ", ".join(f"{el} ({n})" for el, n in cov["most_common"]))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    store = _open_store(args)
    qe = QueryEngine(store["mp"])
    if args.formula:
        criteria = {"reduced_formula": args.formula}
    elif args.criteria:
        criteria = json.loads(args.criteria)
    else:
        criteria = {}
    docs = qe.query(criteria, limit=args.limit,
                    properties=args.properties.split(",")
                    if args.properties else None)
    for doc in docs:
        doc.pop("_id", None)
        doc.pop("structure", None)
        print(json.dumps(doc, default=str))
    print(f"({len(docs)} documents)", file=sys.stderr)
    return 0


def cmd_vnv(args: argparse.Namespace) -> int:
    store = _open_store(args)
    report = VnVRunner(store["mp"]).run_all()
    print(f"V&V: {report['n_violations']} violations in "
          f"{report['elapsed_s'] * 1e3:.0f} ms")
    for violation in report["violations"]:
        print(f"  [{violation['rule']}] {violation['message']}")
    store.snapshot()
    return 0 if report["clean"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    store = _open_store(args)
    qe = QueryEngine(store["mp"])
    api = MaterialsAPI(qe)
    webui = WebUI(qe, AnnotationStore(store["mp"]))
    server = MaterialsAPIServer(api, port=args.port, webui=webui)
    server.start()
    print(f"Materials API + Web UI on {server.base_url} "
          f"(try {server.base_url}/ui) — Ctrl-C to stop")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        server.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Materials Project reproduction CLI"
    )
    parser.add_argument("--data-dir", default="./mp-datastore",
                        help="persistence directory for the document store")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("populate", help="generate inputs, compute, build")
    p.add_argument("--n", type=int, default=30, help="ICSD structures")
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=cmd_populate)

    p = sub.add_parser("status", help="collection census")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("query", help="query the materials collection")
    p.add_argument("--formula", help="reduced formula shortcut")
    p.add_argument("--criteria", help="raw JSON query document")
    p.add_argument("--properties", help="comma-separated projection")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("vnv", help="run validation & verification")
    p.set_defaults(fn=cmd_vnv)

    p = sub.add_parser("serve", help="serve the Materials API + Web UI")
    p.add_argument("--port", type=int, default=8899)
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`): not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
