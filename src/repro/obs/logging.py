"""Structured logging with a shared redacting formatter.

Every layer logs through ``get_logger("repro.<layer>")``; handlers share
one :class:`RedactingFormatter` that scrubs credentials (API keys, tokens,
passwords) before a line can reach a terminal or file — the observability
layer must never leak the secrets the auth layer protects.

Lines are ``key=value`` structured::

    2026-08-05 12:00:01 INFO repro.api.http event=request path=/rest/v1/... status=200

Use :func:`log_event` to emit such lines without hand-formatting.
"""

from __future__ import annotations

import logging
import os
import re
from typing import Any

__all__ = ["RedactingFormatter", "get_logger", "log_event", "redact"]

#: Credential-ish keys whose values must never appear in log output.
_SECRET_KEYS = ("api_key", "apikey", "api-key", "x-api-key", "password",
                "secret", "token", "authorization")

_SECRET_RE = re.compile(
    r"(?i)\b(" + "|".join(re.escape(k) for k in _SECRET_KEYS) +
    r")\s*([=:])\s*([^\s,;&\"']+)"
)

_ENV_LEVEL = "REPRO_LOG_LEVEL"


def redact(text: str) -> str:
    """Replace credential values with ``****`` wherever they appear."""
    return _SECRET_RE.sub(lambda m: f"{m.group(1)}{m.group(2)}****", text)


class RedactingFormatter(logging.Formatter):
    """Standard formatter that scrubs secrets from the rendered line."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)s %(name)s %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        return redact(super().format(record))


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger wired to the shared redacting handler (idempotent).

    The root ``repro`` logger gets one stream handler; child loggers
    propagate to it, so each line is emitted exactly once.  The level comes
    from ``REPRO_LOG_LEVEL`` (default WARNING, so libraries stay quiet).
    """
    root = logging.getLogger("repro")
    if not any(getattr(h, "_repro_obs", False) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(RedactingFormatter())
        handler._repro_obs = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        root.setLevel(os.environ.get(_ENV_LEVEL, "WARNING").upper())
        root.propagate = False
    return logging.getLogger(name)


def log_event(logger: logging.Logger, level: int, event: str,
              **fields: Any) -> None:
    """Emit one structured ``event k=v ...`` line (values redacted)."""
    if not logger.isEnabledFor(level):
        return
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if " " in text:
            text = '"' + text.replace('"', "'") + '"'
        parts.append(f"{key}={text}")
    logger.log(level, " ".join(parts))
