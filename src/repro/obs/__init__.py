"""``repro.obs`` — the unified observability layer.

The paper's operational evidence (Figure 5's latency histogram, the admin
profiling one datastore across four simultaneous roles) requires one
coherent instrumentation substrate.  This package provides it:

* :mod:`.metrics` — a thread-safe registry of counters, gauges, and
  histograms (p50/p95/p99) with a text exposition format for ``/metrics``;
* :mod:`.tracing` — hierarchical spans with a context-local current-span
  stack, so one trace covers firework launch → SCF iterations → docstore
  writes → builder runs → API queries;
* :mod:`.logging` — structured logging through a shared redacting
  formatter that scrubs credentials.

The docstore feeds all three automatically (opcounters, the MongoDB-style
profiler's ``system.profile`` collection, and per-op child spans); the wire
protocol, workflow engine, MapReduce executors, builders, and HTTP front
end layer their own signals on top.
"""

from .logging import RedactingFormatter, get_logger, log_event, redact
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    set_registry,
)
from .tracing import Span, clear_traces, current_span, recent_traces, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "percentile",
    "Span",
    "span",
    "current_span",
    "recent_traces",
    "clear_traces",
    "RedactingFormatter",
    "get_logger",
    "log_event",
    "redact",
]
