"""``repro.obs`` — the unified observability layer.

The paper's operational evidence (Figure 5's latency histogram, the admin
profiling one datastore across four simultaneous roles) requires one
coherent instrumentation substrate.  This package provides it:

* :mod:`.metrics` — a thread-safe registry of counters, gauges, and
  histograms (p50/p95/p99) with a text exposition format for ``/metrics``;
* :mod:`.tracing` — hierarchical spans with a context-local current-span
  stack, so one trace covers firework launch → SCF iterations → docstore
  writes → builder runs → API queries; spans carry globally-unique
  trace/span ids and a ``"$trace"`` wire context, so one trace also
  stitches client → proxy → server → per-shard fan-out across processes;
* :mod:`.logging` — structured logging through a shared redacting
  formatter that scrubs credentials;
* :mod:`.provenance` — the workflow provenance ledger: walks the
  ``provenance`` subdocuments stamped by the launcher and the builders
  into an exportable DAG (``provenance_graph``).

The docstore feeds all three automatically (opcounters, the MongoDB-style
profiler's ``system.profile`` collection, and per-op child spans); the wire
protocol, workflow engine, MapReduce executors, builders, and HTTP front
end layer their own signals on top.

Fleet-health tooling builds on that substrate:

* :mod:`.health` — mongostat/mongotop-style interval samplers plus the
  :class:`HealthMonitor` rolling replication lag, shard balance, and
  changestream backlog gauges into one ``GET /health`` report;
* :mod:`.slo` — threshold and error-budget burn-rate rules evaluated by
  an :class:`SLOEngine` that opens/resolves alert documents in a capped
  ``system.alerts`` history collection;
* :mod:`.advisor` — the slow-query index advisor mining ``system.profile``
  COLLSCAN shapes into verified ``create_index`` recommendations;
* :mod:`.warehouse` — the self-hosted telemetry warehouse: metrics
  history with incremental rollups, the access-log warehouse, tail-sampled
  traces, and a persisted profile mirror, all stored in a ``telemetry``
  database with TTL retention — the datastore dogfooding itself;
* :mod:`.profiler` — the continuous wall-clock sampling profiler: a
  daemon sampling every thread's stack via ``sys._current_frames`` into
  bounded flamegraph-ready folded stacks, shared process-wide so the wire
  server, ``/debug`` endpoints, CLI, and warehouse see one profile;
* :mod:`.flight` — the out-of-band flight recorder: FTDC-style snapshots
  (``server_status``, metric deltas, process stats) into a size-capped
  on-disk ring of delta-compressed CRC-checked chunks, a stall watchdog
  probing lock/journal/wire liveness, and crash forensics that turn an
  unclean shutdown into a ``crash_report.json``;
* :mod:`.procstats` — ``/proc``-derived process stats (RSS, CPU seconds,
  fds, threads) feeding ``server_status()["process"]`` and the recorder.
"""

from .logging import RedactingFormatter, get_logger, log_event, redact
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    set_registry,
)
from .tracing import (
    Span,
    active_span,
    add_tail_sampler,
    clear_traces,
    current_span,
    export_traces,
    format_trace,
    recent_traces,
    remote_span,
    remove_tail_sampler,
    span,
    stitch_spans,
    trace_context,
)
from .provenance import format_provenance, provenance_graph
from .health import (
    HealthMonitor,
    ServerStatusSampler,
    TopSampler,
    format_stat_table,
    format_top_table,
)
from .slo import (
    AlertHistory,
    BurnRateRule,
    LatencyWindowSource,
    SLOEngine,
    ThresholdRule,
    default_rules,
)
from .advisor import IndexAdvisor, IndexRecommendation
from .profiler import (
    SamplingProfiler,
    get_profiler,
    start_profiler,
    stop_profiler,
)
from .procstats import process_status
from .flight import (
    FlightRecorder,
    StallWatchdog,
    build_crash_report,
    decode_ring,
    detect_unclean_shutdown,
    enable_fault_handler,
    generate_crash_report,
    get_flight_recorder,
    read_crash_report,
    scan_anomalies,
    set_flight_recorder,
    start_flight_recorder,
    stop_flight_recorder,
)
from .warehouse import (
    MetricsHistoryRecorder,
    MetricsRollupBuilder,
    TailSampler,
    TelemetryWarehouse,
    labels_key,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "percentile",
    "Span",
    "span",
    "remote_span",
    "active_span",
    "current_span",
    "trace_context",
    "recent_traces",
    "clear_traces",
    "export_traces",
    "stitch_spans",
    "format_trace",
    "provenance_graph",
    "format_provenance",
    "RedactingFormatter",
    "get_logger",
    "log_event",
    "redact",
    "ServerStatusSampler",
    "TopSampler",
    "HealthMonitor",
    "format_stat_table",
    "format_top_table",
    "ThresholdRule",
    "BurnRateRule",
    "LatencyWindowSource",
    "AlertHistory",
    "SLOEngine",
    "default_rules",
    "IndexAdvisor",
    "IndexRecommendation",
    "add_tail_sampler",
    "remove_tail_sampler",
    "TelemetryWarehouse",
    "MetricsHistoryRecorder",
    "MetricsRollupBuilder",
    "TailSampler",
    "labels_key",
    "SamplingProfiler",
    "get_profiler",
    "start_profiler",
    "stop_profiler",
    "process_status",
    "FlightRecorder",
    "StallWatchdog",
    "get_flight_recorder",
    "set_flight_recorder",
    "start_flight_recorder",
    "stop_flight_recorder",
    "decode_ring",
    "scan_anomalies",
    "enable_fault_handler",
    "detect_unclean_shutdown",
    "build_crash_report",
    "generate_crash_report",
    "read_crash_report",
]
