"""Hierarchical tracing spans with a context-local current-span stack.

One trace follows a unit of work across every layer the paper's datastore
serves simultaneously: a firework launch opens a root span, the SCF loop
and the analyzer open children, and every docstore operation executed while
a span is current attaches itself as a timed child (see
``Database._observe_op``).  The result is a tree like::

    firework.launch (fw_id=3) 812.4ms
      docstore.findAndModify (engines) 0.3ms
      scf.run (n_iterations=24) 801.1ms
      docstore.insert (tasks) 0.4ms
      docstore.update (engines) 0.2ms

Spans use :mod:`contextvars`, so concurrent rockets in different threads
each get their own stack.  The context manager is exception-safe: a raise
inside the block marks the span ``error`` and still pops it.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "span",
    "current_span",
    "recent_traces",
    "clear_traces",
]

#: Finished root spans kept for inspection (oldest evicted).
TRACE_BUFFER = 256

_ids = itertools.count(1)
_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)
_finished: Deque["Span"] = deque(maxlen=TRACE_BUFFER)
_finished_lock = threading.Lock()


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "span_id", "trace_id", "parent", "children",
                 "attributes", "start_s", "end_s", "status", "error")

    def __init__(self, name: str, parent: Optional["Span"] = None,
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.span_id = next(_ids)
        self.trace_id = parent.trace_id if parent is not None else self.span_id
        self.parent = parent
        self.children: List[Span] = []
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # -- lifecycle ------------------------------------------------------

    def finish(self) -> "Span":
        if self.end_s is None:
            self.end_s = time.perf_counter()
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1e3

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def record(self, name: str, duration_ms: float = 0.0,
               **attributes: Any) -> "Span":
        """Attach an already-measured child (the docstore-op hook path)."""
        child = Span(name, parent=self, attributes=attributes)
        child.start_s = self.start_s  # cosmetic; duration is authoritative
        child.end_s = child.start_s + duration_ms / 1e3
        self.children.append(child)
        return child

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name_prefix: str) -> List["Span"]:
        """Descendant spans (and self) whose name starts with the prefix."""
        return [s for s in self.walk() if s.name.startswith(name_prefix)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ms:.2f}ms, "
                f"{self.status}, children={len(self.children)})")


def current_span() -> Optional[Span]:
    """The innermost open span in this context, or None."""
    return _current.get()


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span]:
    """Open a span as the current one; exception-safe; nests naturally."""
    parent = _current.get()
    s = Span(name, parent=parent, attributes=attributes)
    if parent is not None:
        parent.children.append(s)
    token = _current.set(s)
    try:
        yield s
    except BaseException as exc:
        s.status = "error"
        s.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        s.finish()
        _current.reset(token)
        if parent is None:
            with _finished_lock:
                _finished.append(s)
        _record_span_metric(s)


def _record_span_metric(s: Span) -> None:
    from .metrics import get_registry

    get_registry().histogram(
        "repro_span_millis", "span durations by name"
    ).observe(s.duration_ms, name=s.name)


def recent_traces(n: Optional[int] = None) -> List[Span]:
    """Most recent finished root spans, newest last."""
    with _finished_lock:
        traces = list(_finished)
    return traces if n is None else traces[-n:]


def clear_traces() -> None:
    with _finished_lock:
        _finished.clear()
