"""Hierarchical tracing spans with a context-local current-span stack.

One trace follows a unit of work across every layer the paper's datastore
serves simultaneously: a firework launch opens a root span, the SCF loop
and the analyzer open children, and every docstore operation executed while
a span is current attaches itself as a timed child (see
``Database._observe_op``).  The result is a tree like::

    firework.launch (fw_id=3) 812.4ms
      docstore.findAndModify (engines) 0.3ms
      scf.run (n_iterations=24) 801.1ms
      docstore.insert (tasks) 0.4ms
      docstore.update (engines) 0.2ms

Traces also cross process boundaries: span and trace ids are globally
unique hex strings, :func:`trace_context` packages the current position as
the ``"$trace"`` wire field, and :func:`remote_span` reconstructs the
remote parent on the receiving side (``DatastoreServer.dispatch``, the
proxy).  :func:`export_traces` dumps each process's finished-trace buffer
as JSON-ready dicts; :func:`stitch_spans` merges buffers from several
processes back into one tree and :func:`format_trace` renders it.

Spans use :mod:`contextvars`, so concurrent rockets in different threads
each get their own stack.  The context manager is exception-safe: a raise
inside the block marks the span ``error`` and still pops it.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Union

__all__ = [
    "Span",
    "span",
    "remote_span",
    "active_span",
    "current_span",
    "trace_context",
    "recent_traces",
    "clear_traces",
    "export_traces",
    "stitch_spans",
    "format_trace",
    "add_tail_sampler",
    "remove_tail_sampler",
]

#: Finished root spans kept for inspection (oldest evicted).
TRACE_BUFFER = 256

#: Random per-process prefix making span ids unique across a fleet, so
#: traces exported from client, proxy, and server processes can be merged
#: without id collisions.  The counter keeps per-span cost to one next().
_PROCESS_PREFIX = os.urandom(4).hex()
_ids = itertools.count(1)
_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)
_finished: Deque["Span"] = deque(maxlen=TRACE_BUFFER)
_finished_lock = threading.Lock()

#: Tail-sampling hooks called with every finished *root* span.  A sampler
#: (see ``repro.obs.warehouse.TailSampler``) decides after the fact —
#: latency breach, error anywhere in the tree — whether the trace is worth
#: persisting; cheap traces are dropped, which is what makes keeping the
#: interesting 1% affordable.
_tail_samplers: List[Any] = []
_tail_samplers_lock = threading.Lock()


def add_tail_sampler(sampler: Any) -> Any:
    """Register a callable invoked with each finished root span."""
    with _tail_samplers_lock:
        if sampler not in _tail_samplers:
            _tail_samplers.append(sampler)
    return sampler


def remove_tail_sampler(sampler: Any) -> None:
    with _tail_samplers_lock:
        if sampler in _tail_samplers:
            _tail_samplers.remove(sampler)


def _notify_tail_samplers(root: "Span") -> None:
    with _tail_samplers_lock:
        samplers = list(_tail_samplers)
    for sampler in samplers:
        try:
            sampler(root)
        except Exception:  # noqa: BLE001 - sampling must never break work
            pass


def _new_id() -> str:
    return f"{_PROCESS_PREFIX}{next(_ids):08x}"


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "span_id", "trace_id", "parent", "parent_span_id",
                 "children", "attributes", "start_s", "end_s", "status",
                 "error")

    def __init__(self, name: str, parent: Optional["Span"] = None,
                 attributes: Optional[Dict[str, Any]] = None,
                 trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None):
        self.name = name
        self.span_id = _new_id()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        else:
            # A local root: either a brand-new trace, or the continuation
            # of one started in another process (remote_span).
            self.trace_id = trace_id or self.span_id
            self.parent_span_id = parent_span_id
        self.parent = parent
        self.children: List[Span] = []
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    # -- lifecycle ------------------------------------------------------

    def finish(self) -> "Span":
        if self.end_s is None:
            self.end_s = time.perf_counter()
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1e3

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def record(self, name: str, duration_ms: float = 0.0,
               **attributes: Any) -> "Span":
        """Attach an already-measured child (the docstore-op hook path)."""
        child = Span(name, parent=self, attributes=attributes)
        child.start_s = self.start_s  # cosmetic; duration is authoritative
        child.end_s = child.start_s + duration_ms / 1e3
        self.children.append(child)
        return child

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name_prefix: str) -> List["Span"]:
        """Descendant spans (and self) whose name starts with the prefix."""
        return [s for s in self.walk() if s.name.startswith(name_prefix)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ms:.2f}ms, "
                f"{self.status}, children={len(self.children)})")


def current_span() -> Optional[Span]:
    """The innermost open span in this context, or None."""
    return _current.get()


def trace_context() -> Optional[Dict[str, str]]:
    """The current trace position as a wire-portable ``"$trace"`` payload."""
    s = _current.get()
    if s is None:
        return None
    return {"trace_id": s.trace_id, "span_id": s.span_id}


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span]:
    """Open a span as the current one; exception-safe; nests naturally."""
    parent = _current.get()
    s = Span(name, parent=parent, attributes=attributes)
    if parent is not None:
        parent.children.append(s)
    token = _current.set(s)
    try:
        yield s
    except BaseException as exc:
        s.status = "error"
        s.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        s.finish()
        _current.reset(token)
        if parent is None:
            with _finished_lock:
                _finished.append(s)
            _notify_tail_samplers(s)
        _record_span_metric(s)


@contextmanager
def remote_span(name: str, context: Optional[Mapping[str, Any]],
                **attributes: Any) -> Iterator[Span]:
    """Open a span continuing a trace started in another process.

    ``context`` is the ``"$trace"`` payload from the wire request
    (``{"trace_id": ..., "span_id": ...}``).  The span becomes a local
    root carrying the remote trace id, so this process's trace buffer can
    later be stitched under the caller's span by :func:`stitch_spans`.
    With no context (untraced request) — or when a local span is already
    open — this degrades to a plain :func:`span`.
    """
    if not context or _current.get() is not None:
        with span(name, **attributes) as s:
            yield s
        return
    s = Span(name, attributes=attributes,
             trace_id=context.get("trace_id"),
             parent_span_id=context.get("span_id"))
    token = _current.set(s)
    try:
        yield s
    except BaseException as exc:
        s.status = "error"
        s.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        s.finish()
        _current.reset(token)
        with _finished_lock:
            _finished.append(s)
        _notify_tail_samplers(s)
        _record_span_metric(s)


@contextmanager
def active_span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """A child span only when a trace is already active.

    Routers and background machinery (sharding fan-out, replication apply,
    change-stream delivery) call this on every operation; without a current
    span it is a no-op, so untraced workloads do not flood the root-trace
    buffer.
    """
    if _current.get() is None:
        yield None
        return
    with span(name, **attributes) as s:
        yield s


def _record_span_metric(s: Span) -> None:
    from .metrics import get_registry

    get_registry().histogram(
        "repro_span_millis", "span durations by name"
    ).observe(s.duration_ms, name=s.name)


def recent_traces(n: Optional[int] = None) -> List[Span]:
    """Most recent finished root spans, newest last."""
    with _finished_lock:
        traces = list(_finished)
    return traces if n is None else traces[-n:]


def clear_traces() -> None:
    with _finished_lock:
        _finished.clear()


# -- cross-process export & rendering ------------------------------------


def export_traces(trace_id: Optional[str] = None) -> List[dict]:
    """This process's finished root spans as JSON-ready dicts.

    The server exposes this over the wire (``op: "export_traces"``) so an
    operator can pull each process's buffer and stitch one fleet-wide view.
    """
    with _finished_lock:
        roots = list(_finished)
    out = [r.to_dict() for r in roots]
    if trace_id is not None:
        out = [d for d in out if d.get("trace_id") == trace_id]
    return out


def _copy_span_dict(d: Mapping[str, Any]) -> dict:
    out = dict(d)
    out["children"] = [_copy_span_dict(c) for c in d.get("children") or []]
    return out


def _index_spans(d: dict, index: Dict[str, dict]) -> None:
    index[d["span_id"]] = d
    for child in d["children"]:
        _index_spans(child, index)


def stitch_spans(span_dicts: List[Mapping[str, Any]],
                 trace_id: Optional[str] = None) -> List[dict]:
    """Merge exported root spans from several processes into trace trees.

    A local root whose ``parent_span_id`` names a span present in another
    export (the client span that issued the wire request) is grafted under
    it; anything unmatched stays a top-level root.  Duplicate roots (the
    same span arriving via overlapping exports) are kept once.  Inputs are
    copied, not mutated.
    """
    roots = []
    seen_roots = set()
    for d in span_dicts:
        if trace_id is not None and d.get("trace_id") != trace_id:
            continue
        if d.get("span_id") in seen_roots:
            continue
        seen_roots.add(d.get("span_id"))
        roots.append(_copy_span_dict(d))
    index: Dict[str, dict] = {}
    for root in roots:
        _index_spans(root, index)
    stitched: List[dict] = []
    for root in roots:
        parent_id = root.get("parent_span_id")
        if parent_id is not None and parent_id in index:
            index[parent_id]["children"].append(root)
        else:
            stitched.append(root)
    return stitched


def _render_span(node: Mapping[str, Any], prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    attrs = " ".join(
        f"{k}={v}" for k, v in (node.get("attributes") or {}).items()
    )
    status = node.get("status", "ok")
    suffix = "" if status == "ok" else f" [{status}: {node.get('error')}]"
    lines.append(
        f"{prefix}{connector}{node['name']} "
        f"{node.get('duration_ms', 0.0):.2f}ms"
        + (f" {attrs}" if attrs else "") + suffix
    )
    children = node.get("children") or []
    extension = "   " if is_last else "│  "
    for i, child in enumerate(children):
        _render_span(child, prefix + extension, i == len(children) - 1, lines)


TraceLike = Union["Span", Mapping[str, Any]]


def format_trace(trace: Union[TraceLike, List[TraceLike]]) -> str:
    """Render one trace (or a list of exported roots) as a text tree.

    Accepts a live :class:`Span`, a ``to_dict()`` export, or a list of
    either (which is stitched first), and returns lines like::

        trace 8f3a1c0900000001
        └─ tour.remote_query 4.90ms
           └─ client.find 4.61ms db=mp coll=tasks
              └─ proxy.forward 4.05ms op=find
                 └─ wire.find 0.52ms db=mp coll=tasks
    """
    items = trace if isinstance(trace, list) else [trace]
    dicts = [t.to_dict() if isinstance(t, Span) else dict(t) for t in items]
    roots = stitch_spans(dicts)
    lines: List[str] = []
    for root in roots:
        lines.append(f"trace {root.get('trace_id')}")
        _render_span(root, "", True, lines)
    return "\n".join(lines)
