"""Continuous wall-clock sampling profiler.

The paper's single deployment served the FireWorks queue, the builders,
and the public Materials API *simultaneously* (§IV-A) — so the
operational question is "what is the server spending its time on right
now?".  Metrics answer *how much*, traces answer *which request*; this
module answers *where in the code*.

A :class:`SamplingProfiler` runs a daemon thread that snapshots every
thread's stack via ``sys._current_frames()`` at a configurable rate
(default 100 Hz) and folds each stack into the flamegraph-standard
``outer;inner;leaf`` form, counting samples per distinct stack.  Because
it samples wall-clock state rather than tracing calls, overhead is
bounded by ``hz * cost_of_one_pass`` regardless of how hot the profiled
code is — at 100 Hz a pass over a dozen threads costs tens of
microseconds, well under 1% of one core.

Memory is bounded the same way the metrics registry bounds label
cardinality: at most ``max_stacks`` distinct folded stacks are kept and
further novel stacks collapse into the ``__other__`` bucket (the
``truncated`` count in snapshots says how many samples landed there).

Lifecycle is start/stop/snapshot; the module also keeps one
process-global profiler so the wire server, httpd ``/debug`` endpoints,
CLI, and telemetry warehouse all observe the same instance.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SamplingProfiler",
    "get_profiler",
    "start_profiler",
    "stop_profiler",
    "DEFAULT_HZ",
    "MAX_STACKS",
    "OVERFLOW_STACK",
]

#: Default sampling rate.  100 Hz resolves anything that takes >10 ms of
#: wall time while keeping the sampler's own CPU share well under 1%.
DEFAULT_HZ = 100.0

#: Distinct folded stacks kept before novel stacks collapse into
#: :data:`OVERFLOW_STACK` — mirrors ``MAX_LABEL_SETS`` in
#: :mod:`repro.obs.metrics`.
MAX_STACKS = 512

#: Bucket that absorbs samples once :data:`MAX_STACKS` is reached.
OVERFLOW_STACK = "__other__"

#: Frames kept per stack (outermost frames beyond this are dropped so one
#: deeply recursive thread cannot produce megabyte folded lines).
MAX_DEPTH = 64


# Code objects are immutable and long-lived, so their labels are computed
# once and cached — the sampling pass holds the GIL while it walks frames,
# and shaving the per-frame string work directly shrinks the pause each
# pass injects into whatever thread it interrupts.
_label_cache: Dict[Any, str] = {}


def _frame_label(frame: Any) -> str:
    """``file:function`` label for one frame, short enough to fold."""
    code = frame.f_code
    label = _label_cache.get(code)
    if label is None:
        base = os.path.basename(code.co_filename)
        if base.endswith(".py"):
            base = base[:-3]
        label = f"{base}:{code.co_name}"
        if len(_label_cache) < 65536:  # bound pathological code churn
            _label_cache[code] = label
    return label


def fold_stack(frame: Any, max_depth: int = MAX_DEPTH) -> str:
    """Fold a frame chain into ``outer;inner;leaf`` flamegraph form."""
    labels: List[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Wall-clock stack sampler with bounded folded-stack aggregation."""

    def __init__(self, hz: float = DEFAULT_HZ, max_stacks: int = MAX_STACKS,
                 max_depth: int = MAX_DEPTH):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self.max_depth = int(max_depth)
        self._lock = threading.Lock()
        self._stacks: Dict[str, int] = {}
        self._samples = 0
        self._passes = 0
        self._truncated = 0
        self._threads_seen = 0
        self._overhead_s = 0.0
        self._active_s = 0.0
        self._started_at: Optional[float] = None
        self._started_wall: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling ---------------------------------------------------------

    def _ingest(self, stack: str, count: int = 1) -> None:
        """Record ``count`` samples of one folded stack (caller holds no
        locks); novel stacks beyond ``max_stacks`` land in ``__other__``."""
        with self._lock:
            if stack not in self._stacks and len(self._stacks) >= self.max_stacks:
                self._truncated += count
                stack = OVERFLOW_STACK
            self._stacks[stack] = self._stacks.get(stack, 0) + count
            self._samples += count

    def sample_once(self) -> int:
        """Take one sampling pass over every live thread's stack.

        Public so tests (and the tour) can sample deterministically
        without running the daemon.  Skips the calling thread — the
        sampler should never profile itself.  Returns threads sampled.
        """
        t0 = time.perf_counter()
        me = threading.get_ident()
        frames = sys._current_frames()
        sampled = 0
        for ident, frame in frames.items():
            if ident == me:
                continue
            self._ingest(fold_stack(frame, self.max_depth))
            sampled += 1
        with self._lock:
            self._passes += 1
            self._threads_seen = sampled
            self._overhead_s += time.perf_counter() - t0
        return sampled

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop_event.wait(interval):
            self.sample_once()

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampling daemon (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event = threading.Event()
            self._started_at = time.perf_counter()
            self._started_wall = time.time()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling and return a final :meth:`snapshot`.

        The aggregated stacks survive the stop, so a stopped profiler can
        still be snapshotted/rendered until :meth:`reset` or restart.
        """
        with self._lock:
            thread = self._thread
            self._thread = None
            if self._started_at is not None:
                self._active_s += time.perf_counter() - self._started_at
                self._started_at = None
        self._stop_event.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        return self.snapshot()

    def reset(self) -> None:
        """Drop every aggregated sample (the daemon keeps running)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._passes = 0
            self._truncated = 0
            self._overhead_s = 0.0
            self._active_s = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()

    # -- reporting --------------------------------------------------------

    def _duration_s(self) -> float:
        active = self._active_s
        if self._started_at is not None:
            active += time.perf_counter() - self._started_at
        return active

    def folded(self, limit: int = 0) -> List[str]:
        """Flamegraph-ready ``stack count`` lines, hottest first.

        Feed straight to ``flamegraph.pl`` / speedscope: one line per
        distinct stack, frames joined by ``;``, sample count last.
        """
        with self._lock:
            items = sorted(self._stacks.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        if limit:
            items = items[:limit]
        return [f"{stack} {count}" for stack, count in items]

    def top_functions(self, limit: int = 10) -> List[Tuple[str, int]]:
        """Leaf frames ranked by self-sample count."""
        totals: Dict[str, int] = {}
        with self._lock:
            for stack, count in self._stacks.items():
                leaf = stack.rsplit(";", 1)[-1]
                totals[leaf] = totals.get(leaf, 0) + count
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def snapshot(self, limit: int = 0) -> dict:
        """Aggregated profile state as one JSON-friendly document."""
        with self._lock:
            running = self._thread is not None and self._thread.is_alive()
            duration = self._duration_s()
            out = {
                "running": running,
                "hz": self.hz,
                "samples": self._samples,
                "passes": self._passes,
                "threads": self._threads_seen,
                "distinct_stacks": len(self._stacks),
                "truncated": self._truncated,
                "max_stacks": self.max_stacks,
                "duration_s": duration,
                "started_at": self._started_wall,
                "overhead_ms": self._overhead_s * 1e3,
                "achieved_hz": (self._passes / duration) if duration > 0 else 0.0,
            }
        out["stacks"] = [
            {"stack": line.rsplit(" ", 1)[0],
             "count": int(line.rsplit(" ", 1)[1])}
            for line in self.folded(limit=limit)
        ]
        out["top"] = [
            {"function": fn, "count": count}
            for fn, count in self.top_functions()
        ]
        return out


# -- the process-global profiler ------------------------------------------
#
# The wire server, httpd /debug endpoints, CLI, and warehouse all talk to
# one shared instance, so "start profiling over the wire, pull the
# flamegraph over HTTP" works without plumbing an object through every
# constructor.

_global_lock = threading.Lock()
_global_profiler: Optional[SamplingProfiler] = None


def get_profiler() -> Optional[SamplingProfiler]:
    """The process-global profiler, or ``None`` if never started."""
    return _global_profiler


def start_profiler(hz: float = DEFAULT_HZ,
                   max_stacks: int = MAX_STACKS) -> SamplingProfiler:
    """Start (or return) the process-global sampling profiler.

    A fresh call while one is already running returns the running
    instance unchanged; stop it first to change the rate.
    """
    global _global_profiler
    with _global_lock:
        profiler = _global_profiler
        if profiler is not None and profiler.running:
            return profiler
        profiler = SamplingProfiler(hz=hz, max_stacks=max_stacks)
        _global_profiler = profiler
    return profiler.start()


def stop_profiler() -> Optional[dict]:
    """Stop the process-global profiler; returns its final snapshot."""
    with _global_lock:
        profiler = _global_profiler
    if profiler is None:
        return None
    return profiler.stop()
