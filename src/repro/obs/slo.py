"""SLO engine: threshold and error-budget burn-rate rules with alerting.

AiiDA 1.0 ties daemon health checks to throughput guarantees; the SRE
formulation of the same idea is the *service-level objective*: "99% of
queries answer within 250 ms" plus an error budget (the tolerated 1%) and
a *burn rate* — how fast the budget is being spent over a trailing window.
Burning at rate 1.0 exactly exhausts the budget by the end of the SLO
period; sustained rates above that page someone.

Rules
-----
* :class:`ThresholdRule` — compare one health gauge (see
  :meth:`~repro.obs.health.HealthMonitor.gauges`) against a bound, e.g.
  ``replication_max_lag > 100``.
* :class:`BurnRateRule` — window ``(good, total)`` counts from a
  :class:`LatencyWindowSource` into ``burn_rate =
  bad_fraction / (1 - objective)`` and breach above a burn threshold.

Sources feed from timestamped latency events: the docstore profiler's
``system.profile`` (:meth:`LatencyWindowSource.from_profile`) or the
datastore proxy's forward log (:meth:`LatencyWindowSource.from_proxy`),
which includes any injected ``forward_latency_s`` — the failure-injection
hook the SLO tests lean on.

Alert lifecycle
---------------
:class:`SLOEngine.evaluate` opens an alert document in the alert history
collection (``system.alerts`` — exempt from observation like every
``system.*`` namespace) on the first breaching evaluation, updates
``last_seen``/``evaluations`` while the breach persists, and flips the
document to ``state: "resolved"`` when the rule recovers.  ``GET /alerts``
on the Materials API httpd serves the history.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .metrics import get_registry

__all__ = [
    "ThresholdRule",
    "BurnRateRule",
    "LatencyWindowSource",
    "AlertHistory",
    "SLOEngine",
    "default_rules",
]

#: Alert documents kept in the history collection before eviction.
ALERT_CAP = 2048

_SEVERITY_RANK = {"info": 0, "warn": 1, "critical": 2}

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


class ThresholdRule:
    """Breach when a named health gauge crosses a bound.

    A missing gauge is not a breach — a deployment with no replica set
    simply has no ``replication_max_lag`` to judge.
    """

    def __init__(self, name: str, gauge: str, threshold: float,
                 op: str = ">", severity: str = "warn",
                 description: str = ""):
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {op!r}")
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}")
        self.name = name
        self.gauge = gauge
        self.threshold = float(threshold)
        self.op = op
        self.severity = severity
        self.description = description

    def evaluate(self, gauges: Dict[str, float],
                 now: float) -> Optional[dict]:
        value = gauges.get(self.gauge)
        if value is None:
            return None
        if not _COMPARATORS[self.op](value, self.threshold):
            return None
        return {
            "value": value,
            "threshold": self.threshold,
            "detail": {"gauge": self.gauge, "op": self.op},
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name, "type": "threshold", "gauge": self.gauge,
            "op": self.op, "threshold": self.threshold,
            "severity": self.severity,
        }


class LatencyWindowSource:
    """``(good, total)`` counts over timestamped latency events.

    ``events_fn`` yields ``(wall_ts, millis)`` pairs; an event is *good*
    when its latency is at or under ``threshold_ms``.
    """

    def __init__(self, threshold_ms: float,
                 events_fn: Callable[[], Iterable[Tuple[float, float]]],
                 description: str = ""):
        self.threshold_ms = float(threshold_ms)
        self.events_fn = events_fn
        self.description = description

    @classmethod
    def from_profile(cls, db: Any, threshold_ms: float,
                     ops: Optional[Iterable[str]] = None
                     ) -> "LatencyWindowSource":
        """Window over the docstore profiler's ``system.profile`` entries
        (enable with ``db.set_profiling_level``)."""
        wanted = frozenset(ops) if ops is not None else None

        def events() -> List[Tuple[float, float]]:
            return [
                (e["ts"], e["millis"]) for e in db.profile_log
                if wanted is None or e.get("op") in wanted
            ]

        return cls(threshold_ms, events,
                   description=f"system.profile of {db.name!r}")

    @classmethod
    def from_proxy(cls, proxy: Any,
                   threshold_ms: float) -> "LatencyWindowSource":
        """Window over the datastore proxy's forward timings — injected
        ``forward_latency_s`` shows up here, making the proxy the natural
        latency failure-injection hook for SLO tests."""
        return cls(threshold_ms, proxy.latency_events,
                   description="proxy forward latency")

    @classmethod
    def from_warehouse(cls, access_log: Any, threshold_ms: float,
                       endpoint: Any = None) -> "LatencyWindowSource":
        """Window over the telemetry warehouse's ``telemetry.access``
        records — the persistent counterpart of :meth:`from_profile`,
        so burn-rate evidence survives a server restart.

        ``access_log`` is a :class:`~repro.api.querylog.QueryLog` (or a
        ``TelemetryWarehouse``, whose ``.access`` log is used); pass
        ``endpoint`` (scalar or list) to judge one route's latency only.
        """
        log = getattr(access_log, "access", access_log)

        def events() -> List[Tuple[float, float]]:
            return [
                (rec["ts"], rec.get("duration_ms", 0.0))
                for rec in log.query_access_log(endpoint=endpoint)
            ]

        scope = f" endpoint={endpoint}" if endpoint is not None else ""
        return cls(threshold_ms, events,
                   description=f"telemetry.access warehouse{scope}")

    def window_counts(self, t0: float, t1: float) -> Tuple[int, int]:
        good = total = 0
        for ts, millis in self.events_fn():
            if t0 <= ts <= t1:
                total += 1
                if millis <= self.threshold_ms:
                    good += 1
        return good, total


class BurnRateRule:
    """Breach when the error budget burns faster than ``burn_threshold``.

    Over the trailing ``window_s``: ``bad_fraction = 1 - good/total`` and
    ``burn_rate = bad_fraction / (1 - objective)``.  No traffic in the
    window means nothing to judge (no breach), matching how burn-rate
    alerts behave on idle services.
    """

    def __init__(self, name: str, source: LatencyWindowSource,
                 objective: float = 0.99, window_s: float = 300.0,
                 burn_threshold: float = 1.0, severity: str = "critical",
                 description: str = ""):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}")
        self.name = name
        self.source = source
        self.objective = objective
        self.window_s = float(window_s)
        self.burn_threshold = float(burn_threshold)
        self.severity = severity
        self.description = description

    def evaluate(self, gauges: Dict[str, float],
                 now: float) -> Optional[dict]:
        good, total = self.source.window_counts(now - self.window_s, now)
        if total == 0:
            return None
        bad = total - good
        bad_fraction = bad / total
        budget = 1.0 - self.objective
        burn_rate = bad_fraction / budget
        get_registry().gauge(
            "repro_slo_burn_rate", "error-budget burn rate per rule"
        ).set(burn_rate, rule=self.name)
        if burn_rate <= self.burn_threshold:
            return None
        return {
            "value": burn_rate,
            "threshold": self.burn_threshold,
            "detail": {
                "window_s": self.window_s,
                "good": good,
                "bad": bad,
                "total": total,
                "bad_fraction": bad_fraction,
                "objective": self.objective,
                "budget": budget,
                "burn_rate": burn_rate,
                "latency_threshold_ms": self.source.threshold_ms,
            },
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name, "type": "burn_rate",
            "objective": self.objective, "window_s": self.window_s,
            "burn_threshold": self.burn_threshold,
            "severity": self.severity,
        }


class AlertHistory:
    """Alert documents in a capped history collection."""

    def __init__(self, db: Any, collection: str = "system.alerts",
                 cap: int = ALERT_CAP):
        self.db = db
        self.collection_name = collection
        self.cap = cap

    @property
    def collection(self) -> Any:
        return self.db.get_collection(self.collection_name)

    def open(self, rule: Any, breach: dict, now: float) -> dict:
        doc = {
            "rule": rule.name,
            "severity": rule.severity,
            "state": "open",
            "opened_at": now,
            "last_seen": now,
            "evaluations": 1,
            "value": breach["value"],
            "threshold": breach["threshold"],
            "detail": breach.get("detail", {}),
        }
        coll = self.collection
        coll.insert_one(doc)
        while coll.count_documents() > self.cap:
            oldest = coll.find_one_and_delete({}, sort=[("opened_at", 1)])
            if oldest is None:
                break
        get_registry().counter(
            "repro_slo_alerts_total", "SLO alerts opened"
        ).inc(1, rule=rule.name, severity=rule.severity)
        return doc

    def touch(self, rule_name: str, breach: dict, now: float) -> None:
        self.collection.update_one(
            {"rule": rule_name, "state": "open"},
            {"$set": {"last_seen": now, "value": breach["value"],
                      "detail": breach.get("detail", {})},
             "$inc": {"evaluations": 1}},
        )

    def resolve(self, rule_name: str, now: float) -> None:
        self.collection.update_one(
            {"rule": rule_name, "state": "open"},
            {"$set": {"state": "resolved", "resolved_at": now}},
        )

    def open_alerts(self) -> List[dict]:
        return self.collection.find({"state": "open"}).sort(
            [("opened_at", -1)]).to_list()

    def recent(self, n: int = 50) -> List[dict]:
        return self.collection.find({}).sort(
            [("opened_at", -1)]).limit(n).to_list()


class SLOEngine:
    """Evaluates a rule set and maintains the alert lifecycle."""

    def __init__(self, db: Any, rules: Optional[List[Any]] = None,
                 collection: str = "system.alerts"):
        self.history = AlertHistory(db, collection)
        self._rules: List[Any] = list(rules or [])
        self._active: Dict[str, float] = {}  # rule name -> opened_at
        # Adopt alerts already open in the history collection: a
        # warehouse-backed engine reopening after a restart must keep
        # touching/resolving the persisted documents rather than opening
        # duplicates.  In-memory deployments start from an empty
        # collection, so this is a no-op there.
        for alert in self.history.open_alerts():
            self._active.setdefault(alert["rule"], alert.get("opened_at", 0.0))

    def add_rule(self, rule: Any) -> "SLOEngine":
        self._rules.append(rule)
        return self

    @property
    def rules(self) -> List[Any]:
        return list(self._rules)

    def evaluate(self, gauges: Optional[Dict[str, float]] = None,
                 now: Optional[float] = None) -> List[dict]:
        """Run every rule; returns alert documents opened *this* pass."""
        now = time.time() if now is None else now
        gauges = gauges or {}
        opened: List[dict] = []
        for rule in self._rules:
            breach = rule.evaluate(gauges, now)
            if breach is not None:
                if rule.name in self._active:
                    self.history.touch(rule.name, breach, now)
                else:
                    opened.append(self.history.open(rule, breach, now))
                    self._active[rule.name] = now
            elif rule.name in self._active:
                self.history.resolve(rule.name, now)
                del self._active[rule.name]
        return opened

    def status(self) -> str:
        """``green`` | ``warn`` | ``critical`` from currently open alerts."""
        worst = -1
        for alert in self.history.open_alerts():
            worst = max(worst, _SEVERITY_RANK.get(alert["severity"], 1))
        if worst >= _SEVERITY_RANK["critical"]:
            return "critical"
        if worst >= _SEVERITY_RANK["warn"]:
            return "warn"
        return "green"

    def open_alerts(self) -> List[dict]:
        return self.history.open_alerts()

    def recent_alerts(self, n: int = 50) -> List[dict]:
        return self.history.recent(n)

    def describe(self) -> List[dict]:
        """The rule set in its serializable form (documented format)."""
        return [r.to_dict() for r in self._rules]


def default_rules(db: Any) -> List[Any]:
    """The stock rule set a bare ``GET /health`` endpoint evaluates.

    Topology thresholds only fire when the matching component is watched
    (their gauges are absent otherwise), and the latency burn rule only
    fires once the database records profile entries — a freshly populated
    store is green by construction.
    """
    return [
        ThresholdRule(
            "replication-lag", gauge="replication_max_lag",
            threshold=100.0, op=">", severity="warn",
            description="a secondary is >100 oplog entries behind",
        ),
        ThresholdRule(
            "changestream-backlog",
            gauge="changestream_max_backlog_fraction",
            threshold=0.5, op=">", severity="warn",
            description="a change stream buffer is more than half full",
        ),
        ThresholdRule(
            "shard-imbalance", gauge="shard_max_balance_factor",
            threshold=2.0, op=">", severity="warn",
            description="the hottest shard holds 2x the mean",
        ),
        BurnRateRule(
            "query-latency-burn",
            LatencyWindowSource.from_profile(db, threshold_ms=250.0),
            objective=0.99, window_s=300.0, burn_threshold=1.0,
            severity="critical",
            description="99% of profiled ops under 250ms, 5m window",
        ),
    ]
