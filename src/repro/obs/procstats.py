"""Process-level resource stats from ``/proc`` (with a portable fallback).

The paper's deployment ran the datastore, the builders, and the public
API inside one shared HPC allocation (§IV-A), where the questions that
page an operator are process-level: is RSS creeping toward the cgroup
limit, is the fd table filling up, is system CPU eating the walltime?
MongoDB answers these in ``serverStatus.mem`` / ``extra_info``; this
module is our equivalent, consumed by ``server_status()`` and captured
every tick by the flight recorder.

On Linux the numbers come straight from ``/proc/self`` — no subprocess,
no dependency, one short read per file.  Anywhere else (or when ``/proc``
is unreadable) the fallback uses :mod:`resource` and
:func:`threading.active_count`, reporting ``source: "fallback"`` so
consumers know RSS is a high-water mark rather than current.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["process_status"]

#: Wall-clock time this module was first imported — a faithful enough
#: process start for uptime reporting (the import happens during startup).
_PROCESS_START = time.time()


def _read_proc(proc_dir: str) -> Dict[str, Any]:
    """Raw numbers from ``{proc_dir}/stat`` + ``status`` + ``fd``."""
    out: Dict[str, Any] = {}
    with open(os.path.join(proc_dir, "stat"), "r", encoding="ascii") as fh:
        stat = fh.read()
    # The comm field (2) may contain spaces/parens; everything after the
    # *last* ')' is fixed-position: state utime=14 stime=15 overall, which
    # lands at split indexes 11 and 12 of the remainder.
    rest = stat.rsplit(")", 1)[1].split()
    clk = os.sysconf("SC_CLK_TCK") or 100
    out["user_cpu_s"] = int(rest[11]) / clk
    out["sys_cpu_s"] = int(rest[12]) / clk
    with open(os.path.join(proc_dir, "status"), "r", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                out["rss_bytes"] = int(line.split()[1]) * 1024
            elif line.startswith("Threads:"):
                out["threads"] = int(line.split()[1])
    try:
        out["open_fds"] = len(os.listdir(os.path.join(proc_dir, "fd")))
    except OSError:
        pass
    return out


def _read_fallback() -> Dict[str, Any]:
    """Portable approximation via ``getrusage`` (macOS, BSD, anywhere)."""
    out: Dict[str, Any] = {"threads": threading.active_count()}
    try:
        import resource
        ru = resource.getrusage(resource.RUSAGE_SELF)
        out["user_cpu_s"] = ru.ru_utime
        out["sys_cpu_s"] = ru.ru_stime
        # ru_maxrss is bytes on macOS, KiB elsewhere — and a lifetime
        # high-water mark either way, not the current resident size.
        scale = 1 if sys.platform == "darwin" else 1024
        out["rss_bytes"] = int(ru.ru_maxrss) * scale
    except Exception:  # no resource module (unlikely) — report what we can
        pass
    return out


def process_status(proc_dir: Optional[str] = "/proc/self") -> Dict[str, Any]:
    """One JSON-friendly snapshot of this process's resource usage.

    Keys: ``pid``, ``uptime_s``, ``rss_bytes``, ``user_cpu_s``,
    ``sys_cpu_s``, ``open_fds``, ``threads``, ``source`` (``"proc"`` or
    ``"fallback"``).  Missing values are ``None`` rather than absent so
    delta encoding sees a stable shape.
    """
    out: Dict[str, Any] = {
        "pid": os.getpid(),
        "uptime_s": time.time() - _PROCESS_START,
        "rss_bytes": None,
        "user_cpu_s": None,
        "sys_cpu_s": None,
        "open_fds": None,
        "threads": threading.active_count(),
        "source": "fallback",
    }
    try:
        if proc_dir is None:
            raise OSError("proc disabled")
        out.update(_read_proc(proc_dir))
        out["source"] = "proc"
    except (OSError, ValueError, IndexError):
        out.update(_read_fallback())
    return out
