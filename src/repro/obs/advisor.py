"""Slow-query index advisor: mine ``system.profile`` into create_index advice.

The Materials Project operators' answer to a slow dashboard was almost
always an index: turn on the profiler, look for COLLSCAN query shapes
burning time, add the matching index, verify with ``explain()``.  This
module automates that loop:

1. Mine the database's ``system.profile`` for full-scan read ops and
   group them by *query shape* (values elided to ``?type`` — the same
   shape function the profiler itself uses), so a thousand
   ``{"material_id": "mp-NNN"}`` lookups collapse into one candidate.
2. For each shape, pick the most selective indexable field by probing
   ``count_documents`` on the example query's values (profiling is
   suspended during the probes so the advisor never pollutes the
   evidence it is mining).
3. Emit :class:`IndexRecommendation` rows ranked by estimated saved
   work — occurrences x (docs examined now - docs examined with the
   index).
4. :meth:`IndexAdvisor.verify` replays the example query through
   ``explain()`` before and after actually creating the index, so every
   recommendation is checkable, not just plausible.

The flip side of "add an index" is "drop the dead ones":
:meth:`IndexAdvisor.unused_indexes` walks ``$indexStats``-style usage
counters (:meth:`~repro.docstore.collection.Collection.index_stats`) for
indexes no query has touched.

Aggregation pipelines get the same treatment via
:meth:`IndexAdvisor.pipeline_recommendations`: the profiler records each
pipeline's ordered stage-name shape (and, for slow runs, per-stage
docs-in/docs-out executionStats), so the advisor can flag pipelines whose
``$match`` runs *after* a ``$group``/``$sort``/``$project`` — or that have
no ``$match`` at all — the "$match-first" signal that fronts the planned
pushdown work (ROADMAP item 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["IndexRecommendation", "IndexAdvisor"]

#: Profile ops the advisor treats as index-improvable reads.
_READ_OPS = frozenset({"find", "findOne", "count", "findAndModify"})

#: Operator conditions an index range scan can serve as a trailing key.
_RANGE_OPS = frozenset({"$gt", "$gte", "$lt", "$lte"})

#: Pipeline stages that do per-document (or worse) work and therefore
#: benefit from an earlier ``$match`` shrinking their input.
_HEAVY_STAGES = frozenset(
    {"$group", "$sort", "$project", "$addFields", "$unwind", "$lookup"}
)


@dataclass
class IndexRecommendation:
    """One concrete ``create_index`` suggestion with its evidence.

    ``keys`` is the full (possibly compound) key pattern; ``field`` stays
    as its first component for pre-compound consumers.
    """

    ns: str
    collection: str
    field: str
    command: str
    occurrences: int
    avg_millis: float
    docs_examined_before: int
    estimated_docs_examined_after: int
    estimated_reduction: float
    example_query: dict = field(default_factory=dict)
    keys: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.keys:
            self.keys = [(self.field, 1)]

    def to_dict(self) -> dict:
        return {
            "ns": self.ns,
            "collection": self.collection,
            "field": self.field,
            "keys": [list(k) for k in self.keys],
            "command": self.command,
            "occurrences": self.occurrences,
            "avg_millis": self.avg_millis,
            "docs_examined_before": self.docs_examined_before,
            "estimated_docs_examined_after":
                self.estimated_docs_examined_after,
            "estimated_reduction": self.estimated_reduction,
            "example_query": self.example_query,
        }


class IndexAdvisor:
    """Mines a database's profiler output for missing-index evidence.

    Parameters
    ----------
    db:
        A local :class:`~repro.docstore.database.Database` with profiling
        enabled (``db.set_profiling_level(2)`` captures everything;
        level 1 captures reads and slow ops).
    min_millis:
        Ignore profile entries faster than this — sub-threshold queries
        are not worth an index's write overhead.
    min_occurrences:
        Require a query shape to appear at least this many times before
        recommending; one-off scans don't justify an index either.
    profile_entries:
        Optional callable yielding the profile documents to mine instead
        of the live ``db.profile_log`` — :meth:`from_warehouse` uses this
        to mine entries persisted in ``telemetry.profile``, which survive
        a restart (the in-memory ``system.profile`` does not).
    """

    def __init__(self, db: Any, min_millis: float = 0.0,
                 min_occurrences: int = 1,
                 profile_entries: Optional[Callable[[], Iterable[dict]]] = None):
        self.db = db
        self.min_millis = min_millis
        self.min_occurrences = min_occurrences
        self._profile_entries = (
            profile_entries if profile_entries is not None
            else lambda: self.db.profile_log
        )

    @classmethod
    def from_warehouse(cls, warehouse: Any, db: Any,
                       min_millis: float = 0.0,
                       min_occurrences: int = 1) -> "IndexAdvisor":
        """An advisor mining the telemetry warehouse's persisted profile
        mirror (``telemetry.profile``) for ``db``'s slow scans.

        Probing and verification still run against the live ``db``; only
        the evidence comes from the warehouse, so recommendations can be
        produced after a restart wiped ``system.profile``.
        """
        return cls(
            db, min_millis=min_millis, min_occurrences=min_occurrences,
            profile_entries=lambda: warehouse.profile_entries(db_name=db.name),
        )

    # -- mining ----------------------------------------------------------

    def analyze(self) -> List[IndexRecommendation]:
        """Group COLLSCAN profile entries by query shape and recommend the
        most selective missing index for each, ranked by estimated saved
        docsExamined across the observed workload."""
        groups = self._collscan_groups()
        recs: List[IndexRecommendation] = []
        for (ns, _shape_key), entries in groups.items():
            if len(entries) < self.min_occurrences:
                continue
            coll_name = ns.split(".", 1)[1] if "." in ns else ns
            coll = self.db.get_collection(coll_name)
            example = entries[-1].get("query") or {}
            eq_fields, range_fields = self._candidate_fields(coll, example)
            if not eq_fields and not range_fields:
                continue
            keys, docs_after = self._compound_keys(
                coll, example, eq_fields, range_fields
            )
            if not keys:
                continue
            docs_before = max(
                e.get("docsExamined", 0) for e in entries
            ) or coll.count_documents()
            if docs_after >= docs_before:
                continue  # the index would not narrow the scan
            avg_millis = sum(e["millis"] for e in entries) / len(entries)
            reduction = (
                (docs_before - docs_after) / docs_before
                if docs_before else 0.0
            )
            if len(keys) == 1 and keys[0][1] == 1:
                command = f'db["{coll_name}"].create_index("{keys[0][0]}")'
            else:
                spec = ", ".join(f'("{f}", {d})' for f, d in keys)
                command = f'db["{coll_name}"].create_index([{spec}])'
            recs.append(IndexRecommendation(
                ns=ns,
                collection=coll_name,
                field=keys[0][0],
                command=command,
                occurrences=len(entries),
                avg_millis=avg_millis,
                docs_examined_before=docs_before,
                estimated_docs_examined_after=docs_after,
                estimated_reduction=reduction,
                example_query=dict(example),
                keys=keys,
            ))
        recs.sort(
            key=lambda r: r.occurrences
            * (r.docs_examined_before - r.estimated_docs_examined_after),
            reverse=True,
        )
        return recs

    def _collscan_groups(self) -> Dict[tuple, List[dict]]:
        # imported lazily: repro.docstore pulls in repro.obs at import
        # time, so the reverse edge must not exist at module scope.
        from ..docstore.ops import query_shape

        groups: Dict[tuple, List[dict]] = {}
        for entry in self._profile_entries():
            if entry.get("op") not in _READ_OPS:
                continue
            if entry.get("planSummary") != "COLLSCAN":
                continue
            if entry.get("millis", 0.0) < self.min_millis:
                continue
            query = entry.get("query") or {}
            if not isinstance(query, dict) or not query:
                continue
            key = (entry["ns"], repr(sorted(query_shape(query).items())))
            groups.setdefault(key, []).append(entry)
        return groups

    @staticmethod
    def _candidate_fields(
        coll: Any, example: dict
    ) -> Tuple[List[str], List[str]]:
        """``(equality_fields, range_fields)`` an index could serve.

        Skips shapes already satisfiable by an existing index prefix
        (first key field matches an equality candidate).
        """
        indexed = {
            info.get("field")
            for info in coll.index_information().values()
        }
        eq_fields, range_fields = [], []
        for fname, cond in example.items():
            if fname.startswith("$") or fname in indexed:
                continue
            if isinstance(cond, dict) and any(
                str(k).startswith("$") for k in cond
            ):
                if all(str(k) in _RANGE_OPS for k in cond):
                    range_fields.append(fname)
                continue  # other operator conditions: not indexable here
            eq_fields.append(fname)
        return eq_fields, range_fields

    def _compound_keys(
        self, coll: Any, example: dict,
        eq_fields: List[str], range_fields: List[str],
    ) -> Tuple[List[Tuple[str, int]], int]:
        """Order candidates into a compound key pattern with its estimate.

        MongoDB's equality-sort-range rule of thumb: equality fields first
        (most selective leading, probed via ``count_documents``), then at
        most one range field last.  The probes run with profiling
        suspended — the advisor must not write new COLLSCAN entries into
        the log it is analyzing.
        """
        saved_level = self.db.get_profiling_level()
        saved_slowms = self.db.slowms
        self.db.set_profiling_level(0)
        try:
            scored = sorted(
                (coll.count_documents({f: example[f]}), f)
                for f in eq_fields
            )
            if scored:
                docs_after = scored[0][0]
            elif range_fields:
                docs_after = coll.count_documents(
                    {range_fields[0]: example[range_fields[0]]}
                )
            else:
                return [], 0
        finally:
            self.db.set_profiling_level(saved_level, saved_slowms)
        keys = [(f, 1) for _count, f in scored]
        if range_fields:
            keys.append((range_fields[0], 1))
        return keys, docs_after

    # -- aggregation pipelines -------------------------------------------

    def pipeline_recommendations(self) -> List[dict]:
        """Mine aggregate profile entries for the ``$match``-first signal.

        The profiler records each pipeline's ordered stage-name shape;
        slow runs additionally carry per-stage executionStats.  Pipelines
        whose first ``$match`` sits *behind* a heavy stage (``$group``,
        ``$sort``, ``$project``, ...) — or that filter nothing at all —
        get a reorder recommendation, ranked by occurrences x avg millis.
        Rows carry ``match_docs_in``/``match_docs_out`` evidence when a
        profiled run recorded stage stats.
        """
        groups: Dict[tuple, List[dict]] = {}
        for entry in self._profile_entries():
            if entry.get("op") != "aggregate":
                continue
            if entry.get("millis", 0.0) < self.min_millis:
                continue
            query = entry.get("query")
            shape = query.get("pipeline") if isinstance(query, dict) else None
            if not isinstance(shape, list) or not shape:
                continue
            key = (entry["ns"], tuple(str(s) for s in shape))
            groups.setdefault(key, []).append(entry)

        out: List[dict] = []
        for (ns, shape), entries in groups.items():
            if len(entries) < self.min_occurrences:
                continue
            names = list(shape)
            suggestion = None
            if "$match" in names:
                ahead = [n for n in names[: names.index("$match")]
                         if n in _HEAVY_STAGES]
                if ahead:
                    suggestion = (
                        f"move $match before {ahead[0]}: filters should run "
                        f"first so later stages see fewer documents"
                    )
            else:
                suggestion = (
                    "pipeline has no $match: every stage processes the full "
                    "collection; lead with a $match if any filter applies"
                )
            if suggestion is None:
                continue
            row = {
                "ns": ns,
                "pipeline": names,
                "occurrences": len(entries),
                "avg_millis": sum(e.get("millis", 0.0)
                                  for e in entries) / len(entries),
                "suggestion": suggestion,
            }
            # Attach $match selectivity evidence from the most recent
            # entry that carried per-stage executionStats.
            for e in reversed(entries):
                stages = e.get("stages")
                if not isinstance(stages, list):
                    continue
                for stage in stages:
                    if stage.get("stage") == "$match":
                        row["match_docs_in"] = stage.get("docs_in")
                        row["match_docs_out"] = stage.get("docs_out")
                        break
                break
            out.append(row)
        out.sort(key=lambda r: -(r["occurrences"] * r["avg_millis"]))
        return out

    # -- verification ----------------------------------------------------

    def verify(self, rec: IndexRecommendation,
               keep: bool = False) -> dict:
        """Create the recommended index and replay the example query
        through ``explain()`` before and after.

        Returns ``{"before", "after", "docs_examined_drop", "kept"}``;
        with ``keep=False`` (the default) the index is dropped again so
        verification is side-effect free.
        """
        coll = self.db.get_collection(rec.collection)
        before = coll.explain(rec.example_query)
        index_name = coll.create_index(rec.keys or rec.field)
        try:
            after = coll.explain(rec.example_query)
        except Exception:
            coll.drop_index(index_name)
            raise
        if not keep:
            coll.drop_index(index_name)
        return {
            "before": before,
            "after": after,
            "docs_examined_drop":
                before["docsExamined"] - after["docsExamined"],
            "kept": keep,
        }

    # -- the drop side ---------------------------------------------------

    def unused_indexes(self) -> List[dict]:
        """Indexes whose usage counters show zero accesses — drop
        candidates, ``$indexStats`` style."""
        out = []
        for coll_name in self.db.list_collection_names():
            if coll_name.startswith("system."):
                continue
            coll = self.db.get_collection(coll_name)
            stats = getattr(coll, "index_stats", None)
            if stats is None:
                continue
            for stat in stats():
                if stat["accesses"]["ops"] == 0:
                    out.append({
                        "ns": f"{self.db.name}.{coll_name}",
                        "collection": coll_name,
                        "name": stat["name"],
                        "field": stat["field"],
                        "key": stat.get("key"),
                        "since": stat["accesses"]["since"],
                    })
        return out
