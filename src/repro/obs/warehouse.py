"""Telemetry warehouse: the observability stack persisted in the datastore.

The paper's operational stance is that a datastore's own telemetry is best
served *by* the datastore — Materials Project runs query logs and usage
analytics through the same MongoDB that serves science.  Everything the
in-memory observability stack (metrics registry, profiler, tracing, SLO
engine) knows evaporates on restart; this module dogfoods the engine by
landing it in real collections in a ``telemetry`` database:

* ``telemetry.metrics`` — :class:`MetricsHistoryRecorder` snapshots the
  registry on an interval: counters as *deltas* since the previous pass,
  gauges and histogram summaries as-is.
* ``telemetry.metrics_rollup`` — :class:`MetricsRollupBuilder` tails the
  raw-points change stream (the :mod:`repro.builders.incremental` pattern)
  and maintains 1-minute and 1-hour min/max/mean/p95 buckets, falling back
  to a full rebuild when the stream overflows.
* ``telemetry.access`` — the :class:`~repro.api.querylog.QueryLog`
  access-log warehouse, written by the QueryEngine, the Materials API
  httpd, and the wire server.
* ``telemetry.traces`` — :class:`TailSampler` keeps only traces whose root
  span breached a latency threshold or whose tree carries an error.
* ``telemetry.profile`` — a persistent mirror of slow ``system.profile``
  entries, so the index advisor can mine evidence across restarts
  (:meth:`~repro.obs.advisor.IndexAdvisor.from_warehouse`).
* ``telemetry.profiles`` — periodic snapshots of the continuous sampling
  profiler (:mod:`repro.obs.profiler`): folded stacks and top functions
  land on every tick while the profiler runs, so flamegraphs survive
  restarts and can be diffed across deploys.
* ``telemetry.alerts`` — the SLO engine's alert history
  (:meth:`TelemetryWarehouse.slo_engine`); open alerts persist and are
  re-adopted after a restart.
* ``telemetry.events`` — operational incidents from the flight recorder's
  stall watchdog and crash forensics (:mod:`repro.obs.flight`): stall
  detections with their thread-stack dumps and post-crash reports, queryable
  long after the on-disk flight ring has rotated past them.

Every collection carries compound query indexes (``(name, ts)``,
``(endpoint, ts)``) so warehouse analytics ride the cost-based planner's
IXSCAN path, and TTL indexes (``create_index(...,
expire_after_seconds=N)``) so the warehouse bounds its own disk use via
the engine's reaper — retention is a datastore feature here, not a cron
job.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry, percentile
from .tracing import Span, add_tail_sampler, remove_tail_sampler

__all__ = [
    "TelemetryWarehouse",
    "MetricsHistoryRecorder",
    "MetricsRollupBuilder",
    "TailSampler",
    "labels_key",
]

#: Default retention windows (seconds) per telemetry collection.
METRICS_TTL_S = 7 * 86400.0
ROLLUP_TTL_S = 30 * 86400.0
ACCESS_TTL_S = 14 * 86400.0
TRACES_TTL_S = 86400.0
PROFILE_TTL_S = 86400.0
PROFILES_TTL_S = 86400.0
EVENTS_TTL_S = 30 * 86400.0

#: Folded stacks persisted per profiler snapshot (hottest first).
PROFILE_SNAPSHOT_STACKS = 50

#: Root spans slower than this are tail-sampled by default.
TRACE_LATENCY_THRESHOLD_MS = 250.0

#: Sampled trace documents kept before FIFO eviction (TTL reaps earlier
#: in a long-running deployment).
TRACE_CAP = 2048

#: Rollup resolutions: label -> bucket width in seconds.
ROLLUP_RESOLUTIONS: Dict[str, float] = {"1m": 60.0, "1h": 3600.0}


def labels_key(labels: Dict[str, Any]) -> str:
    """Canonical string form of a label set (stable grouping key)."""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


class MetricsHistoryRecorder:
    """Periodically lands the metrics registry in ``telemetry.metrics``.

    Counters are recorded as *deltas* since the previous pass (the first
    pass records the accumulated total, i.e. activity since process
    start), so rollups can sum them; gauges record their current value and
    histograms their summary stats with the mean as ``value``.
    """

    def __init__(self, collection: Any,
                 registry: Optional[MetricsRegistry] = None):
        self.collection = collection
        self._registry = registry
        self._prev_counters: Dict[Tuple[str, str], float] = {}
        self._lock = threading.Lock()
        self.collection.create_index([("name", 1), ("ts", 1)])

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def record_once(self, now: Optional[float] = None) -> int:
        """One snapshot pass; returns the number of points written."""
        now = time.time() if now is None else now
        points: List[dict] = []
        with self._lock:
            for metric in self.registry.collect():
                name, kind = metric["name"], metric["kind"]
                if name == "repro_warehouse_metric_points_total":
                    # recording it would change it: every pass would see a
                    # delta from the previous pass and never go idle
                    continue
                for series in metric["series"]:
                    labels = series["labels"]
                    lkey = labels_key(labels)
                    point = {
                        "ts": now,
                        "name": name,
                        "kind": kind,
                        "labels": labels,
                        "labels_key": lkey,
                        "value": series["value"],
                    }
                    if kind == "counter":
                        prev = self._prev_counters.get((name, lkey), 0.0)
                        self._prev_counters[(name, lkey)] = series["value"]
                        delta = series["value"] - prev
                        if delta == 0.0:
                            continue  # idle series: no point, bounded growth
                        point["value"] = delta
                        point["total"] = series["value"]
                    elif kind == "histogram":
                        for stat in ("count", "sum", "p50", "p95", "p99",
                                     "max"):
                            point[stat] = series[stat]
                    points.append(point)
        if points:
            self.collection.insert_many(points)
            get_registry().counter(
                "repro_warehouse_metric_points_total",
                "raw metric points recorded into telemetry.metrics",
            ).inc(len(points))
        return len(points)

    def series(self, name: str, labels: Optional[Dict[str, Any]] = None,
               since: Optional[float] = None, until: Optional[float] = None,
               limit: int = 0) -> List[dict]:
        """Raw points for one metric, time-ascending, via ``(name, ts)``."""
        query: Dict[str, Any] = {"name": name}
        ts_bounds: Dict[str, float] = {}
        if since is not None:
            ts_bounds["$gte"] = float(since)
        if until is not None:
            ts_bounds["$lt"] = float(until)
        if ts_bounds:
            query["ts"] = ts_bounds
        if labels is not None:
            query["labels_key"] = labels_key(labels)
        cursor = self.collection.find(query, {"_id": 0}).sort([("ts", 1)])
        if limit:
            cursor = cursor.limit(int(limit))
        return list(cursor)


class MetricsRollupBuilder:
    """Incrementally downsamples raw metric points into summary buckets.

    Follows the :class:`~repro.builders.incremental.
    IncrementalMaterialsBuilder` pattern: tail the source change stream,
    refresh only the touched ``(name, labels_key, resolution, bucket)``
    groups, and resync from scratch when the stream overflows.  Buckets
    carry ``count/min/max/mean/p95/sum`` over the raw ``value`` field.
    """

    def __init__(self, db: Any, source: str = "metrics",
                 dest: str = "metrics_rollup"):
        self.db = db
        self.source = db[source]
        self.dest = db[dest]
        self.stream = self.source.watch()
        self.full_rebuilds = 0
        self.dest.create_index(
            [("name", 1), ("resolution", 1), ("ts", 1)]
        )

    def process_pending(self) -> dict:
        """Drain buffered point events and refresh the affected buckets."""
        from ..errors import DocstoreError

        try:
            events = self.stream.drain()
        except DocstoreError:
            # Overflow: the stream lost history, resync from scratch.
            self.full_rebuilds += 1
            get_registry().counter(
                "repro_warehouse_rollup_rebuilds_total",
                "rollup-builder resyncs after stream overflow",
            ).inc(1)
            result = self.rebuild()
            return {"mode": "full-rebuild", **result}

        touched: set = set()
        for event in events:
            doc = event.document or {}
            name = doc.get("name")
            ts = doc.get("ts")
            if name is None or ts is None:
                continue
            lkey = doc.get("labels_key", "")
            for res, width in ROLLUP_RESOLUTIONS.items():
                touched.add((name, lkey, res, (ts // width) * width))
        for name, lkey, res, bucket in sorted(touched):
            self._refresh_bucket(name, lkey, res, bucket)
        return {"mode": "incremental", "buckets_refreshed": len(touched)}

    def rebuild(self) -> dict:
        """Full resync: recompute every bucket from the raw points."""
        self.dest.delete_many({})
        touched: set = set()
        for doc in self.source.find({}, {"name": 1, "labels_key": 1, "ts": 1}):
            for res, width in ROLLUP_RESOLUTIONS.items():
                touched.add((
                    doc["name"], doc.get("labels_key", ""), res,
                    (doc["ts"] // width) * width,
                ))
        for name, lkey, res, bucket in sorted(touched):
            self._refresh_bucket(name, lkey, res, bucket)
        return {"buckets_built": len(touched)}

    def _refresh_bucket(self, name: str, lkey: str, res: str,
                        bucket: float) -> None:
        width = ROLLUP_RESOLUTIONS[res]
        raw = list(self.source.find(
            {
                "name": name,
                "labels_key": lkey,
                "ts": {"$gte": bucket, "$lt": bucket + width},
            },
            {"value": 1, "labels": 1},
        ))
        key = {"name": name, "labels_key": lkey,
               "resolution": res, "ts": bucket}
        if not raw:
            self.dest.delete_many(key)
            return
        values = [doc.get("value", 0.0) for doc in raw]
        summary = dict(key)
        summary.update({
            "labels": raw[-1].get("labels", {}),
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "p95": percentile(values, 95),
            "sum": sum(values),
        })
        self.dest.replace_one(key, summary, upsert=True)

    def query(self, name: str, resolution: str = "1m",
              labels: Optional[Dict[str, Any]] = None,
              since: Optional[float] = None,
              until: Optional[float] = None) -> List[dict]:
        """Buckets for one metric, time-ascending, via the compound index."""
        if resolution not in ROLLUP_RESOLUTIONS:
            raise ValueError(f"unknown rollup resolution {resolution!r}")
        query: Dict[str, Any] = {"name": name, "resolution": resolution}
        ts_bounds: Dict[str, float] = {}
        if since is not None:
            ts_bounds["$gte"] = float(since)
        if until is not None:
            ts_bounds["$lt"] = float(until)
        if ts_bounds:
            query["ts"] = ts_bounds
        if labels is not None:
            query["labels_key"] = labels_key(labels)
        return list(self.dest.find(query, {"_id": 0}).sort([("ts", 1)]))


class TailSampler:
    """Persists only the traces worth keeping (tail-based sampling).

    Registered via :func:`~repro.obs.tracing.add_tail_sampler`, the
    sampler sees every finished *root* span and stores the full trace tree
    when the root breached ``latency_threshold_ms`` or any span in the
    tree carries an error — keeping the interesting 1% affordable instead
    of sampling head-first and hoping.
    """

    def __init__(self, collection: Any,
                 latency_threshold_ms: float = TRACE_LATENCY_THRESHOLD_MS,
                 sample_errors: bool = True, cap: int = TRACE_CAP):
        self.collection = collection
        self.latency_threshold_ms = float(latency_threshold_ms)
        self.sample_errors = sample_errors
        self.cap = int(cap)
        self.collection.create_index([("trace_id", 1)])
        self.collection.create_index("ts")

    def _decision(self, root: Span) -> Optional[str]:
        if root.duration_ms >= self.latency_threshold_ms:
            return "slow"
        if self.sample_errors and any(
            s.status == "error" for s in root.walk()
        ):
            return "error"
        return None

    def __call__(self, root: Span) -> Optional[dict]:
        reason = self._decision(root)
        counter = get_registry().counter(
            "repro_obs_traces_sampled_total",
            "tail-sampling decisions on finished root spans",
        )
        if reason is None:
            counter.inc(1, decision="dropped")
            return None
        counter.inc(1, decision="kept")
        doc = {
            "ts": time.time(),
            "trace_id": root.trace_id,
            "name": root.name,
            "duration_ms": root.duration_ms,
            "status": root.status,
            "reason": reason,
            "spans": sum(1 for _ in root.walk()),
            "trace": root.to_dict(),
        }
        self.collection.insert_one(doc)
        while self.collection.count_documents() > self.cap:
            if self.collection.find_one_and_delete(
                {}, sort=[("ts", 1)]
            ) is None:
                break
        return doc

    def install(self) -> "TailSampler":
        add_tail_sampler(self)
        return self

    def uninstall(self) -> None:
        remove_tail_sampler(self)

    def get(self, trace_id: str) -> Optional[dict]:
        """Every sampled root for one trace id (``GET /traces/<id>``)."""
        roots = list(self.collection.find(
            {"trace_id": trace_id}, {"_id": 0}
        ).sort([("ts", 1)]))
        if not roots:
            return None
        return {"trace_id": trace_id, "roots": roots}

    def query(self, min_duration_ms: Optional[float] = None,
              status: Optional[str] = None, limit: int = 50) -> List[dict]:
        """Sampled traces (without the full trees), most recent first."""
        q: Dict[str, Any] = {}
        if min_duration_ms is not None:
            q["duration_ms"] = {"$gte": float(min_duration_ms)}
        if status is not None:
            q["status"] = status
        cursor = self.collection.find(q, {"_id": 0, "trace": 0}).sort(
            [("ts", -1)]
        )
        if limit:
            cursor = cursor.limit(int(limit))
        return list(cursor)


class TelemetryWarehouse:
    """The telemetry database and its recorders, built over a live store.

    ``TelemetryWarehouse(store)`` creates the ``telemetry`` collections
    with their query and TTL indexes and wires up the access log, metrics
    recorder, rollup builder, and tail sampler.  :meth:`tick` runs one
    synchronous recording pass; :meth:`start` runs it on a background
    interval and starts the store's TTL reaper so retention is enforced.
    """

    def __init__(self, store: Any, db_name: str = "telemetry",
                 registry: Optional[MetricsRegistry] = None,
                 metrics_ttl_s: float = METRICS_TTL_S,
                 rollup_ttl_s: float = ROLLUP_TTL_S,
                 access_ttl_s: float = ACCESS_TTL_S,
                 traces_ttl_s: float = TRACES_TTL_S,
                 profile_ttl_s: float = PROFILE_TTL_S,
                 profiles_ttl_s: float = PROFILES_TTL_S,
                 events_ttl_s: float = EVENTS_TTL_S,
                 trace_latency_threshold_ms: float =
                 TRACE_LATENCY_THRESHOLD_MS):
        # Imported lazily: repro.api pulls repro.obs in at import time, so
        # the reverse edge must not exist at module scope.
        from ..api.querylog import QueryLog

        self.store = store
        self.db = store.get_database(db_name)
        self.db["metrics"].create_index(
            "ts", expire_after_seconds=metrics_ttl_s
        )
        self.db["metrics_rollup"].create_index(
            "ts", expire_after_seconds=rollup_ttl_s
        )
        self.db["traces"].create_index(
            "ts", name="ts_ttl", expire_after_seconds=traces_ttl_s
        )
        self.db["profile"].create_index(
            [("db", 1), ("ts", 1)]
        )
        self.db["profile"].create_index(
            "ts", name="ts_ttl", expire_after_seconds=profile_ttl_s
        )
        self.db["profiles"].create_index(
            "ts", name="ts_ttl", expire_after_seconds=profiles_ttl_s
        )
        self.db["events"].create_index([("type", 1), ("ts", 1)])
        self.db["events"].create_index(
            "ts", name="ts_ttl", expire_after_seconds=events_ttl_s
        )
        self.access = QueryLog(
            collection=self.db["access"], ttl_s=access_ttl_s
        )
        self.recorder = MetricsHistoryRecorder(
            self.db["metrics"], registry=registry
        )
        self.rollups = MetricsRollupBuilder(self.db)
        self.tail_sampler = TailSampler(
            self.db["traces"],
            latency_threshold_ms=trace_latency_threshold_ms,
        )
        self._profile_dbs: Dict[str, Any] = {}
        self._profile_cursor: Dict[str, float] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- profile mirroring ------------------------------------------------

    def watch_profile(self, db: Any) -> "TelemetryWarehouse":
        """Mirror ``db``'s new ``system.profile`` entries on every tick."""
        self._profile_dbs[db.name] = db
        return self

    def sync_profile(self, db: Optional[Any] = None) -> int:
        """Copy new profile entries into ``telemetry.profile``; returns
        the number mirrored.  The cursor is the last seen ``ts`` per
        database (strictly-greater matching: same-instant entries arriving
        across two syncs can be skipped, which retention tolerates)."""
        dbs = [db] if db is not None else list(self._profile_dbs.values())
        mirrored = 0
        for source in dbs:
            cursor = self._profile_cursor.get(source.name, float("-inf"))
            fresh = [
                e for e in source.profile_log if e.get("ts", 0.0) > cursor
            ]
            if not fresh:
                continue
            docs = [
                {
                    "db": source.name,
                    "ns": e.get("ns"),
                    "op": e.get("op"),
                    "millis": e.get("millis", 0.0),
                    "ts": e.get("ts", 0.0),
                    "planSummary": e.get("planSummary"),
                    "query": e.get("query"),
                    "docsExamined": e.get("docsExamined", 0),
                    "nreturned": e.get("nreturned", 0),
                }
                for e in fresh
            ]
            self.db["profile"].insert_many(docs)
            self._profile_cursor[source.name] = max(
                e.get("ts", 0.0) for e in fresh
            )
            mirrored += len(docs)
        return mirrored

    def profile_entries(self, db_name: Optional[str] = None) -> List[dict]:
        """Mirrored profile documents (the advisor's warehouse evidence)."""
        query = {"db": db_name} if db_name is not None else {}
        return list(self.db["profile"].find(query, {"_id": 0}).sort(
            [("ts", 1)]
        ))

    # -- profiler snapshots -----------------------------------------------

    def record_profiler_snapshot(self, profiler: Optional[Any] = None,
                                 stacks: int = PROFILE_SNAPSHOT_STACKS,
                                 now: Optional[float] = None) -> int:
        """Persist one sampling-profiler snapshot into
        ``telemetry.profiles``; returns the number of documents written
        (0 when no profiler is running or it has no samples yet).

        Only the hottest ``stacks`` folded stacks are stored — the
        profiler itself already bounds distinct stacks, this bounds the
        per-snapshot document size.
        """
        from .profiler import get_profiler

        if profiler is None:
            profiler = get_profiler()
        if profiler is None or not profiler.running:
            return 0
        snap = profiler.snapshot(limit=stacks)
        if not snap.get("samples"):
            return 0
        doc = {
            "ts": time.time() if now is None else now,
            "hz": snap["hz"],
            "samples": snap["samples"],
            "threads": snap["threads"],
            "distinct_stacks": snap["distinct_stacks"],
            "truncated": snap["truncated"],
            "duration_s": snap["duration_s"],
            "overhead_ms": snap["overhead_ms"],
            "stacks": snap["stacks"],
            "top": snap["top"],
        }
        self.db["profiles"].insert_one(doc)
        get_registry().counter(
            "repro_warehouse_profiler_snapshots_total",
            "sampling-profiler snapshots recorded into telemetry.profiles",
        ).inc(1)
        return 1

    # -- flight-recorder events --------------------------------------------

    def record_flight_event(self, event: dict) -> dict:
        """Land one flight-recorder incident in ``telemetry.events``.

        Usable directly as a :class:`~repro.obs.flight.StallWatchdog`
        ``event_sink``.  Stack dumps are capped so a many-threaded stall
        can't write an unbounded document.
        """
        doc = dict(event)
        doc.setdefault("ts", time.time())
        doc.setdefault("type", "unknown")
        stacks = doc.get("stacks")
        if isinstance(stacks, list) and len(stacks) > 32:
            doc["stacks"] = stacks[:32]
            doc["stacks_truncated"] = len(stacks) - 32
        self.db["events"].insert_one(doc)
        get_registry().counter(
            "repro_warehouse_flight_events_total",
            "flight-recorder incidents recorded into telemetry.events",
        ).inc(1, type=str(doc["type"]))
        return doc

    def flight_events(self, event_type: Optional[str] = None,
                      since: Optional[float] = None,
                      limit: int = 0) -> List[dict]:
        """Recorded flight incidents, time-ascending, via ``(type, ts)``."""
        query: Dict[str, Any] = {}
        if event_type is not None:
            query["type"] = event_type
        if since is not None:
            query["ts"] = {"$gte": float(since)}
        cursor = self.db["events"].find(query, {"_id": 0}).sort([("ts", 1)])
        if limit:
            cursor = cursor.limit(int(limit))
        return list(cursor)

    def profiler_snapshots(self, since: Optional[float] = None,
                           limit: int = 0) -> List[dict]:
        """Persisted profiler snapshots, time-ascending."""
        query: Dict[str, Any] = {}
        if since is not None:
            query["ts"] = {"$gte": float(since)}
        cursor = self.db["profiles"].find(query, {"_id": 0}).sort(
            [("ts", 1)]
        )
        if limit:
            cursor = cursor.limit(int(limit))
        return list(cursor)

    # -- SLO / advisor integration ---------------------------------------

    def latency_source(self, threshold_ms: float,
                       endpoint: Any = None) -> Any:
        """A warehouse-backed SLO latency source (survives restarts)."""
        from .slo import LatencyWindowSource

        return LatencyWindowSource.from_warehouse(
            self.access, threshold_ms, endpoint=endpoint
        )

    def slo_engine(self, rules: Optional[List[Any]] = None) -> Any:
        """An SLO engine whose alert history lives in ``telemetry.alerts``
        — open alerts persist through the journal and are re-adopted on
        construction after a restart."""
        from .slo import SLOEngine

        return SLOEngine(self.db, rules or [], collection="alerts")

    def advisor(self, db: Any, min_millis: float = 0.0,
                min_occurrences: int = 1) -> Any:
        """An index advisor mining the persisted profile mirror for ``db``."""
        from .advisor import IndexAdvisor

        return IndexAdvisor.from_warehouse(
            self, db, min_millis=min_millis,
            min_occurrences=min_occurrences,
        )

    # -- recording loop ----------------------------------------------------

    def tick(self, now: Optional[float] = None) -> dict:
        """One synchronous pass: record metrics, roll up, mirror profiles."""
        points = self.recorder.record_once(now)
        rollup = self.rollups.process_pending()
        mirrored = self.sync_profile()
        profiler_snaps = self.record_profiler_snapshot(now=now)
        return {
            "metric_points": points,
            "rollup": rollup,
            "profile_mirrored": mirrored,
            "profiler_snapshots": profiler_snaps,
        }

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval_s: float = 5.0,
              reap_interval_s: Optional[float] = None
              ) -> "TelemetryWarehouse":
        """Run :meth:`tick` on a background interval; also starts the
        store's TTL reaper (stopped by ``store.close()``)."""
        self.store.start_ttl_reaper(reap_interval_s)
        if self.running:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.tick()
                except Exception:  # pragma: no cover - keep the loop alive
                    pass

        self._thread = threading.Thread(
            target=loop, name="repro-telemetry-warehouse", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the recording loop (the TTL reaper belongs to the store)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "TelemetryWarehouse":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- read surface ------------------------------------------------------

    def metrics_series(self, name: str, resolution: str = "raw",
                       labels: Optional[Dict[str, Any]] = None,
                       since: Optional[float] = None,
                       until: Optional[float] = None,
                       limit: int = 0) -> List[dict]:
        """Raw points (``resolution="raw"``) or rollup buckets (``"1m"`` /
        ``"1h"``) for one metric — the ``GET /telemetry/metrics`` data."""
        if resolution == "raw":
            return self.recorder.series(
                name, labels=labels, since=since, until=until, limit=limit
            )
        rows = self.rollups.query(
            name, resolution=resolution, labels=labels,
            since=since, until=until,
        )
        return rows[-limit:] if limit else rows

    def metric_names(self) -> List[str]:
        """Distinct metric names with recorded history."""
        return sorted(self.db["metrics"].distinct("name"))

    def stats(self) -> dict:
        """Row counts per telemetry collection (the warehouse's own size)."""
        return {
            name: self.db[name].count_documents()
            for name in ("metrics", "metrics_rollup", "access",
                         "traces", "profile", "profiles", "alerts",
                         "events")
        }
