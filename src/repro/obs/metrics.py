"""Thread-safe metrics registry: counters, gauges, and histograms.

One process-wide registry (``get_registry()``) collects everything the
deployment knows about itself: datastore opcounters, wire-protocol traffic,
firework launches, API query latency.  The registry renders in a
Prometheus-style text exposition format so ``GET /metrics`` on the
Materials API server is scrapeable::

    # TYPE repro_docstore_ops_total counter
    repro_docstore_ops_total{db="mp",op="query"} 42
    # TYPE repro_api_query_millis histogram
    repro_api_query_millis_count 10
    repro_api_query_millis{quantile="0.5"} 1.2

Histograms keep a bounded sample reservoir and report p50/p95/p99 with
linearly interpolated percentile math (empty series → 0.0; a single sample
is every percentile of itself).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MAX_LABEL_SETS",
    "OVERFLOW_LABEL_VALUE",
    "get_registry",
    "set_registry",
    "percentile",
]

#: Samples kept per histogram series (oldest evicted first).
HISTOGRAM_RESERVOIR = 10_000

#: Distinct label-value sets kept per metric.  Past the cap, new label
#: combinations collapse into one ``__other__`` series and
#: ``repro_obs_label_overflow_total{metric=...}`` counts the collisions —
#: a warehouse-stamped label (user id, endpoint path) can skew the tail
#: but can no longer grow memory without bound.
MAX_LABEL_SETS = 512

#: Label value absorbing over-cap series.
OVERFLOW_LABEL_VALUE = "__other__"

_OVERFLOW_METRIC = "repro_obs_label_overflow_total"

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def percentile(values: List[float], p: float) -> float:
    """Linearly interpolated percentile; 0.0 for an empty sample.

    Uses the inclusive (numpy ``"linear"``) method: the rank
    ``p/100 * (n-1)`` interpolates between its two neighbouring order
    statistics.  Unlike nearest-rank math, small samples stay honest —
    p99 of two samples is *near* the max, not equal to it, and the p50
    of an even-sized sample is the true median.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = max(0.0, min(100.0, p)) / 100.0 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class _Metric:
    """Common bookkeeping for one named metric and its labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        #: Cardinality bound, fixed at creation; the registry that created
        #: this metric (for overflow accounting) is attached afterwards.
        self.max_label_sets = MAX_LABEL_SETS
        self._registry: Optional["MetricsRegistry"] = None

    def _bounded_key(self, key: LabelKey) -> Tuple[LabelKey, bool]:
        """Clamp a new series key once the cardinality cap is hit.

        Must be called with ``self._lock`` held.  Existing series keep
        updating; a *new* over-cap combination is rewritten to the
        ``__other__`` bucket (which is always admitted).
        """
        series = self._series  # type: ignore[attr-defined]
        if not key or key in series or len(series) < self.max_label_sets:
            return key, False
        overflow = tuple((k, OVERFLOW_LABEL_VALUE) for k, _ in key)
        return overflow, True

    def _note_overflow(self) -> None:
        """Count one clamped series (outside ``self._lock``)."""
        registry = self._registry
        if registry is None or self.name == _OVERFLOW_METRIC:
            return
        registry.counter(
            _OVERFLOW_METRIC,
            "label-value sets collapsed into __other__ by the "
            "per-metric cardinality cap",
        ).inc(1, metric=self.name)

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def collect(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing counter with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            key, overflowed = self._bounded_key(key)
            self._series[key] = self._series.get(key, 0.0) + amount
        if overflowed:
            self._note_overflow()

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labeled series."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def values(self, label: str) -> Dict[str, float]:
        """Totals broken down by one label's values.

        ``plan_cache.values("event")`` -> ``{"hit": 40, "miss": 3, ...}``;
        series missing the label are ignored.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for key, count in self._series.items():
                for k, v in key:
                    if k == label:
                        out[v] = out.get(v, 0.0) + count
                        break
        return out

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} counter"]
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} {self._series[key]:g}"
                )
        return lines

    def collect(self) -> dict:
        with self._lock:
            items = sorted(self._series.items())
        return {
            "name": self.name,
            "kind": self.kind,
            "series": [
                {"labels": dict(k), "value": v} for k, v in items
            ],
        }


class Gauge(_Metric):
    """A value that can go up and down (queue depth, active sessions)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            key, overflowed = self._bounded_key(key)
            self._series[key] = float(value)
        if overflowed:
            self._note_overflow()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            key, overflowed = self._bounded_key(key)
            self._series[key] = self._series.get(key, 0.0) + amount
        if overflowed:
            self._note_overflow()

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} gauge"]
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} {self._series[key]:g}"
                )
        return lines

    def collect(self) -> dict:
        with self._lock:
            items = sorted(self._series.items())
        return {
            "name": self.name,
            "kind": self.kind,
            "series": [
                {"labels": dict(k), "value": v} for k, v in items
            ],
        }


class _HistogramSeries:
    __slots__ = ("count", "sum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.samples: Deque[float] = deque(maxlen=HISTOGRAM_RESERVOIR)


class Histogram(_Metric):
    """Latency/size distribution with p50/p95/p99 summary quantiles."""

    kind = "histogram"
    quantiles = (50.0, 95.0, 99.0)

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            key, overflowed = self._bounded_key(key)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries()
            series.count += 1
            series.sum += float(value)
            series.samples.append(float(value))
        if overflowed:
            self._note_overflow()

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series else 0.0

    def percentile(self, p: float, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            samples = list(series.samples) if series else []
        return percentile(samples, p)

    def summary(self, **labels: Any) -> dict:
        with self._lock:
            series = self._series.get(_label_key(labels))
            samples = list(series.samples) if series else []
            count = series.count if series else 0
            total = series.sum if series else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
            "max": max(samples) if samples else 0.0,
        }

    def collect(self) -> dict:
        with self._lock:
            items = [
                (key, series.count, series.sum, list(series.samples))
                for key, series in sorted(self._series.items())
            ]
        series_out = []
        for key, count, total, samples in items:
            series_out.append({
                "labels": dict(key),
                "value": (total / count) if count else 0.0,  # mean
                "count": count,
                "sum": total,
                "p50": percentile(samples, 50),
                "p95": percentile(samples, 95),
                "p99": percentile(samples, 99),
                "max": max(samples) if samples else 0.0,
            })
        return {"name": self.name, "kind": self.kind, "series": series_out}

    def render(self) -> List[str]:
        lines = [f"# TYPE {self.name} histogram"]
        with self._lock:
            items = [
                (key, series.count, series.sum, list(series.samples))
                for key, series in sorted(self._series.items())
            ]
        for key, count, total, samples in items:
            lines.append(f"{self.name}_count{_render_labels(key)} {count:g}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {total:g}")
            for q in self.quantiles:
                lines.append(
                    f"{self.name}{_render_labels(key, ('quantile', f'{q / 100:g}'))}"
                    f" {percentile(samples, q):g}"
                )
        return lines


class MetricsRegistry:
    """A named family of metrics, rendered together.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes the metric's type, and a later call under a different type
    raises, so two subsystems cannot silently fight over one name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help_text: str) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text)
                metric._registry = self
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ReproError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help_text)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render_text(self) -> str:
        """The /metrics exposition document."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def collect(self) -> List[dict]:
        """Structured dump for the telemetry warehouse recorder.

        One dict per metric — ``{"name", "kind", "series": [{"labels",
        "value", ...}]}`` — with labels as plain dicts (not rendered
        strings) so series survive a round-trip through a collection.
        Histogram series carry their summary stats alongside the mean
        ``value``.
        """
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        return [m.collect() for m in metrics]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view (histograms reduced to their summaries)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Any] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                with metric._lock:
                    keys = list(metric._series)
                out[metric.name] = {
                    "type": metric.kind,
                    "series": {
                        _render_labels(k) or "{}": metric.summary(**dict(k))
                        for k in keys
                    },
                }
            else:
                out[metric.name] = {
                    "type": metric.kind,
                    "series": {
                        _render_labels(k) or "{}": v
                        for k, v in metric._series.items()  # type: ignore[attr-defined]
                    },
                }
        return out

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
