"""Workflow provenance: walk stamped ``provenance`` links into a DAG.

AiiDA 1.0 (Huber et al., 2020) argues that provenance capture — every
derived datum traceable to the calculation and inputs that produced it —
is what makes a high-throughput materials store trustworthy.  Here every
producer stamps its outputs with a ``provenance`` subdocument:

* the FireWorks launcher stamps each task with its firework, workflow,
  parent task ids, code version, trace id, and wall time;
* :class:`~repro.builders.core.MaterialsBuilder` stamps each material with
  the builder name and the full list of source task ids;
* the derived builders (phase diagrams, batteries, XRD, bands, symmetry)
  stamp their documents with the source material ids.

:func:`provenance_graph` walks those links backwards from a material into
an exportable node/edge DAG (served at ``GET /provenance/<material_id>``),
and :func:`format_provenance` renders it as an indented text tree.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import NotFoundError

__all__ = ["provenance_graph", "format_provenance"]


def _add_node(graph: Dict[str, Any], node_id: str, kind: str,
              **attrs: Any) -> bool:
    """Register a node once; returns False if it already exists."""
    if node_id in graph["_seen"]:
        return False
    graph["_seen"].add(node_id)
    graph["nodes"].append({"id": node_id, "kind": kind, **attrs})
    return True


def _add_edge(graph: Dict[str, Any], src: str, dst: str,
              relation: str) -> None:
    graph["edges"].append({"from": src, "to": dst, "relation": relation})


def _walk_task(graph: Dict[str, Any], db, task_id: Any, from_node: str,
               relation: str) -> None:
    """Add one task node (and its firework/workflow ancestry) to the DAG."""
    node_id = f"task:{task_id}"
    task = db["tasks"].find_one({"_id": task_id})
    fresh = _add_node(
        graph, node_id, "task",
        state=(task or {}).get("state"),
        code_version=(task or {}).get("code_version"),
        mps_id=(task or {}).get("mps_id"),
    )
    _add_edge(graph, from_node, node_id, relation)
    if not fresh or task is None:
        return

    prov = task.get("provenance") or {}
    graph["trace_ids"].add(prov.get("trace_id"))
    fw_id = prov.get("fw_id", task.get("fw_id"))
    if fw_id is not None:
        fw_node = f"firework:{fw_id}"
        engine = db["engines"].find_one({"fw_id": fw_id})
        _add_node(graph, fw_node, "firework",
                  state=(engine or {}).get("state"),
                  launches=(engine or {}).get("launches"))
        _add_edge(graph, node_id, fw_node, "produced_by")
        workflow_id = prov.get("workflow_id", task.get("workflow_id"))
        if workflow_id is not None:
            wf_node = f"workflow:{workflow_id}"
            _add_node(graph, wf_node, "workflow")
            _add_edge(graph, fw_node, wf_node, "part_of")
    # Inputs of this calculation: the parent fireworks' tasks.
    for parent_id in prov.get("source_task_ids") or []:
        _walk_task(graph, db, parent_id, node_id, "derived_from")


def provenance_graph(db, material_id: str) -> dict:
    """The backward provenance DAG of one material as nodes and edges.

    Walks material → source tasks → fireworks → workflows, following each
    task's own ``source_task_ids`` recursively, so a detoured or multi-step
    calculation resolves all the way back to its root inputs.  Raises
    :class:`~repro.errors.NotFoundError` for an unknown material id.
    """
    material = db["materials"].find_one({"material_id": material_id})
    if material is None:
        raise NotFoundError(f"no material {material_id!r}")

    graph: Dict[str, Any] = {
        "root": f"material:{material_id}",
        "material_id": material_id,
        "nodes": [],
        "edges": [],
        "trace_ids": set(),
        "_seen": set(),
    }
    prov = material.get("provenance") or {}
    graph["trace_ids"].add(prov.get("trace_id"))
    _add_node(
        graph, graph["root"], "material",
        formula=material.get("reduced_formula") or material.get("formula"),
        mps_id=material.get("mps_id"),
        builder=prov.get("builder"),
        code_version=prov.get("code_version"),
    )
    task_ids: List[Any] = list(prov.get("source_task_ids") or [])
    if not task_ids and prov.get("task_id") is not None:
        task_ids = [prov["task_id"]]
    for task_id in task_ids:
        _walk_task(graph, db, task_id, graph["root"], "built_from")

    graph.pop("_seen")
    graph["trace_ids"] = sorted(t for t in graph["trace_ids"] if t)
    return graph


def _children_of(graph: dict, node_id: str) -> List[tuple]:
    return [(e["to"], e["relation"]) for e in graph["edges"]
            if e["from"] == node_id]


def _node_label(graph: dict, node_id: str) -> str:
    node = next((n for n in graph["nodes"] if n["id"] == node_id), {})
    extras = " ".join(
        f"{k}={v}" for k, v in node.items()
        if k not in ("id", "kind") and v is not None
    )
    return f"{node_id}" + (f" ({extras})" if extras else "")


def _render_node(graph: dict, node_id: str, relation: Optional[str],
                 indent: int, lines: List[str], seen: set) -> None:
    arrow = f"<-{relation}- " if relation else ""
    lines.append("  " * indent + arrow + _node_label(graph, node_id))
    if node_id in seen:
        return
    seen.add(node_id)
    for child, rel in _children_of(graph, node_id):
        _render_node(graph, child, rel, indent + 1, lines, seen)


def format_provenance(graph: dict) -> str:
    """Render a :func:`provenance_graph` result as an indented text tree."""
    lines: List[str] = []
    _render_node(graph, graph["root"], None, 0, lines, set())
    if graph.get("trace_ids"):
        lines.append(f"traces: {', '.join(graph['trace_ids'])}")
    return "\n".join(lines)
