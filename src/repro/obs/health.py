"""Fleet health: mongostat/mongotop-style samplers and the health monitor.

The paper's operators kept the Materials Project datastore healthy by
*watching* it — mongostat for opcounter rates, mongotop for per-collection
time, replication/sharding dashboards for topology drift.  This module is
that operator loop for the reproduction:

* :class:`ServerStatusSampler` — snapshots ``serverStatus`` opcounters on
  an interval and keeps the deltas as a queryable time series (the
  ``mongostat`` data source).  Works against a local
  :class:`~repro.docstore.database.DocumentStore`, a single
  :class:`~repro.docstore.database.Database`, or a
  :class:`~repro.docstore.server.RemoteClient` watching a live server.
* :class:`TopSampler` — diffs :meth:`Database.top` snapshots into
  per-interval, per-collection read/write time (the ``mongotop`` source).
* :class:`HealthMonitor` — rolls replication lag, shard balance/chunk
  skew, and changestream backlog gauges into one report, evaluated
  against an attached :class:`~repro.obs.slo.SLOEngine` so breaches land
  in the alert history collection.  ``GET /health`` on the Materials API
  httpd serves :meth:`HealthMonitor.report`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .metrics import get_registry

__all__ = [
    "ServerStatusSampler",
    "TopSampler",
    "HealthMonitor",
    "format_stat_table",
    "format_top_table",
]

#: Opcounter columns rendered by mongostat, in display order.
STAT_COLUMNS = ("insert", "query", "update", "delete", "getmore", "command")


class ServerStatusSampler:
    """Interval sampler over ``serverStatus`` opcounters (mongostat).

    ``target`` is anything with a ``server_status()`` method returning a
    dict with an ``"opcounters"`` mapping: a ``DocumentStore`` (aggregate
    across databases), a ``Database``, a ``RemoteClient``, or a remote
    database handle.  Each :meth:`sample` records the opcounter *deltas*
    since the previous sample plus point-in-time gauges (objects,
    collections, in-flight ops when the target exposes ``current_op``).
    """

    def __init__(self, target: Any, max_samples: int = 4096):
        if not hasattr(target, "server_status"):
            raise TypeError("sampler target must expose server_status()")
        self.target = target
        self._samples: Deque[dict] = deque(maxlen=max_samples)
        self._prev_counters: Optional[Dict[str, int]] = None

    def sample(self, now: Optional[float] = None) -> dict:
        """Take one snapshot; returns the recorded sample document."""
        status = self.target.server_status()
        counters = dict(status.get("opcounters") or {})
        prev = self._prev_counters or {k: 0 for k in counters}
        deltas = {
            k: counters.get(k, 0) - prev.get(k, 0)
            for k in sorted(set(counters) | set(prev))
        }
        sample = {
            "ts": time.time() if now is None else now,
            "deltas": deltas,
            "totals": counters,
            "objects": status.get("objects"),
            "collections": status.get("collections"),
            "active_ops": self._active_ops(),
            "process": status.get("process"),
            "sharding": status.get("sharding"),
        }
        self._prev_counters = counters
        self._samples.append(sample)
        return sample

    def _active_ops(self) -> Optional[int]:
        # Resolve current_op on the *class* (and client via __dict__):
        # Database and DocumentStore materialize collections/databases on
        # instance attribute access, so a plain getattr would create a
        # collection named "current_op" instead of finding the method.
        candidates = [self.target]
        client = getattr(self.target, "__dict__", {}).get("client")
        if client is not None:
            candidates.append(client)
        for candidate in candidates:
            method = getattr(type(candidate), "current_op", None)
            if not callable(method):
                continue
            try:
                return len(method(candidate))
            except Exception:  # noqa: BLE001 - a dead server is "unknown", not a crash
                return None
        return None

    def run(self, n: int, interval_s: float = 1.0) -> List[dict]:
        """Sample ``n`` times, sleeping ``interval_s`` between samples."""
        out = []
        for i in range(n):
            out.append(self.sample())
            if i + 1 < n:
                time.sleep(interval_s)
        return out

    def samples(self) -> List[dict]:
        """The recorded time series (oldest first)."""
        return list(self._samples)

    def series(self, column: str) -> List[tuple]:
        """``(ts, delta)`` pairs for one opcounter column."""
        return [(s["ts"], s["deltas"].get(column, 0)) for s in self._samples]


class TopSampler:
    """Interval sampler over per-collection read/write time (mongotop).

    ``db`` is anything with a ``top()`` method returning cumulative
    ``{ns: {total_ms, read_ms, write_ms, ...}}`` — a local
    :class:`~repro.docstore.database.Database` or a remote database
    handle.  Samples hold the per-interval deltas.
    """

    def __init__(self, db: Any, max_samples: int = 4096):
        if not hasattr(db, "top"):
            raise TypeError("sampler target must expose top()")
        self.db = db
        self._samples: Deque[dict] = deque(maxlen=max_samples)
        self._prev: Dict[str, dict] = {}

    def sample(self, now: Optional[float] = None) -> dict:
        totals = {ns: dict(bucket) for ns, bucket in self.db.top().items()}
        deltas: Dict[str, dict] = {}
        for ns, bucket in totals.items():
            prev = self._prev.get(ns, {})
            deltas[ns] = {
                k: bucket.get(k, 0) - prev.get(k, 0) for k in bucket
            }
        sample = {
            "ts": time.time() if now is None else now,
            "deltas": deltas,
            "totals": totals,
        }
        self._prev = totals
        self._samples.append(sample)
        return sample

    def run(self, n: int, interval_s: float = 1.0) -> List[dict]:
        out = []
        for i in range(n):
            out.append(self.sample())
            if i + 1 < n:
                time.sleep(interval_s)
        return out

    def samples(self) -> List[dict]:
        return list(self._samples)


# -- live-table rendering (the CLI subcommands) ---------------------------


def format_stat_table(samples: List[dict], header: bool = True) -> str:
    """Render mongostat samples as aligned columns, one row per sample.

    When samples carry a ``process`` section (``server_status()`` on a
    store with :mod:`repro.obs.procstats` wired in), RSS / fd / thread
    columns are appended after the timestamp — trailing, so the classic
    opcounter layout is stable for tooling that slices fixed columns.
    Samples from a store with an attached sharded cluster additionally get
    a ``shards`` column: per-shard chunk counts joined by ``|``, so a
    drifting distribution is visible straight from mongostat.
    """
    has_process = any(s.get("process") for s in samples)
    has_sharding = any(s.get("sharding") for s in samples)
    lines = []
    if header:
        cols = "".join(f"{c:>9s}" for c in STAT_COLUMNS)
        head = f"{cols}{'active':>9s}{'objects':>9s}  time"
        if has_process:
            head += f"{'rss_mb':>9s}{'fds':>7s}{'thr':>5s}"
        if has_sharding:
            head += f"{'shards':>14s}"
        lines.append(head)
    for s in samples:
        cols = "".join(f"{s['deltas'].get(c, 0):>9d}" for c in STAT_COLUMNS)
        active = s.get("active_ops")
        objects = s.get("objects")
        stamp = time.strftime("%H:%M:%S", time.localtime(s["ts"]))
        row = (
            f"{cols}"
            f"{('-' if active is None else str(active)):>9s}"
            f"{('-' if objects is None else str(objects)):>9s}"
            f"  {stamp}"
        )
        if has_process:
            proc = s.get("process") or {}
            rss = proc.get("rss_bytes")
            fds = proc.get("open_fds")
            thr = proc.get("threads")
            row += (
                f"{('-' if rss is None else f'{rss / 1048576.0:.1f}'):>9s}"
                f"{('-' if fds is None else str(fds)):>7s}"
                f"{('-' if thr is None else str(thr)):>5s}"
            )
        if has_sharding:
            sharding = s.get("sharding") or {}
            chunks = sharding.get("chunksPerShard") or {}
            cell = "|".join(str(chunks[k]) for k in sorted(chunks)) or "-"
            row += f"{cell:>14s}"
        lines.append(row)
    return "\n".join(lines)


def format_top_table(sample: dict, header: bool = True) -> str:
    """Render one mongotop sample: per-collection interval time, hottest
    namespace first."""
    rows = sorted(
        sample["deltas"].items(),
        key=lambda kv: kv[1].get("total_ms", 0.0),
        reverse=True,
    )
    width = max([len(ns) for ns, _ in rows] + [4])
    lines = []
    if header:
        lines.append(
            f"{'ns':<{width}s}{'total':>12s}{'read':>12s}{'write':>12s}"
        )
    for ns, d in rows:
        lines.append(
            f"{ns:<{width}s}"
            f"{d.get('total_ms', 0.0):>10.2f}ms"
            f"{d.get('read_ms', 0.0):>10.2f}ms"
            f"{d.get('write_ms', 0.0):>10.2f}ms"
        )
    return "\n".join(lines)


class HealthMonitor:
    """Rolls topology gauges and SLO evaluation into one health report.

    Components are registered explicitly (``watch_*``); :meth:`gauges`
    computes the current values, pushes them into the shared metrics
    registry as ``repro_health_gauge{name=...}``, and :meth:`report`
    evaluates the attached SLO engine against them so rule breaches open
    alerts in the alert history collection.

    Gauge keys consumed by the default SLO rules:

    * ``replication_max_lag`` — worst secondary lag (oplog entries behind)
      across watched replica sets;
    * ``shard_max_balance_factor`` — worst ``max/mean`` shard-size ratio
      across watched sharded collections (1.0 is perfectly balanced);
    * ``changestream_max_backlog_fraction`` — fullest watched change
      stream buffer, as a fraction of its capacity.
    """

    def __init__(self, db: Any = None, rules: Optional[List[Any]] = None,
                 alert_collection: str = "system.alerts",
                 engine: Optional[Any] = None):
        from .slo import SLOEngine, default_rules

        self.db = db
        if engine is not None:
            # A pre-built engine (e.g. the telemetry warehouse's, whose
            # alert history lives in ``telemetry.alerts`` and survives
            # restarts) takes precedence over constructing one from db.
            self.engine = engine
        else:
            self.engine = (
                SLOEngine(db,
                          rules if rules is not None else default_rules(db),
                          collection=alert_collection)
                if db is not None else None
            )
        self._replica_sets: List[Any] = []
        self._sharded: Dict[str, Any] = {}
        self._streams: Dict[str, Any] = {}
        self._extra_gauges: Dict[str, Callable[[], float]] = {}

    # -- component registration ----------------------------------------

    def watch_replica_set(self, rs: Any) -> "HealthMonitor":
        self._replica_sets.append(rs)
        return self

    def watch_sharded(self, name: str, sc: Any) -> "HealthMonitor":
        self._sharded[name] = sc
        return self

    def watch_changestream(self, name: str, stream: Any) -> "HealthMonitor":
        self._streams[name] = stream
        return self

    def add_gauge(self, name: str, fn: Callable[[], float]) -> "HealthMonitor":
        """Register a custom gauge callable (value read at report time)."""
        self._extra_gauges[name] = fn
        return self

    # -- gauges ---------------------------------------------------------

    def gauges(self) -> Dict[str, float]:
        g: Dict[str, float] = {}
        lags = []
        for rs in self._replica_sets:
            status = rs.status()
            for member in status["members"]:
                if member["state"] != "PRIMARY":
                    lags.append(member["lag"])
                    g[f"replication_lag:{member['name']}"] = member["lag"]
        if lags:
            g["replication_max_lag"] = max(lags)
        factors = []
        for name, sc in self._sharded.items():
            factor = sc.balance_factor()
            factors.append(factor)
            g[f"shard_balance:{name}"] = factor
            sizes = list(sc.shard_distribution().values())
            total = sum(sizes)
            if total:
                g[f"shard_hottest_fraction:{name}"] = max(sizes) / total
        if factors:
            g["shard_max_balance_factor"] = max(factors)
        backlogs = []
        for name, stream in self._streams.items():
            fraction = stream.pending() / stream.max_buffer
            backlogs.append(fraction)
            g[f"changestream_backlog:{name}"] = stream.pending()
            g[f"changestream_backlog_fraction:{name}"] = fraction
        if backlogs:
            g["changestream_max_backlog_fraction"] = max(backlogs)
        for name, fn in self._extra_gauges.items():
            g[name] = float(fn())
        gauge_metric = get_registry().gauge(
            "repro_health_gauge", "fleet health gauges"
        )
        for name, value in g.items():
            gauge_metric.set(value, name=name)
        return g

    # -- the report -----------------------------------------------------

    def report(self, now: Optional[float] = None) -> dict:
        """Evaluate SLO rules against current gauges; return the health
        document served by ``GET /health``."""
        gauges = self.gauges()
        opened: List[dict] = []
        status = "green"
        alerts: Dict[str, Any] = {"open": [], "recent": []}
        if self.engine is not None:
            opened = self.engine.evaluate(gauges, now=now)
            status = self.engine.status()
            alerts = {
                "open": self.engine.open_alerts(),
                "recent": self.engine.recent_alerts(20),
            }
        return {
            "status": status,
            "gauges": gauges,
            "new_alerts": opened,
            "alerts": alerts,
            "components": {
                "replica_sets": [rs.status() for rs in self._replica_sets],
                "sharded": {
                    name: sc.shard_distribution()
                    for name, sc in self._sharded.items()
                },
                "changestreams": {
                    name: {"pending": s.pending(),
                           "max_buffer": s.max_buffer}
                    for name, s in self._streams.items()
                },
            },
        }
