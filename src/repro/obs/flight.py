"""Out-of-band flight recorder, stall watchdog, and crash forensics.

Every other observability surface in this repo — ``system.profile``, the
telemetry warehouse, the metrics registry — stores its data *inside* the
engine it observes.  The moment the store wedges on a write lock, stalls
in ``fsync``, or the process dies at a batch-queue walltime, those
surfaces lose exactly the window an operator needs.  This module is the
black box: an FTDC-style background recorder that captures a full
diagnostic snapshot at a configurable cadence (default 1 Hz) and appends
it to a size-capped on-disk ring of delta-compressed, CRC-checked binary
chunks using **pure file appends** — it never touches the docstore write
path, so recording keeps working when the store itself cannot accept
writes.

Three layers:

* **Ring + codec** — snapshots are JSON documents, delta-encoded against
  the previous snapshot (:func:`dict_delta`), zlib-compressed, and framed
  with a 20-byte header (magic, kind, timestamp, length, CRC32).  Records
  accumulate into ``chunk-NNNNNNNN.bin`` files; every chunk opens with a
  full keyframe so each chunk decodes independently, which makes ring
  eviction (delete the oldest chunk) safe.  The decoder tolerates torn
  tails and corrupt records: a bad CRC or magic abandons the rest of that
  chunk with a warning and decoding continues at the next keyframe.

* **Stall watchdog** — a separate daemon thread probes hot-path liveness
  (non-blocking RWLock read acquisition per collection, journal committer
  heartbeat age, oldest in-flight wire dispatch).  A probe that fails
  continuously past ``stall_timeout_s`` fires a stall event: all-thread
  stacks folded via the sampling profiler's :func:`fold_stack`, an EVENT
  record in the ring, an immediate flush, a
  ``repro_flight_stalls_total`` counter bump, and an optional sink call
  (warehouse ingestion).

* **Crash forensics** — ``faulthandler`` wired to a log file inside the
  ring directory, a ``session.json`` marker flipped to clean on orderly
  shutdown (atexit or :meth:`FlightRecorder.stop`), and a startup-time
  detector that, after an unclean death, correlates the ring tail with
  the journal's ``last_recovery`` torn-tail report into
  ``crash_report.json``.  :func:`build_crash_report` reads only the ring
  directory — it never opens the docstore, so it works even when the
  data files are the thing that is broken.
"""

from __future__ import annotations

import atexit
import copy
import json
import os
import re
import struct
import sys
import threading
import time
import zlib
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import get_registry
from .procstats import process_status
from .profiler import fold_stack

__all__ = [
    "FlightRecorder",
    "StallWatchdog",
    "get_flight_recorder",
    "set_flight_recorder",
    "start_flight_recorder",
    "stop_flight_recorder",
    "dict_delta",
    "apply_delta",
    "decode_ring",
    "diff_window",
    "scan_anomalies",
    "enable_fault_handler",
    "detect_unclean_shutdown",
    "build_crash_report",
    "generate_crash_report",
    "read_crash_report",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_STALL_TIMEOUT_S",
]

# -- ring format ------------------------------------------------------------

#: Record header: magic ``FR``, kind byte, flags byte (reserved), float64
#: wall-clock timestamp, payload length, CRC32 of the compressed payload.
_HEADER = struct.Struct("<2sBBdII")
_MAGIC = b"FR"

#: Record kinds.  FULL is a complete snapshot (keyframe), DELTA encodes
#: against the previous snapshot record, EVENT is out-of-band (stalls,
#: shutdown markers) and never participates in the delta chain.
KIND_FULL = 1
KIND_DELTA = 2
KIND_EVENT = 3

_CHUNK_RE = re.compile(r"^chunk-(\d{8})\.bin$")

DEFAULT_INTERVAL_S = 1.0
DEFAULT_STALL_TIMEOUT_S = 5.0

#: Ring budget defaults: ~16 MiB total across ~256 KiB chunks.  At 1 Hz a
#: delta record is typically well under 1 KiB, so the ring holds hours.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_MAX_CHUNK_BYTES = 256 * 1024
DEFAULT_CHUNK_RECORDS = 120

SESSION_FILE = "session.json"
CRASH_REPORT_FILE = "crash_report.json"
FAULTHANDLER_FILE = "faulthandler.log"


def _chunk_name(seq: int) -> str:
    return f"chunk-{seq:08d}.bin"


def _list_chunks(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` for every chunk file, oldest first."""
    out = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        m = _CHUNK_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    out.sort()
    return out


def _write_json_atomic(path: str, doc: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


# -- delta codec ------------------------------------------------------------


def dict_delta(prev: dict, cur: dict) -> dict:
    """Recursive diff: ``{"s": <changed subtree>, "x": [<removed paths>]}``.

    Dicts diff key-by-key; everything else (scalars, lists) is replaced
    wholesale on inequality.  :func:`apply_delta` inverts it.
    """
    changed: dict = {}
    removed: List[List[str]] = []

    def _set_path(root: dict, path: List[str], value: Any) -> None:
        node = root
        for key in path[:-1]:
            node = node.setdefault(key, {})
        node[path[-1]] = value

    def walk(p: dict, c: dict, path: List[str]) -> None:
        for key, val in c.items():
            if key not in p:
                _set_path(changed, path + [key], val)
            elif isinstance(val, dict) and isinstance(p[key], dict):
                walk(p[key], val, path + [key])
            elif val != p[key]:
                _set_path(changed, path + [key], val)
        for key in p:
            if key not in c:
                removed.append(path + [key])

    walk(prev, cur, [])
    delta: dict = {}
    if changed:
        delta["s"] = changed
    if removed:
        delta["x"] = removed
    return delta


def apply_delta(base: dict, delta: dict) -> dict:
    """Reconstruct the next snapshot from ``base`` + a :func:`dict_delta`."""
    out = copy.deepcopy(base)

    def merge(dst: dict, src: dict) -> None:
        for key, val in src.items():
            if isinstance(val, dict) and isinstance(dst.get(key), dict):
                merge(dst[key], val)
            else:
                dst[key] = copy.deepcopy(val)

    merge(out, delta.get("s", {}))
    for path in delta.get("x", []):
        node: Any = out
        for key in path[:-1]:
            if not isinstance(node, dict):
                node = None
                break
            node = node.get(key)
        if isinstance(node, dict):
            node.pop(path[-1], None)
    return out


# -- chunk writer -----------------------------------------------------------


class _RingWriter:
    """Append-only writer over the chunk ring.  Not thread-safe; the
    recorder serialises access under its own lock."""

    def __init__(self, directory: str,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        self.directory = directory
        self.max_bytes = int(max_bytes)
        self.max_chunk_bytes = int(max_chunk_bytes)
        self.chunk_records = int(chunk_records)
        os.makedirs(directory, exist_ok=True)
        existing = _list_chunks(directory)
        # A new writer always opens a fresh chunk: its first snapshot is a
        # keyframe, so records from a previous process never chain into us.
        self._seq = (existing[-1][0] + 1) if existing else 0
        self._fd: Optional[int] = None
        self._chunk_records = 0
        self._chunk_bytes = 0
        self._chunk_has_keyframe = False
        self.records_written = 0
        self.bytes_written = 0

    # A snapshot must be written as a FULL keyframe whenever it would land
    # at the start of a chunk (fresh writer, rotation due) — the decoder
    # relies on every chunk being self-contained.
    def needs_keyframe(self) -> bool:
        return self._fd is None or not self._chunk_has_keyframe or (
            self._chunk_records >= self.chunk_records
            or self._chunk_bytes >= self.max_chunk_bytes)

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
        path = os.path.join(self.directory, _chunk_name(self._seq))
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._seq += 1
        self._chunk_records = 0
        self._chunk_bytes = 0
        self._chunk_has_keyframe = False
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        chunks = _list_chunks(self.directory)
        if len(chunks) <= 1:
            return
        sizes = {path: os.path.getsize(path) for _, path in chunks}
        total = sum(sizes.values())
        # Never delete the newest chunk (the one we are writing).
        for _, path in chunks[:-1]:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
                total -= sizes[path]
            except OSError:
                break

    def append(self, kind: int, payload_obj: Any,
               ts: Optional[float] = None) -> int:
        """Frame, compress, checksum, and append one record.

        Snapshot records (FULL/DELTA) trigger rotation when the current
        chunk is over budget; EVENT records never rotate so a stall dump
        cannot strand a follow-up delta in a keyframe-less chunk.
        """
        raw = json.dumps(payload_obj, separators=(",", ":"),
                         default=str).encode("utf-8")
        comp = zlib.compress(raw, 6)
        crc = zlib.crc32(comp) & 0xFFFFFFFF
        record = _HEADER.pack(_MAGIC, kind, 0, ts if ts is not None
                              else time.time(), len(comp), crc) + comp
        if self._fd is None or (kind != KIND_EVENT and (
                self._chunk_records >= self.chunk_records
                or self._chunk_bytes >= self.max_chunk_bytes)):
            self._rotate()
        os.write(self._fd, record)
        if kind == KIND_FULL:
            self._chunk_has_keyframe = True
        self._chunk_records += 1
        self._chunk_bytes += len(record)
        self.records_written += 1
        self.bytes_written += len(record)
        return len(record)

    def flush(self) -> None:
        if self._fd is not None:
            try:
                os.fsync(self._fd)
            except OSError:
                pass

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


# -- decoder ----------------------------------------------------------------


def _iter_chunk_records(path: str, warnings: List[str]):
    """Yield ``(kind, ts, payload)`` from one chunk, stopping (with a
    warning) at the first torn or corrupt record — the delta chain past a
    bad record is unrecoverable, but the *next* chunk starts with a
    keyframe, so the caller just moves on."""
    name = os.path.basename(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        warnings.append(f"{name}: unreadable ({exc})")
        return
    offset = 0
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            warnings.append(
                f"{name}: truncated record header at offset {offset}")
            return
        magic, kind, _flags, ts, length, crc = _HEADER.unpack_from(
            data, offset)
        if magic != _MAGIC:
            warnings.append(
                f"{name}: bad magic at offset {offset}; "
                f"skipping rest of chunk")
            return
        start = offset + _HEADER.size
        if len(data) - start < length:
            warnings.append(
                f"{name}: truncated record payload at offset {offset} "
                f"(want {length}, have {len(data) - start})")
            return
        comp = data[start:start + length]
        if zlib.crc32(comp) & 0xFFFFFFFF != crc:
            warnings.append(
                f"{name}: CRC mismatch at offset {offset}; "
                f"skipping rest of chunk")
            return
        try:
            payload = json.loads(zlib.decompress(comp).decode("utf-8"))
        except (zlib.error, ValueError) as exc:
            warnings.append(
                f"{name}: undecodable payload at offset {offset} ({exc}); "
                f"skipping rest of chunk")
            return
        yield kind, ts, payload
        offset = start + length


def decode_ring(directory: str, since: Optional[float] = None,
                until: Optional[float] = None) -> dict:
    """Decode the whole ring into reconstructed snapshots + events.

    Returns ``{"snapshots", "events", "warnings", "chunks", "records"}``.
    ``since``/``until`` filter what is *returned*; the delta chain is
    always applied in full so a filtered window is still correct.
    """
    snapshots: List[dict] = []
    events: List[dict] = []
    warnings: List[str] = []
    chunks = _list_chunks(directory)
    records = 0

    def in_range(ts: float) -> bool:
        if since is not None and ts < since:
            return False
        if until is not None and ts > until:
            return False
        return True

    for seq, path in chunks:
        base: Optional[dict] = None  # keyframes reset the chain per chunk
        for kind, ts, payload in _iter_chunk_records(path, warnings):
            records += 1
            if kind == KIND_EVENT:
                event = dict(payload) if isinstance(payload, dict) else {
                    "data": payload}
                event.setdefault("ts", ts)
                if in_range(event["ts"]):
                    events.append(event)
            elif kind == KIND_FULL:
                base = payload
                if in_range(ts):
                    snapshots.append(payload)
            elif kind == KIND_DELTA:
                if base is None:
                    warnings.append(
                        f"{os.path.basename(path)}: delta before any "
                        f"keyframe; record skipped")
                    continue
                base = apply_delta(base, payload)
                if in_range(ts):
                    snapshots.append(base)
            else:
                warnings.append(
                    f"{os.path.basename(path)}: unknown record kind {kind}")
    return {"snapshots": snapshots, "events": events, "warnings": warnings,
            "chunks": len(chunks), "records": records}


# -- window analytics -------------------------------------------------------


def _flatten(doc: Any, prefix: str = "", out: Optional[Dict[str, float]] = None
             ) -> Dict[str, float]:
    """Numeric leaves of a nested dict as ``a.b.c -> value``."""
    if out is None:
        out = {}
    if isinstance(doc, dict):
        for key, val in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(val, dict):
                _flatten(val, path, out)
            elif isinstance(val, bool):
                continue
            elif isinstance(val, (int, float)):
                out[path] = float(val)
    return out


def diff_window(snapshots: List[dict], t0: Optional[float] = None,
                t1: Optional[float] = None) -> dict:
    """Numeric-leaf deltas between the first and last snapshot in range.

    ``{"first_ts", "last_ts", "snapshots", "deltas": {path: {"from",
    "to", "delta"}}}`` — only changed leaves are reported.
    """
    window = [s for s in snapshots
              if (t0 is None or s.get("ts", 0) >= t0)
              and (t1 is None or s.get("ts", 0) <= t1)]
    if len(window) < 2:
        return {"snapshots": len(window), "deltas": {}}
    first, last = _flatten(window[0]), _flatten(window[-1])
    deltas = {}
    for path, after in last.items():
        before = first.get(path)
        if before is not None and after != before:
            deltas[path] = {"from": before, "to": after,
                            "delta": after - before}
    return {
        "first_ts": window[0].get("ts"),
        "last_ts": window[-1].get("ts"),
        "snapshots": len(window),
        "deltas": deltas,
    }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def scan_anomalies(snapshots: List[dict], threshold: float = 6.0,
                   min_points: int = 8, limit: int = 50) -> List[dict]:
    """MAD-z-score outlier scan over every flattened numeric series.

    The modified z-score ``0.6745 * (x - median) / MAD`` is robust to the
    outliers it hunts (unlike stddev, which an outlier inflates).  Series
    that are monotonically non-decreasing (cumulative counters) are
    first-differenced so a burst shows up as a rate spike rather than
    every post-burst point scoring high.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for snap in snapshots:
        ts = float(snap.get("ts", 0.0))
        for path, value in _flatten(snap).items():
            if path in ("ts", "seq"):
                continue
            series.setdefault(path, []).append((ts, value))

    findings: List[dict] = []
    for path, points in series.items():
        if len(points) < min_points:
            continue
        values = [v for _, v in points]
        monotonic = all(b >= a for a, b in zip(values, values[1:]))
        if monotonic and values[-1] > values[0]:
            points = [(points[i + 1][0], values[i + 1] - values[i])
                      for i in range(len(values) - 1)]
            values = [v for _, v in points]
        if len(values) < min_points or len(set(values)) == 1:
            continue
        med = _median(values)
        mad = _median([abs(v - med) for v in values])
        if mad == 0.0:
            # e.g. [0,0,0,0,50]: MAD collapses but the spike is real —
            # fall back to the mean absolute deviation as the scale.
            mad = sum(abs(v - med) for v in values) / len(values)
            if mad == 0.0:
                continue
        for (ts, value) in points:
            z = 0.6745 * (value - med) / mad
            if abs(z) >= threshold:
                findings.append({"series": path, "ts": ts, "value": value,
                                 "median": med, "z": round(z, 2)})
    findings.sort(key=lambda f: -abs(f["z"]))
    return findings[:limit]


# -- the recorder -----------------------------------------------------------


class FlightRecorder:
    """Background diagnostic snapshotter over an append-only chunk ring.

    ``store`` may be ``None`` (metrics + process stats only) — the
    recorder must keep working even when there is nothing left to ask.
    Every snapshot section is captured under its own try/except for the
    same reason: a wedged ``server_status()`` must not stop process-level
    recording (and ``server_status`` itself only takes short-held
    mutexes, never the per-collection RWLocks, so in practice it survives
    a write-wedged collection).
    """

    def __init__(self, store: Any, directory: str,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 registry: Any = None,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 recent_max: int = 300):
        if interval_s <= 0:
            raise ValueError(
                f"interval must be positive, got {interval_s!r}")
        self.store = store
        self.directory = directory
        self.interval_s = float(interval_s)
        self._registry = registry
        self._writer = _RingWriter(directory, max_bytes=max_bytes,
                                   max_chunk_bytes=max_chunk_bytes,
                                   chunk_records=chunk_records)
        self._lock = threading.Lock()
        self._prev_snapshot: Optional[dict] = None
        self._prev_counters: Dict[str, float] = {}
        self._recent: deque = deque(maxlen=int(recent_max))
        self._recent_events: deque = deque(maxlen=64)
        self._seq = 0
        self._errors = 0
        self._started_at: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._atexit_registered = False

    # -- snapshot capture -------------------------------------------------

    def _registry_or_default(self):
        return self._registry if self._registry is not None else get_registry()

    def _counter_deltas(self) -> Dict[str, float]:
        """Per-tick deltas for every counter series in the registry."""
        current: Dict[str, float] = {}
        for metric in self._registry_or_default().collect():
            if metric.get("kind") != "counter":
                continue
            name = metric["name"]
            for row in metric.get("series", []):
                labels = row.get("labels") or {}
                rendered = ",".join(
                    f"{k}={labels[k]}" for k in sorted(labels))
                current[f"{name}{{{rendered}}}"] = float(row.get("value", 0))
        deltas = {}
        for key, value in current.items():
            delta = value - self._prev_counters.get(key, 0.0)
            if delta:
                deltas[key] = delta
        self._prev_counters = current
        return deltas

    def capture(self, now: Optional[float] = None) -> dict:
        """Take one snapshot and append it to the ring (thread-safe).

        Public so tests, the tour, and ``repro diagnose`` surfaces can
        drive the recorder deterministically without the daemon.
        """
        ts = time.time() if now is None else now
        with self._lock:
            self._seq += 1
            snap: Dict[str, Any] = {"v": 1, "seq": self._seq, "ts": ts}
            if self.store is not None:
                try:
                    status = self.store.server_status()
                    # process stats live at the snapshot top level; keep
                    # one copy rather than duplicating inside "server".
                    snap["process"] = status.pop("process", None)
                    snap["server"] = status
                except Exception as exc:
                    self._errors += 1
                    snap["server_error"] = repr(exc)
            if snap.get("process") is None:
                try:
                    snap["process"] = process_status()
                except Exception as exc:
                    self._errors += 1
                    snap["process_error"] = repr(exc)
            try:
                snap["metrics"] = self._counter_deltas()
            except Exception as exc:
                self._errors += 1
                snap["metrics_error"] = repr(exc)
            if self._writer.needs_keyframe() or self._prev_snapshot is None:
                self._writer.append(KIND_FULL, snap, ts=ts)
            else:
                self._writer.append(
                    KIND_DELTA, dict_delta(self._prev_snapshot, snap), ts=ts)
            self._prev_snapshot = snap
            self._recent.append(snap)
        return snap

    def record_event(self, event_type: str, data: Optional[dict] = None,
                     flush: bool = True) -> dict:
        """Append an out-of-band EVENT record (stall, shutdown, crash)."""
        event = {"type": event_type, "ts": time.time()}
        if data:
            event.update(data)
        with self._lock:
            self._writer.append(KIND_EVENT, event, ts=event["ts"])
            if flush:
                self._writer.flush()
            self._recent_events.append(event)
        return event

    def flush(self) -> None:
        with self._lock:
            self._writer.flush()

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _session_path(self) -> str:
        return os.path.join(self.directory, SESSION_FILE)

    def _write_session(self, clean: bool) -> None:
        doc = {"pid": os.getpid(), "started_at": self._started_at,
               "interval_s": self.interval_s, "clean": clean}
        if clean:
            doc["stopped_at"] = time.time()
        try:
            _write_json_atomic(self._session_path(), doc)
        except OSError:
            pass

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.capture()
            except Exception:
                self._errors += 1

    def start(self) -> "FlightRecorder":
        """Start the capture daemon and mark the session dirty (idempotent).

        The ``session.json`` marker stays ``clean: false`` until
        :meth:`stop` (or the atexit hook) flips it — an ``os._exit`` or
        SIGKILL leaves it dirty, which is how the next startup knows to
        build a crash report.
        """
        if self.running:
            return self
        self._started_at = time.time()
        self._write_session(clean=False)
        if not self._atexit_registered:
            atexit.register(self._atexit_stop)
            self._atexit_registered = True
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-flight", daemon=True)
        self._thread.start()
        return self

    def _atexit_stop(self) -> None:
        try:
            if self.running:
                self.stop()
        except Exception:
            pass

    def stop(self) -> dict:
        """Stop the daemon, write a shutdown event, mark the session clean."""
        thread = self._thread
        self._thread = None
        self._stop_event.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        self.record_event("shutdown", {"seq": self._seq}, flush=True)
        self._write_session(clean=True)
        with self._lock:
            self._writer.close()
        return self.status()

    def status(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "directory": self.directory,
                "interval_s": self.interval_s,
                "snapshots": self._seq,
                "records_written": self._writer.records_written,
                "bytes_written": self._writer.bytes_written,
                "chunks": len(_list_chunks(self.directory)),
                "errors": self._errors,
                "started_at": self._started_at,
                "recent": len(self._recent),
            }

    def recent(self, n: int = 0) -> List[dict]:
        """The last ``n`` in-memory snapshots (all if ``n`` <= 0)."""
        with self._lock:
            items = list(self._recent)
        return items[-n:] if n > 0 else items

    def recent_events(self, n: int = 0) -> List[dict]:
        with self._lock:
            items = list(self._recent_events)
        return items[-n:] if n > 0 else items


# -- stall watchdog ---------------------------------------------------------


def dump_all_stacks(max_threads: int = 64) -> List[dict]:
    """Fold every live thread's stack via the profiler's folder."""
    frames = sys._current_frames()
    names = {t.ident: t.name for t in threading.enumerate()}
    me = threading.get_ident()
    out = []
    for ident, frame in list(frames.items())[:max_threads]:
        if ident == me:
            continue
        out.append({"thread": names.get(ident, str(ident)),
                    "stack": fold_stack(frame)})
    return out


class StallWatchdog:
    """Liveness prober that lives *outside* the paths it watches.

    Three probes per tick:

    * ``lock:<db>.<coll>`` — a zero-timeout ``try_acquire_read`` on each
      collection's RWLock.  Writer preference makes a momentary failure
      normal; only a probe failing *continuously* past
      ``stall_timeout_s`` counts as a stall.
    * ``journal`` — the committer thread's heartbeat age while records
      are pending: a wedged ``fsync`` shows up as a growing backlog under
      a stale heartbeat.
    * ``wire`` — the oldest in-flight dispatch on the wire server.

    On a stall: all-thread stack dump, EVENT record + ring flush,
    ``repro_flight_stalls_total`` counter, optional ``event_sink`` call
    (warehouse ingestion).  Each probe fires once per episode and re-arms
    when it recovers.
    """

    def __init__(self, recorder: Optional[FlightRecorder],
                 store: Any = None, wire_server: Any = None,
                 interval_s: float = 1.0,
                 stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
                 event_sink: Optional[Callable[[dict], None]] = None,
                 max_probed_collections: int = 32):
        self.recorder = recorder
        self.store = store
        self.wire_server = wire_server
        self.interval_s = float(interval_s)
        self.stall_timeout_s = float(stall_timeout_s)
        self.event_sink = event_sink
        self.max_probed_collections = int(max_probed_collections)
        self.stalls_detected = 0
        self._failing_since: Dict[str, float] = {}
        self._stalled: Dict[str, bool] = {}
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- probes -----------------------------------------------------------

    def _iter_locks(self):
        store = self.store
        if store is None:
            return
        count = 0
        try:
            db_names = store.list_database_names()
        except Exception:
            return
        for db_name in db_names:
            try:
                db = store.get_database(db_name)
                coll_names = db.list_collection_names()
            except Exception:
                continue
            for coll_name in coll_names:
                if count >= self.max_probed_collections:
                    return
                try:
                    coll = db.get_collection(coll_name)
                except Exception:
                    continue
                count += 1
                yield f"lock:{db_name}.{coll_name}", coll._lock

    def check_once(self, now: Optional[float] = None) -> List[dict]:
        """Run every probe once; returns the stall events fired (if any).

        Public so tests and the tour can drive detection deterministically
        without the daemon thread.
        """
        now = time.monotonic() if now is None else now
        failing: Dict[str, str] = {}

        for probe, lock in self._iter_locks():
            ok = False
            try:
                if lock.try_acquire_read(timeout=0.0):
                    lock.release_read()
                    ok = True
            except Exception:
                ok = True  # a broken probe is not a stalled engine
            if not ok:
                failing[probe] = "read probe cannot acquire the RWLock"

        store = self.store
        if store is not None:
            try:
                journal = store.server_status().get("journal")
            except Exception:
                journal = None
            if journal:
                age = journal.get("heartbeat_age_s")
                if (journal.get("pending", 0) > 0 and age is not None
                        and age >= self.stall_timeout_s):
                    failing["journal"] = (
                        f"{journal['pending']} records pending, committer "
                        f"heartbeat {age:.1f}s old")

        if self.wire_server is not None:
            try:
                inflight = self.wire_server.dispatch_inflight()
            except Exception:
                inflight = []
            for entry in inflight:
                if entry.get("age_s", 0.0) >= self.stall_timeout_s:
                    failing["wire"] = (
                        f"op {entry.get('op')!r} in dispatch for "
                        f"{entry['age_s']:.1f}s")
                    break

        events: List[dict] = []
        for probe, detail in failing.items():
            if probe == "journal" or probe == "wire":
                # These probes embed their own age measurement; the lock
                # probe needs sustained failure tracked here.
                first = now
                elapsed = self.stall_timeout_s
            else:
                first = self._failing_since.setdefault(probe, now)
                elapsed = now - first
            if elapsed >= self.stall_timeout_s and not self._stalled.get(probe):
                self._stalled[probe] = True
                events.append(self._fire(probe, detail))
        for probe in list(self._failing_since):
            if probe not in failing:
                self._failing_since.pop(probe, None)
                self._stalled.pop(probe, None)
        for probe in ("journal", "wire"):
            if probe not in failing:
                self._stalled.pop(probe, None)
        return events

    def _fire(self, probe: str, detail: str) -> dict:
        self.stalls_detected += 1
        event = {
            "probe": probe,
            "detail": detail,
            "stall_timeout_s": self.stall_timeout_s,
            "stacks": dump_all_stacks(),
        }
        try:
            get_registry().counter(
                "repro_flight_stalls_total",
                "stalls detected by the flight watchdog",
            ).inc(1, probe=probe.split(":", 1)[0])
        except Exception:
            pass
        if self.recorder is not None:
            try:
                self.recorder.record_event("stall", event, flush=True)
            except Exception:
                pass
        if self.event_sink is not None:
            try:
                self.event_sink({"type": "stall", "ts": time.time(), **event})
            except Exception:
                pass
        return event

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.check_once()
            except Exception:
                pass

    def start(self) -> "StallWatchdog":
        if self.running:
            return self
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-flight-watchdog", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        self._thread = None
        self._stop_event.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)


# -- crash forensics --------------------------------------------------------

_faulthandler_file = None  # keep the fd alive for the process lifetime


def enable_fault_handler(directory: str) -> Optional[str]:
    """Point :mod:`faulthandler` at a log inside the ring directory.

    Native-level hangs and SIGSEGV then leave stack evidence next to the
    ring even when no Python-level watchdog ever got to run.  Returns the
    log path, or ``None`` if faulthandler is unavailable.
    """
    global _faulthandler_file
    try:
        import faulthandler
    except ImportError:  # pragma: no cover - stdlib since 3.3
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, FAULTHANDLER_FILE)
    fh = open(path, "a", encoding="utf-8")
    faulthandler.enable(file=fh)
    _faulthandler_file = fh
    return path


def detect_unclean_shutdown(directory: str) -> Optional[dict]:
    """The previous session's dirty marker, or ``None`` if it shut down
    cleanly (or never ran, or *is* the current process)."""
    marker = _read_json(os.path.join(directory, SESSION_FILE))
    if not marker or marker.get("clean"):
        return None
    if marker.get("pid") == os.getpid():
        return None
    return marker


def build_crash_report(directory: str, window_s: float = 30.0,
                       journal_recovery: Optional[dict] = None) -> dict:
    """Reconstruct the last pre-crash window **from the ring alone**.

    This function never opens the docstore — it reads chunk files, the
    session marker, and the faulthandler log.  ``journal_recovery`` is
    the store's ``last_recovery`` report when the caller happens to have
    one (``repro serve`` at startup); ``repro diagnose --crash`` instead
    relies on the journal state embedded in the final snapshots.
    """
    decoded = decode_ring(directory)
    snaps = decoded["snapshots"]
    report: Dict[str, Any] = {
        "flight_dir": directory,
        "window_s": window_s,
        "session": _read_json(os.path.join(directory, SESSION_FILE)),
        "chunks": decoded["chunks"],
        "snapshots_total": len(snaps),
        "decode_warnings": decoded["warnings"],
        "journal_recovery": journal_recovery,
    }
    if snaps:
        end = snaps[-1].get("ts", 0.0)
        window = [s for s in snaps if s.get("ts", 0.0) >= end - window_s]
        final = window[-1]
        server = final.get("server") or {}
        report["last_snapshot_ts"] = end
        report["snapshots_in_window"] = len(window)
        report["final"] = {
            "ts": final.get("ts"),
            "seq": final.get("seq"),
            "opcounters": server.get("opcounters"),
            "locks": server.get("locks"),
            "journal": server.get("journal"),
            "process": final.get("process"),
        }
        report["window_delta"] = diff_window(window)
        report["anomalies"] = scan_anomalies(window)
        report["events"] = [e for e in decoded["events"]
                            if e.get("ts", 0.0) >= end - window_s]
    else:
        report["events"] = decoded["events"]
    fault_path = os.path.join(directory, FAULTHANDLER_FILE)
    try:
        with open(fault_path, "r", encoding="utf-8", errors="replace") as fh:
            tail = fh.readlines()[-40:]
        if tail:
            report["faulthandler_tail"] = [line.rstrip("\n") for line in tail]
    except OSError:
        pass
    return report


def generate_crash_report(directory: str,
                          journal_recovery: Optional[dict] = None,
                          window_s: float = 30.0) -> Optional[dict]:
    """Startup-time forensics: if the previous session died unclean,
    write ``crash_report.json`` and acknowledge the marker.

    Returns the report (also when one already exists for this marker),
    or ``None`` when the previous shutdown was clean.
    """
    marker = detect_unclean_shutdown(directory)
    if marker is None:
        return None
    report = build_crash_report(directory, window_s=window_s,
                                journal_recovery=journal_recovery)
    report["generated_at"] = time.time()
    report["session"] = marker
    try:
        _write_json_atomic(
            os.path.join(directory, CRASH_REPORT_FILE), report)
        # Acknowledge so the *next* startup doesn't re-report the same
        # death; the report file itself persists until overwritten.
        marker = dict(marker)
        marker["clean"] = True
        marker["crash_reported_at"] = report["generated_at"]
        _write_json_atomic(os.path.join(directory, SESSION_FILE), marker)
    except OSError:
        pass
    return report


def read_crash_report(directory: str) -> Optional[dict]:
    """The persisted ``crash_report.json``, or ``None``."""
    return _read_json(os.path.join(directory, CRASH_REPORT_FILE))


# -- the process-global recorder -------------------------------------------
#
# Mirrors the profiler's global: the wire `flight` op, GET /debug/flight,
# and the CLI all observe the one recorder `repro serve` started, without
# plumbing the instance through every constructor.

_global_lock = threading.Lock()
_global_recorder: Optional[FlightRecorder] = None


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The process-global flight recorder, or ``None`` if never started."""
    return _global_recorder


def set_flight_recorder(recorder: Optional[FlightRecorder]
                        ) -> Optional[FlightRecorder]:
    """Swap the process-global recorder (returns the previous one)."""
    global _global_recorder
    with _global_lock:
        previous = _global_recorder
        _global_recorder = recorder
    return previous


def start_flight_recorder(store: Any, directory: str,
                          interval_s: float = DEFAULT_INTERVAL_S,
                          **kwargs: Any) -> FlightRecorder:
    """Start (or return) the process-global flight recorder.

    A fresh call while one is already running returns the running
    instance unchanged; stop it first to change the cadence or directory.
    """
    global _global_recorder
    with _global_lock:
        recorder = _global_recorder
        if recorder is not None and recorder.running:
            return recorder
        recorder = FlightRecorder(store, directory, interval_s=interval_s,
                                  **kwargs)
        _global_recorder = recorder
    return recorder.start()


def stop_flight_recorder() -> Optional[dict]:
    """Stop the process-global recorder; returns its final status."""
    with _global_lock:
        recorder = _global_recorder
    if recorder is None:
        return None
    return recorder.stop()
