"""Content-addressed blob store with datastore references (GridFS analog).

The paper keeps bulky raw calculation output *outside* the database — on the
HPC filesystem or staged to HDFS — while "MongoDB will continue to contain
references to the data that allow queries to be performed" (§IV-B2).  The
:class:`FileStore` is that pattern as a component: blobs live on disk under
their SHA-1 (so identical outputs from duplicate runs are stored once), and
each ``put`` returns a small reference document that callers embed in task
documents; ``get`` resolves references back to bytes.

The loader uses it to archive raw run files so the tasks collection holds a
queryable pointer to every OUTCAR without ever holding the bulk.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from typing import Dict, List, Optional, Union

from ..errors import DocstoreError

__all__ = ["FileStore"]


class FileStore:
    """Content-addressed blobs under ``<root>/<aa>/<sha1>``."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- writing -----------------------------------------------------------

    def _path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest)

    def put_bytes(self, data: bytes, filename: str = "blob",
                  content_type: str = "application/octet-stream") -> dict:
        """Store ``data``; returns the reference document."""
        digest = hashlib.sha1(data).hexdigest()
        path = self._path_for(digest)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        return {
            "blob_id": digest,
            "filename": filename,
            "length": len(data),
            "content_type": content_type,
        }

    def put_file(self, source_path: str,
                 content_type: str = "application/octet-stream") -> dict:
        """Store a file from disk (streamed, not loaded whole)."""
        sha = hashlib.sha1()
        size = 0
        with open(source_path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 16), b""):
                sha.update(chunk)
                size += len(chunk)
        digest = sha.hexdigest()
        path = self._path_for(digest)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            shutil.copyfile(source_path, path + ".tmp")
            os.replace(path + ".tmp", path)
        return {
            "blob_id": digest,
            "filename": os.path.basename(source_path),
            "length": size,
            "content_type": content_type,
        }

    # -- reading ------------------------------------------------------------------

    def get(self, ref: Union[str, dict]) -> bytes:
        """Resolve a reference (doc or bare blob id) to its bytes."""
        digest = ref["blob_id"] if isinstance(ref, dict) else ref
        path = self._path_for(digest)
        if not os.path.exists(path):
            raise DocstoreError(f"no blob {digest!r} in file store")
        with open(path, "rb") as fh:
            data = fh.read()
        if hashlib.sha1(data).hexdigest() != digest:
            raise DocstoreError(f"blob {digest!r} failed its integrity check")
        return data

    def exists(self, ref: Union[str, dict]) -> bool:
        digest = ref["blob_id"] if isinstance(ref, dict) else ref
        return os.path.exists(self._path_for(digest))

    def delete(self, ref: Union[str, dict]) -> bool:
        digest = ref["blob_id"] if isinstance(ref, dict) else ref
        path = self._path_for(digest)
        if os.path.exists(path):
            os.remove(path)
            return True
        return False

    # -- bulk / admin -----------------------------------------------------------------

    def archive_directory(self, directory: str,
                          patterns: Optional[List[str]] = None) -> Dict[str, dict]:
        """Store selected files of a run directory; returns name → ref."""
        import fnmatch

        refs: Dict[str, dict] = {}
        for name in sorted(os.listdir(directory)):
            full = os.path.join(directory, name)
            if not os.path.isfile(full):
                continue
            if patterns and not any(fnmatch.fnmatch(name, p) for p in patterns):
                continue
            refs[name] = self.put_file(full, content_type="text/plain")
        return refs

    def stats(self) -> dict:
        n = 0
        total = 0
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".tmp"):
                    continue
                n += 1
                total += os.path.getsize(os.path.join(dirpath, name))
        return {"blobs": n, "bytes": total}
