"""Databases and the client entry point.

A :class:`Database` is a namespace of collections; :class:`DocumentStore`
plays the role of ``MongoClient`` — it owns databases and the optional
persistence layer.

Every collection operation reports into :meth:`Database._observe_op`, the
single instrumentation funnel behind four consumers:

* **opcounters** — MongoDB ``serverStatus``-style totals per op category
  (insert/query/update/delete/getmore/command), see :meth:`server_status`;
* **top accounting** — ``mongotop``-style cumulative read/write time per
  collection, see :meth:`top`;
* **the profiler** — MongoDB semantics: level 0 off, level 1 records read
  ops plus anything slower than ``slowms``, level 2 records every op, all
  into a queryable ``system.profile`` collection (the data behind the
  paper's Figure 5);
* **the metrics registry** — ``repro_docstore_ops_total`` and
  ``repro_docstore_op_millis`` in :mod:`repro.obs.metrics`;
* **tracing** — when a span is current (e.g. inside a firework launch),
  each op attaches itself as a timed ``docstore.<op>`` child span.

``system.*`` collections are exempt from observation, so the profiler can
write its own records without recursing.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..errors import CollectionNotFound, DocstoreError
from ..obs import current_span, get_registry
from ..obs.procstats import process_status
from .collection import Collection

__all__ = ["Database", "DocumentStore"]

#: Op categories reported by ``serverStatus``-style opcounters.
OPCOUNTER_KEYS = ("insert", "query", "update", "delete", "getmore", "command")

#: Default slow-op threshold (ms) for profiling level 1, as in MongoDB.
DEFAULT_SLOWMS = 100.0

#: Profile records kept before the oldest are evicted (capped collection).
PROFILE_CAP = 4096

#: Op names treated as reads: recorded at profiling level 1 regardless of
#: latency (our level 1 is "reads + slow ops" so the Fig. 5 query log can
#: be collected without drowning in write records).
_READ_OPS = frozenset({"find", "findOne", "aggregate", "getmore"})

#: Opcounter categories classified as writes by per-collection ``top()``
#: accounting; everything else (query/getmore/command) counts as a read.
_WRITE_KINDS = frozenset({"insert", "update", "delete"})


class Database:
    """A named namespace of collections, created lazily on access."""

    def __init__(self, name: str, client: Optional["DocumentStore"] = None):
        if not name or any(c in name for c in " $/\\."):
            raise DocstoreError(f"invalid database name {name!r}")
        self.name = name
        self.client = client
        self._collections: Dict[str, Collection] = {}
        # Database-level lock guarding the collection map (create/drop).
        self._lock = threading.RLock()
        # Opcounter/top accounting has its own mutex: it is updated from
        # inside collection operations (which may hold a collection lock),
        # and must never nest with the map lock above — a drop waiting on
        # a collection lock while holding the map lock would deadlock
        # against an op reporting its timing.
        self._stats_lock = threading.Lock()
        self._profile_level = 0
        self._slowms = DEFAULT_SLOWMS
        self._opcounters: Dict[str, int] = {k: 0 for k in OPCOUNTER_KEYS}
        self._top: Dict[str, Dict[str, float]] = {}
        self._started_at = time.time()

    def __getitem__(self, name: str) -> Collection:
        return self.get_collection(name)

    def __getattr__(self, name: str) -> Collection:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.get_collection(name)

    def get_collection(self, name: str, create: bool = True) -> Collection:
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                if not create:
                    raise CollectionNotFound(
                        f"collection {name!r} not found in db {self.name!r}"
                    )
                coll = Collection(name, database=self)
                self._collections[name] = coll
            return coll

    def list_collection_names(self) -> List[str]:
        """User collection names (``system.*`` namespaces excluded)."""
        with self._lock:
            return sorted(n for n in self._collections
                          if not n.startswith("system."))

    def drop_collection(self, name: str) -> None:
        # Pop under the map lock, drop outside it: taking the collection's
        # exclusive lock while holding the map lock inverts the ordering
        # used by in-flight operations and can deadlock under load.
        with self._lock:
            coll = self._collections.pop(name, None)
        if coll is not None:
            coll.drop()

    # -- the instrumentation funnel ---------------------------------------

    def _observe_op(
        self,
        coll_name: str,
        op: str,
        kind: str,
        query: Any,
        elapsed_s: float,
        nreturned: int = 0,
        n_ops: int = 1,
        docs_examined: Optional[int] = None,
        plan: Optional[str] = None,
        stages: Optional[List[dict]] = None,
    ) -> None:
        """Called by :class:`Collection` after every operation.

        ``op`` is the precise operation name (``find``, ``insert``,
        ``findAndModify``...), ``kind`` its opcounter category.
        """
        if coll_name.startswith("system."):
            return
        millis = elapsed_s * 1e3
        side = "write" if kind in _WRITE_KINDS else "read"
        with self._stats_lock:
            self._opcounters[kind] = self._opcounters.get(kind, 0) + n_ops
            bucket = self._top.setdefault(coll_name, {
                "total_ms": 0.0, "read_ms": 0.0, "write_ms": 0.0,
                "read_count": 0, "write_count": 0,
            })
            bucket["total_ms"] += millis
            bucket[f"{side}_ms"] += millis
            bucket[f"{side}_count"] += n_ops

        registry = get_registry()
        registry.counter(
            "repro_docstore_ops_total", "datastore operations by category"
        ).inc(n_ops, db=self.name, op=kind)
        registry.histogram(
            "repro_docstore_op_millis", "datastore op latency"
        ).observe(millis, db=self.name, op=kind)

        parent = current_span()
        if parent is not None:
            parent.record(
                f"docstore.{op}", duration_ms=millis,
                ns=f"{self.name}.{coll_name}", nreturned=nreturned,
            )

        level = self._profile_level
        if level >= 2 or (level == 1 and (op in _READ_OPS
                                          or millis >= self._slowms)):
            # Per-stage executionStats are bulky; attach them only for
            # pipelines worth dissecting — slow ones, or full profiling.
            if stages is not None and not (level >= 2
                                           or millis >= self._slowms):
                stages = None
            self._record_profile(coll_name, op, query, millis, nreturned,
                                 docs_examined, plan,
                                 trace_id=parent.trace_id
                                 if parent is not None else None,
                                 stages=stages)

    # -- profiling (per-query timing, powers Fig. 5 reproduction) ---------

    def set_profiling_level(self, level: int,
                            slowms: Optional[float] = None) -> None:
        """0 = off; 1 = reads and slow ops; 2 = every operation.

        Mirrors ``db.setProfilingLevel(level, slowms)``: records land in
        the queryable ``system.profile`` collection.
        """
        if level not in (0, 1, 2):
            raise DocstoreError(f"profiling level must be 0, 1, or 2: {level}")
        with self._lock:
            self._profile_level = level
            if slowms is not None:
                self._slowms = float(slowms)

    def get_profiling_level(self) -> int:
        return self._profile_level

    @property
    def slowms(self) -> float:
        return self._slowms

    def _record_profile(
        self,
        ns: str,
        op: str,
        query: Any,
        millis: float,
        nreturned: int,
        docs_examined: Optional[int],
        plan: Optional[str],
        trace_id: Optional[str] = None,
        stages: Optional[List[dict]] = None,
    ) -> None:
        entry = {
            "ns": f"{self.name}.{ns}",
            "op": op,
            "query": query,
            "millis": millis,
            "nreturned": nreturned,
            "ts": time.time(),
        }
        if trace_id is not None:
            # Distributed tracing: the profile entry names the trace that
            # caused it, so a slow server-side op links back to the client.
            entry["trace_id"] = trace_id
        if docs_examined is not None:
            entry["docsExamined"] = docs_examined
        if plan is not None:
            entry["planSummary"] = plan
        if stages is not None:
            # Per-stage aggregation executionStats (docs in/out, elapsed,
            # $group/$sort state size) — the advisor's $match-first signal.
            entry["stages"] = stages
        profile = self.get_collection("system.profile")
        with profile._lock:
            try:
                profile._insert(entry, _notify=False)
            except DocstoreError:
                # Query held a value the store cannot hold; keep its repr.
                entry["query"] = repr(query)
                profile._insert(entry, _notify=False)
            # Capped-collection behavior: evict the oldest records.
            while len(profile) > PROFILE_CAP:
                oldest = min(profile._docs)
                profile._delete_by_id(profile._docs[oldest]["_id"])

    @property
    def profile_log(self) -> List[dict]:
        """Recorded op timings (the ``system.profile`` contents)."""
        with self._lock:
            profile = self._collections.get("system.profile")
        return profile.all_documents() if profile is not None else []

    def clear_profile_log(self) -> None:
        with self._lock:
            profile = self._collections.get("system.profile")
        if profile is not None:
            with profile._lock:
                for _id in [d["_id"] for d in profile._docs.values()]:
                    profile._delete_by_id(_id)

    # -- serverStatus / dbStats -------------------------------------------

    def lock_status(self, limit: int = 10) -> dict:
        """Aggregate reader-writer lock accounting across collections.

        Sums the per-collection :meth:`Collection.lock_stats` acquire
        counts and cumulative wait time — the ``server_status()["locks"]``
        payload, and the number an operator watches to see whether the
        engine is read-starved or write-starved.  ``top_contended`` ranks
        the worst (waiter site, holder site) pairings across collections
        by cumulative wait, each row tagged with its collection — the
        attribution layer of the same story: not just *that* the engine
        waited, but *which call path waited on which*.
        """
        with self._lock:
            colls = [c for n, c in self._collections.items()
                     if not n.startswith("system.")]
        out = {
            "read_acquires": 0, "write_acquires": 0,
            "read_wait_ms": 0.0, "write_wait_ms": 0.0,
            "read_contended": 0, "write_contended": 0,
            "active_readers": 0, "writers_held": 0, "waiting_writers": 0,
        }
        top: List[dict] = []
        for coll in colls:
            stats = coll.lock_stats()
            for key in ("read_acquires", "write_acquires", "read_wait_ms",
                        "write_wait_ms", "read_contended", "write_contended",
                        "active_readers", "waiting_writers"):
                out[key] += stats[key]
            out["writers_held"] += int(stats["writer_held"])
            for row in coll.lock_contention(limit=limit):
                top.append({"coll": coll.name, **row})
        top.sort(key=lambda r: (-r["wait_ms"], r["coll"]))
        out["top_contended"] = top[:limit]
        return out

    def plan_cache_status(self) -> dict:
        """Aggregate plan-cache counters across collections.

        Returns ``{"totals": {...}, "collections": {name: stats}}`` with
        hit/miss/eviction/invalidation/replan counts — the data behind
        ``server_status()["planCache"]`` and the ``plan_cache`` wire op.
        """
        with self._lock:
            colls = [c for n, c in self._collections.items()
                     if not n.startswith("system.")]
        totals = {"size": 0, "hits": 0, "misses": 0, "evictions": 0,
                  "invalidations": 0, "replans": 0}
        per_collection: Dict[str, dict] = {}
        for coll in colls:
            stats = coll.plan_cache_stats()
            per_collection[coll.name] = stats
            for key in totals:
                totals[key] += stats.get(key, 0)
        return {"totals": totals, "collections": per_collection}

    def server_status(self) -> dict:
        """MongoDB ``serverStatus``-style snapshot of this database."""
        with self._stats_lock:
            opcounters = dict(self._opcounters)
        with self._lock:
            level = self._profile_level
            slowms = self._slowms
        return {
            "db": self.name,
            "uptime_s": time.time() - self._started_at,
            "opcounters": opcounters,
            "profiling": {"level": level, "slowms": slowms},
            "collections": len(self.list_collection_names()),
            "objects": sum(
                len(c) for n, c in self._collections.items()
                if not n.startswith("system.")
            ),
            "locks": self.lock_status(),
            "planCache": self.plan_cache_status()["totals"],
        }

    def top(self) -> Dict[str, dict]:
        """Per-collection cumulative read/write time (``mongotop`` source).

        Keys are full namespaces (``db.collection``); values carry
        cumulative ``total_ms``/``read_ms``/``write_ms`` and op counts.
        The :class:`repro.obs.health.TopSampler` diffs two calls to render
        per-interval activity.
        """
        with self._stats_lock:
            return {
                f"{self.name}.{coll}": dict(bucket)
                for coll, bucket in self._top.items()
            }

    def command_stats(self) -> dict:
        """dbStats-like summary across collections."""
        stats = [c.stats() for n, c in self._collections.items()
                 if not n.startswith("system.")]
        return {
            "db": self.name,
            "collections": len(stats),
            "objects": sum(s["count"] for s in stats),
            "dataSize": sum(s["size"] for s in stats),
            "indexes": sum(s["nindexes"] for s in stats),
        }


class DocumentStore:
    """Top-level client owning databases (MongoClient analog).

    Optionally bound to a persistence directory — see
    :mod:`repro.docstore.persistence` — so snapshots and the write-ahead
    journal have a home.  A bare ``DocumentStore()`` is purely in-memory.

    ``fsync`` selects the journal's durability policy (``"always"``,
    ``"interval"``, or ``"never"``) and ``fsync_interval_s`` the cadence
    of the ``"interval"`` policy; both are ignored for in-memory stores.
    """

    def __init__(self, persistence_dir: Optional[str] = None,
                 fsync: str = "interval", fsync_interval_s: float = 0.05):
        from .ops import OperationRegistry

        self._databases: Dict[str, Database] = {}
        self._lock = threading.RLock()
        self._ops = OperationRegistry()
        self._ttl_reaper: Optional[Any] = None
        self._cluster: Optional[Any] = None
        self.persistence_dir = persistence_dir
        self._persistence = None
        if persistence_dir is not None:
            from .persistence import PersistenceManager

            self._persistence = PersistenceManager(
                self, persistence_dir, fsync=fsync,
                fsync_interval_s=fsync_interval_s,
            )
            self._persistence.recover()

    def __getitem__(self, name: str) -> Database:
        return self.get_database(name)

    def __getattr__(self, name: str) -> Database:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.get_database(name)

    def get_database(self, name: str) -> Database:
        with self._lock:
            db = self._databases.get(name)
            if db is None:
                db = Database(name, client=self)
                self._databases[name] = db
                if self._persistence is not None:
                    self._persistence.watch_database(db)
            return db

    def list_database_names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        with self._lock:
            db = self._databases.pop(name, None)
        if db is not None:
            for coll_name in db.list_collection_names():
                db.drop_collection(coll_name)

    def server_status(self) -> dict:
        """Aggregate serverStatus across every database."""
        with self._lock:
            databases = list(self._databases.values())
        opcounters = {k: 0 for k in OPCOUNTER_KEYS}
        objects = collections = 0
        locks = {
            "read_acquires": 0, "write_acquires": 0,
            "read_wait_ms": 0.0, "write_wait_ms": 0.0,
            "read_contended": 0, "write_contended": 0,
            "active_readers": 0, "writers_held": 0, "waiting_writers": 0,
        }
        plan_cache = {"size": 0, "hits": 0, "misses": 0, "evictions": 0,
                      "invalidations": 0, "replans": 0}
        top_contended: List[dict] = []
        for db in databases:
            status = db.server_status()
            for key, value in status["opcounters"].items():
                opcounters[key] = opcounters.get(key, 0) + value
            objects += status["objects"]
            collections += status["collections"]
            for key, value in status["locks"].items():
                if key == "top_contended":
                    top_contended.extend(
                        {"db": db.name, **row} for row in value
                    )
                    continue
                locks[key] = locks.get(key, 0) + value
            for key, value in status["planCache"].items():
                plan_cache[key] = plan_cache.get(key, 0) + value
        top_contended.sort(key=lambda r: (-r["wait_ms"], r["db"]))
        locks["top_contended"] = top_contended[:10]
        out = {
            "databases": sorted(db.name for db in databases),
            "opcounters": opcounters,
            "objects": objects,
            "collections": collections,
            "locks": locks,
            "planCache": plan_cache,
            "process": process_status(),
        }
        if self._persistence is not None:
            out["journal"] = self._persistence.journal_stats()
        if self._ttl_reaper is not None:
            out["ttl"] = self._ttl_reaper.stats()
        if self._cluster is not None:
            out["sharding"] = self._cluster.sharding_stats()
        return out

    def attach_cluster(self, cluster: Any) -> Any:
        """Bind a :class:`~repro.docstore.cluster.ShardedCluster` to this
        store so ``server_status()["sharding"]`` (and therefore mongostat,
        the health monitor, and the telemetry sampler) reports its
        chunk-distribution and migration/election counters."""
        self._cluster = cluster
        return cluster

    @property
    def cluster(self) -> Optional[Any]:
        return self._cluster

    @property
    def last_recovery(self) -> Optional[dict]:
        """Journal replay accounting from the most recent ``recover()``
        (``replayed``/``skipped``/``truncated_at``/``reason``), or ``None``
        for in-memory stores or when no journal existed at startup."""
        if self._persistence is None:
            return None
        return self._persistence.last_recovery

    def lock_report(self, limit: int = 10) -> dict:
        """Store-wide lock accounting plus top contended attribution.

        Lighter than :meth:`server_status` (no plan-cache or object
        counts) — the payload behind the ``lock_report`` wire op, the
        ``GET /debug/locks`` endpoint, and ``repro profile --locks``.
        """
        with self._lock:
            databases = list(self._databases.values())
        totals: Dict[str, Any] = {
            "read_acquires": 0, "write_acquires": 0,
            "read_wait_ms": 0.0, "write_wait_ms": 0.0,
            "read_contended": 0, "write_contended": 0,
            "active_readers": 0, "writers_held": 0, "waiting_writers": 0,
        }
        top: List[dict] = []
        for db in databases:
            status = db.lock_status(limit=limit)
            for key, value in status.items():
                if key == "top_contended":
                    top.extend({"db": db.name, **row} for row in value)
                else:
                    totals[key] = totals.get(key, 0) + value
        top.sort(key=lambda r: (-r["wait_ms"], r["db"]))
        return {"totals": totals, "top_contended": top[:limit]}

    # -- live operation introspection -------------------------------------

    def current_op(self) -> List[dict]:
        """Every in-flight operation on this store (``db.currentOp()``)."""
        return self._ops.current_op()

    def kill_op(self, opid: int) -> bool:
        """Cooperatively terminate the operation ``opid`` (``db.killOp``)."""
        return self._ops.kill_op(opid)

    def snapshot(self) -> None:
        """Write a full snapshot to the persistence directory."""
        if self._persistence is None:
            raise DocstoreError("store has no persistence directory")
        self._persistence.snapshot()

    # -- TTL retention -----------------------------------------------------

    def start_ttl_reaper(self, interval_s: Optional[float] = None) -> Any:
        """Start (or return) the store's background TTL reaper.

        Collections with ``create_index(..., expire_after_seconds=N)``
        indexes get swept every ``interval_s`` seconds; see
        :mod:`repro.docstore.ttl`.
        """
        from .ttl import DEFAULT_INTERVAL_S, TTLReaper

        with self._lock:
            if self._ttl_reaper is None:
                self._ttl_reaper = TTLReaper(
                    self,
                    interval_s=(DEFAULT_INTERVAL_S if interval_s is None
                                else interval_s),
                )
            elif interval_s is not None:
                self._ttl_reaper.interval_s = float(interval_s)
            reaper = self._ttl_reaper
        return reaper.start()

    def stop_ttl_reaper(self) -> None:
        with self._lock:
            reaper = self._ttl_reaper
        if reaper is not None:
            reaper.stop()

    @property
    def ttl_reaper(self) -> Any:
        return self._ttl_reaper

    def close(self) -> None:
        self.stop_ttl_reaper()
        if self._persistence is not None:
            self._persistence.close()
