"""Databases and the client entry point.

A :class:`Database` is a namespace of collections; :class:`DocumentStore`
plays the role of ``MongoClient`` — it owns databases, the optional
persistence layer, and the profiling switch that records per-query latency
(the data behind the paper's Figure 5).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..errors import CollectionNotFound, DocstoreError
from .collection import Collection

__all__ = ["Database", "DocumentStore"]


class Database:
    """A named namespace of collections, created lazily on access."""

    def __init__(self, name: str, client: Optional["DocumentStore"] = None):
        if not name or any(c in name for c in " $/\\."):
            raise DocstoreError(f"invalid database name {name!r}")
        self.name = name
        self.client = client
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._profile_level = 0
        self._profile_log: List[dict] = []

    def __getitem__(self, name: str) -> Collection:
        return self.get_collection(name)

    def __getattr__(self, name: str) -> Collection:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.get_collection(name)

    def get_collection(self, name: str, create: bool = True) -> Collection:
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                if not create:
                    raise CollectionNotFound(
                        f"collection {name!r} not found in db {self.name!r}"
                    )
                coll = Collection(name, database=self)
                if self._profile_level > 0:
                    self._attach_profiler(coll)
                self._collections[name] = coll
            return coll

    def list_collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            coll = self._collections.pop(name, None)
            if coll is not None:
                coll.drop()

    # -- profiling (per-query timing, powers Fig. 5 reproduction) ---------

    def set_profiling_level(self, level: int) -> None:
        """0 = off, 1+ = record every find/aggregate with wall time."""
        with self._lock:
            self._profile_level = level
            if level > 0:
                for coll in self._collections.values():
                    self._attach_profiler(coll)

    def _attach_profiler(self, coll: Collection) -> None:
        if getattr(coll, "_profiled", False):
            return
        coll._profiled = True  # type: ignore[attr-defined]
        original_find = coll.find
        original_agg = coll.aggregate
        db = self

        def timed_find(query=None, projection=None):
            cursor = original_find(query, projection)
            original_execute = cursor._execute

            def timed_execute():
                t0 = time.perf_counter()
                docs = original_execute()
                elapsed = time.perf_counter() - t0
                db._record_profile(coll.name, "find", query or {}, elapsed, len(docs))
                return docs

            cursor._execute = timed_execute  # type: ignore[method-assign]
            return cursor

        def timed_aggregate(pipeline):
            t0 = time.perf_counter()
            out = original_agg(pipeline)
            elapsed = time.perf_counter() - t0
            db._record_profile(coll.name, "aggregate", {"pipeline": len(pipeline)}, elapsed, len(out))
            return out

        coll.find = timed_find  # type: ignore[method-assign]
        coll.aggregate = timed_aggregate  # type: ignore[method-assign]

    def _record_profile(
        self, ns: str, op: str, query: Any, elapsed_s: float, nreturned: int
    ) -> None:
        self._profile_log.append(
            {
                "ns": f"{self.name}.{ns}",
                "op": op,
                "query": query,
                "millis": elapsed_s * 1e3,
                "nreturned": nreturned,
                "ts": time.time(),
            }
        )

    @property
    def profile_log(self) -> List[dict]:
        """Recorded query timings (like Mongo's system.profile collection)."""
        return list(self._profile_log)

    def clear_profile_log(self) -> None:
        self._profile_log.clear()

    def command_stats(self) -> dict:
        """dbStats-like summary across collections."""
        stats = [c.stats() for c in self._collections.values()]
        return {
            "db": self.name,
            "collections": len(stats),
            "objects": sum(s["count"] for s in stats),
            "dataSize": sum(s["size"] for s in stats),
            "indexes": sum(s["nindexes"] for s in stats),
        }


class DocumentStore:
    """Top-level client owning databases (MongoClient analog).

    Optionally bound to a persistence directory — see
    :mod:`repro.docstore.persistence` — so snapshots and the journal have a
    home.  A bare ``DocumentStore()`` is purely in-memory.
    """

    def __init__(self, persistence_dir: Optional[str] = None):
        self._databases: Dict[str, Database] = {}
        self._lock = threading.RLock()
        self.persistence_dir = persistence_dir
        self._persistence = None
        if persistence_dir is not None:
            from .persistence import PersistenceManager

            self._persistence = PersistenceManager(self, persistence_dir)
            self._persistence.recover()

    def __getitem__(self, name: str) -> Database:
        return self.get_database(name)

    def __getattr__(self, name: str) -> Database:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.get_database(name)

    def get_database(self, name: str) -> Database:
        with self._lock:
            db = self._databases.get(name)
            if db is None:
                db = Database(name, client=self)
                self._databases[name] = db
                if self._persistence is not None:
                    self._persistence.watch_database(db)
            return db

    def list_database_names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        with self._lock:
            db = self._databases.pop(name, None)
            if db is not None:
                for coll_name in db.list_collection_names():
                    db.drop_collection(coll_name)

    def snapshot(self) -> None:
        """Write a full snapshot to the persistence directory."""
        if self._persistence is None:
            raise DocstoreError("store has no persistence directory")
        self._persistence.snapshot()

    def close(self) -> None:
        if self._persistence is not None:
            self._persistence.close()
