"""Document utilities: dotted-path access, deep copies, JSON encoding.

MongoDB addresses nested fields with dotted paths (``"spec.vasp.incar.ENCUT"``)
and treats integer path components as array indexes.  Every layer of the
reproduction — the query matcher, the update engine, the indexes, the
QueryEngine alias table — goes through the helpers in this module so the
dotted-path semantics live in exactly one place.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterator, List, Mapping, Tuple

from ..errors import DocstoreError
from .objectid import ObjectId

__all__ = [
    "MISSING",
    "split_path",
    "get_path",
    "get_path_multi",
    "set_path",
    "unset_path",
    "walk",
    "deep_copy_doc",
    "validate_document",
    "document_to_json",
    "document_from_json",
    "doc_size_bytes",
]


class _Missing:
    """Sentinel distinguishing 'field absent' from 'field is None'."""

    _instance = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


def split_path(path: str) -> List[str]:
    """Split ``"a.b.0.c"`` into its components; reject empty components."""
    if not path:
        raise DocstoreError("empty field path")
    parts = path.split(".")
    if any(p == "" for p in parts):
        raise DocstoreError(f"field path {path!r} has an empty component")
    return parts


def get_path(doc: Any, path: str) -> Any:
    """Return the value at dotted ``path`` or :data:`MISSING`.

    Follows Mongo semantics for the *scalar* interpretation: integer parts
    index into lists; non-integer parts only traverse dicts.
    """
    current = doc
    for part in split_path(path):
        if isinstance(current, Mapping):
            if part in current:
                current = current[part]
            else:
                return MISSING
        elif isinstance(current, list):
            if part.isdigit():
                idx = int(part)
                if idx < len(current):
                    current = current[idx]
                else:
                    return MISSING
            else:
                return MISSING
        else:
            return MISSING
    return current


def get_path_multi(doc: Any, path: str) -> List[Any]:
    """Return *all* values addressed by ``path``, fanning out over arrays.

    Mongo query semantics: ``{"tags": "Li"}`` matches a document whose
    ``tags`` field is a list containing ``"Li"``.  This helper returns every
    candidate value the matcher must test: the value itself plus, for each
    array encountered along the path, each element's resolution.
    """
    results: List[Any] = []
    _collect(doc, split_path(path), 0, results)
    return results


def _collect(current: Any, parts: List[str], i: int, out: List[Any]) -> None:
    if i == len(parts):
        out.append(current)
        return
    part = parts[i]
    if isinstance(current, Mapping):
        if part in current:
            _collect(current[part], parts, i + 1, out)
    elif isinstance(current, list):
        if part.isdigit():
            idx = int(part)
            if idx < len(current):
                _collect(current[idx], parts, i + 1, out)
        # Fan out: apply remaining path to each element.
        for element in current:
            if isinstance(element, (Mapping, list)):
                _collect(element, parts, i, out)


def set_path(doc: dict, path: str, value: Any, create: bool = True) -> None:
    """Set ``path`` to ``value``, creating intermediate dicts/list slots.

    Integer components extend lists with ``None`` padding as Mongo does.
    """
    parts = split_path(path)
    current: Any = doc
    for j, part in enumerate(parts[:-1]):
        nxt = parts[j + 1]
        if isinstance(current, list):
            if not part.isdigit():
                raise DocstoreError(
                    f"cannot use non-numeric path component {part!r} on an array"
                )
            idx = int(part)
            while len(current) <= idx:
                current.append(None)
            if not isinstance(current[idx], (dict, list)) or current[idx] is None:
                if not create:
                    raise DocstoreError(f"missing intermediate at {part!r}")
                current[idx] = [] if nxt.isdigit() else {}
            current = current[idx]
        elif isinstance(current, dict):
            if part in current and not isinstance(current[part], (dict, list)) and current[part] is not None:
                raise DocstoreError(
                    f"cannot traverse scalar at {part!r} in path {path!r}"
                )
            if part not in current or not isinstance(current[part], (dict, list)):
                if not create:
                    raise DocstoreError(f"missing intermediate at {part!r}")
                current[part] = [] if nxt.isdigit() else {}
            current = current[part]
        else:
            raise DocstoreError(
                f"cannot traverse scalar value at {part!r} in path {path!r}"
            )
    last = parts[-1]
    if isinstance(current, list):
        if not last.isdigit():
            raise DocstoreError(f"cannot set field {last!r} on an array")
        idx = int(last)
        while len(current) <= idx:
            current.append(None)
        current[idx] = value
    elif isinstance(current, dict):
        current[last] = value
    else:
        raise DocstoreError(f"cannot set {last!r} on scalar in path {path!r}")


def unset_path(doc: dict, path: str) -> bool:
    """Remove the field at ``path``; return True if something was removed.

    Mongo's ``$unset`` on an array element sets it to ``None`` rather than
    shifting later elements; we reproduce that.
    """
    parts = split_path(path)
    current: Any = doc
    for part in parts[:-1]:
        if isinstance(current, Mapping):
            if part not in current:
                return False
            current = current[part]
        elif isinstance(current, list) and part.isdigit():
            idx = int(part)
            if idx >= len(current):
                return False
            current = current[idx]
        else:
            return False
    last = parts[-1]
    if isinstance(current, dict):
        if last in current:
            del current[last]
            return True
        return False
    if isinstance(current, list) and last.isdigit():
        idx = int(last)
        if idx < len(current):
            current[idx] = None
            return True
    return False


def walk(doc: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    """Yield ``(dotted_path, leaf_value)`` for every leaf of the document.

    Used by the complexity analyzer (Table I) and the V&V rule engine.
    Containers themselves are not yielded, only scalar leaves; empty
    containers are yielded as their own leaves so they are not invisible.
    """
    if isinstance(doc, Mapping):
        if not doc and prefix:
            yield prefix, doc
        for key, value in doc.items():
            sub = f"{prefix}.{key}" if prefix else str(key)
            yield from walk(value, sub)
    elif isinstance(doc, list):
        if not doc and prefix:
            yield prefix, doc
        for i, value in enumerate(doc):
            sub = f"{prefix}.{i}" if prefix else str(i)
            yield from walk(value, sub)
    else:
        yield prefix, doc


def deep_copy_doc(doc: Any) -> Any:
    """Deep-copy a document.

    Documents are JSON-like trees plus ObjectIds; ObjectIds are immutable so
    they are shared rather than copied.  A hand-rolled walk is several times
    faster than :func:`copy.deepcopy` for these shapes, and the collection
    copies every document on the way in and out, so this is hot.
    """
    if isinstance(doc, dict):
        return {k: deep_copy_doc(v) for k, v in doc.items()}
    if isinstance(doc, list):
        return [deep_copy_doc(v) for v in doc]
    if isinstance(doc, tuple):
        return [deep_copy_doc(v) for v in doc]
    return doc


_SCALARS = (str, int, float, bool, bytes, ObjectId, type(None))


def validate_document(doc: Any, _depth: int = 0) -> None:
    """Reject values a JSON-documents store cannot hold.

    Allowed: dicts with string keys, lists, str/int/float/bool/None/bytes and
    ObjectId.  NaN/Inf floats are allowed (Mongo allows them) but callers can
    screen them with V&V rules.  Depth is capped at 100 like MongoDB.
    """
    if _depth > 100:
        raise DocstoreError("document nesting exceeds 100 levels")
    if isinstance(doc, dict):
        for key, value in doc.items():
            if not isinstance(key, str):
                raise DocstoreError(f"document keys must be strings, got {key!r}")
            if key and "\x00" in key:
                raise DocstoreError("document keys may not contain NUL")
            validate_document(value, _depth + 1)
    elif isinstance(doc, (list, tuple)):
        for value in doc:
            validate_document(value, _depth + 1)
    elif not isinstance(doc, _SCALARS):
        raise DocstoreError(
            f"unsupported value type {type(doc).__name__!r} in document"
        )


class DocumentJSONEncoder(json.JSONEncoder):
    """JSON encoder rendering ObjectIds as ``{"$oid": "<hex>"}``."""

    def default(self, o: Any) -> Any:
        if isinstance(o, ObjectId):
            return {"$oid": o.hex()}
        if isinstance(o, bytes):
            return {"$bytes": o.hex()}
        return super().default(o)


def _decode_hook(obj: dict) -> Any:
    if len(obj) == 1:
        if "$oid" in obj and isinstance(obj["$oid"], str):
            return ObjectId(obj["$oid"])
        if "$bytes" in obj and isinstance(obj["$bytes"], str):
            return bytes.fromhex(obj["$bytes"])
    return obj


def document_to_json(doc: Any, **kwargs: Any) -> str:
    """Serialize a document to extended JSON (round-trips ObjectIds)."""
    return json.dumps(doc, cls=DocumentJSONEncoder, **kwargs)


def document_from_json(text: str) -> Any:
    """Parse extended JSON produced by :func:`document_to_json`."""
    return json.loads(text, object_hook=_decode_hook)


def doc_size_bytes(doc: Any) -> int:
    """Approximate on-disk size of a document (its JSON byte length)."""
    return len(document_to_json(doc).encode("utf-8"))


def floats_equal(a: float, b: float, rel: float = 1e-12) -> bool:
    """Tolerant float comparison used by V&V consistency rules."""
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-15)
