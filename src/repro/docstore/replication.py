"""Replication: a primary/secondary replica set driven by an oplog.

§IV-D2 points to MongoDB's replication for scaling reads and isolating the
datastore's roles (workflow queue vs. web back-end) onto separate servers.
We reproduce the mechanism: every write on the primary appends an idempotent
operation to a capped oplog; secondaries tail the oplog and apply entries in
order.  Reads can be directed at the primary or (possibly stale)
secondaries, and :meth:`ReplicaSet.step_down` promotes the most up-to-date
secondary, replaying the failover logic.

Replication here is *pull-on-demand* (``replicate()`` drains the oplog) so
tests and benches control staleness deterministically rather than racing a
background thread; ``start_background_replication`` exists for realism.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..errors import ReplicationError
from ..obs import active_span
from .database import Database
from .documents import deep_copy_doc

__all__ = ["Oplog", "ReplicaSet", "ReplicaNode"]


class Oplog:
    """Capped, append-only log of write operations with monotonic optimes."""

    def __init__(self, max_entries: int = 100_000):
        self.max_entries = max_entries
        self._entries: List[dict] = []
        self._next_optime = 1
        self._lock = threading.Lock()

    def append(self, db: str, op: str, payload: dict) -> int:
        with self._lock:
            optime = self._next_optime
            self._next_optime += 1
            self._entries.append(
                {
                    "ts": optime,
                    "wall": time.time(),
                    "db": db,
                    "op": op,
                    "payload": deep_copy_doc(payload),
                }
            )
            if len(self._entries) > self.max_entries:
                self._entries = self._entries[-self.max_entries :]
            return optime

    def entries_after(self, optime: int) -> List[dict]:
        with self._lock:
            if self._entries and self._entries[0]["ts"] > optime + 1:
                raise ReplicationError(
                    "oplog truncated past secondary optime; full resync required"
                )
            return [deep_copy_doc(e) for e in self._entries if e["ts"] > optime]

    @property
    def last_optime(self) -> int:
        with self._lock:
            return self._entries[-1]["ts"] if self._entries else 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ReplicaNode:
    """One member of a replica set: a database plus its applied optime."""

    def __init__(self, name: str):
        self.name = name
        self.database = Database(name.replace(":", "_"))
        self.applied_optime = 0
        self.is_primary = False

    def apply(self, entry: dict) -> None:
        """Apply one oplog entry idempotently."""
        payload = entry["payload"]
        coll = self.database.get_collection(payload["ns"])
        op = entry["op"]
        if op == "insert":
            doc = payload["doc"]
            if coll.find_one({"_id": doc["_id"]}) is None:
                coll.insert_one(doc)
        elif op == "update":
            coll.replace_one({"_id": payload["_id"]}, payload["doc"], upsert=True)
        elif op == "delete":
            coll.delete_one({"_id": payload["_id"]})
        elif op == "drop":
            coll.drop()
        else:
            raise ReplicationError(f"unknown oplog op {op!r}")
        self.applied_optime = entry["ts"]

    def lag(self, oplog: Oplog) -> int:
        """Entries this node is behind the primary."""
        return max(0, oplog.last_optime - self.applied_optime)


class ReplicaSet:
    """Primary + N secondaries coordinated through one oplog.

    All writes must go through :meth:`primary`; collections obtained from it
    automatically append to the oplog.  Reads honour a read preference.
    """

    def __init__(self, name: str, n_secondaries: int = 2):
        if n_secondaries < 0:
            raise ReplicationError("n_secondaries must be >= 0")
        self.name = name
        self.oplog = Oplog()
        self._nodes = [ReplicaNode(f"{name}:{i}") for i in range(n_secondaries + 1)]
        self._nodes[0].is_primary = True
        self._watched: Dict[int, set] = {}
        self._watch_primary()
        self._repl_thread: Optional[threading.Thread] = None
        self._stop_repl = threading.Event()
        self._rr = 0
        # Election bookkeeping, matching the cluster replica sets
        # (repro.docstore.cluster.replica): every step_down is a term bump
        # with an auditable per-node ballot.
        self.term = 0
        self.elections: List[dict] = []

    # -- wiring ------------------------------------------------------------

    def _watch_primary(self) -> None:
        primary = self.primary_node
        db = primary.database
        original_get = db.get_collection
        rs = self

        def wrapped_get(name: str, create: bool = True):
            coll = original_get(name, create)
            if not getattr(coll, "_oplogged", False):
                coll._oplogged = True
                coll.add_change_listener(
                    lambda op, payload: rs._on_primary_write(op, payload)
                )
            return coll

        db.get_collection = wrapped_get  # type: ignore[method-assign]

    def _on_primary_write(self, op: str, payload: dict) -> None:
        optime = self.oplog.append(self.primary_node.database.name, op, payload)
        self.primary_node.applied_optime = optime

    # -- membership -----------------------------------------------------------

    @property
    def primary_node(self) -> ReplicaNode:
        for node in self._nodes:
            if node.is_primary:
                return node
        raise ReplicationError("replica set has no primary")

    @property
    def primary(self) -> Database:
        """The writable database (all writes replicate from here)."""
        return self.primary_node.database

    @property
    def secondaries(self) -> List[ReplicaNode]:
        return [n for n in self._nodes if not n.is_primary]

    # -- replication --------------------------------------------------------------

    def replicate(self, node: Optional[ReplicaNode] = None) -> int:
        """Drain pending oplog entries into ``node`` (or all secondaries).

        Returns the number of entries applied.
        """
        targets = [node] if node is not None else self.secondaries
        applied = 0
        for target in targets:
            entries = self.oplog.entries_after(target.applied_optime)
            with active_span("replication.apply", node=target.name,
                             entries=len(entries)):
                for entry in entries:
                    target.apply(entry)
                    applied += 1
        return applied

    def start_background_replication(self, interval_s: float = 0.01) -> None:
        if self._repl_thread is not None:
            return
        self._stop_repl.clear()

        def loop() -> None:
            while not self._stop_repl.wait(interval_s):
                try:
                    self.replicate()
                except ReplicationError:
                    break

        self._repl_thread = threading.Thread(target=loop, daemon=True)
        self._repl_thread.start()

    def stop_background_replication(self) -> None:
        if self._repl_thread is not None:
            self._stop_repl.set()
            self._repl_thread.join(timeout=5)
            self._repl_thread = None

    # -- reads -------------------------------------------------------------------

    def read_database(self, preference: str = "primary") -> Database:
        """Pick a node per read preference: primary | secondary | nearest."""
        if preference == "primary":
            return self.primary
        secondaries = self.secondaries
        if not secondaries:
            if preference == "secondary":
                raise ReplicationError("no secondaries available")
            return self.primary
        if preference == "secondary":
            self._rr = (self._rr + 1) % len(secondaries)
            return secondaries[self._rr].database
        if preference == "nearest":
            nodes = self._nodes
            self._rr = (self._rr + 1) % len(nodes)
            return nodes[self._rr].database
        raise ReplicationError(f"unknown read preference {preference!r}")

    # -- failover -----------------------------------------------------------------

    def step_down(self) -> ReplicaNode:
        """Demote the primary and elect the most up-to-date secondary.

        The handover is recorded as a term bump with a per-node ballot:
        each member votes for the candidate iff the candidate's optime is
        at least its own (the same up-to-dateness rule the cluster-grade
        :class:`~repro.docstore.cluster.replica.ShardReplicaSet` enforces),
        and the promotion requires a majority.
        """
        secondaries = self.secondaries
        if not secondaries:
            raise ReplicationError("cannot step down: no secondaries")
        old_primary = self.primary_node
        new_primary = max(secondaries, key=lambda n: n.applied_optime)
        # Bring the winner fully up to date before asking for votes.
        self.replicate(new_primary)
        self.term += 1
        votes = {
            n.name: n.applied_optime <= new_primary.applied_optime
            for n in self._nodes
        }
        ballot = {
            "term": self.term,
            "candidate": new_primary.name,
            "votes": votes,
            "granted": sum(votes.values()),
        }
        self.elections.append(ballot)
        if ballot["granted"] < len(self._nodes) // 2 + 1:
            raise ReplicationError(
                f"election term {self.term}: candidate {new_primary.name} "
                f"got {ballot['granted']}/{len(self._nodes)} votes"
            )
        old_primary.is_primary = False
        new_primary.is_primary = True
        self._watch_primary()
        return new_primary

    def status(self) -> dict:
        return {
            "set": self.name,
            "term": self.term,
            "elections": len(self.elections),
            "members": [
                {
                    "name": n.name,
                    "state": "PRIMARY" if n.is_primary else "SECONDARY",
                    "optime": n.applied_optime,
                    "lag": n.lag(self.oplog),
                }
                for n in self._nodes
            ],
            "oplog_entries": len(self.oplog),
        }
