"""Aggregation pipeline: ``$match $project $group $sort $skip $limit $unwind
$count $addFields $lookup $sample``.

The materials builder (§III-B3) performs "selection, grouping, and
projection" over the tasks collection; the web API computes per-chemistry
summaries.  Both are expressed as pipelines here, mirroring how a modern
MongoDB deployment would do it.

Expression language subset: field paths (``"$field.sub"``), literals,
``$sum $avg $min $max $first $last $push $addToSet $count`` accumulators in
``$group``, and ``$add $subtract $multiply $divide $concat $toLower $toUpper
$size $abs $cond $ifNull $literal`` in projections.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import QuerySyntaxError
from .documents import MISSING, deep_copy_doc, get_path, set_path
from .matching import compile_query, ordering_key, _values_equal

__all__ = ["run_pipeline", "evaluate_expression", "pipeline_stage_names"]

#: Stage names recorded per pipeline shape before the list is truncated —
#: keeps profiler/access-analytics shapes bounded for adversarial inputs.
MAX_SHAPE_STAGES = 8

#: Module-local RNG for ``$sample``: shared across pipelines so repeated
#: unseeded samples stay cheap, and deliberately *not* the global
#: ``random`` module so aggregation never perturbs test/chaos-lane seeds.
_SAMPLE_RNG = random.Random()


def evaluate_expression(expr: Any, doc: Mapping[str, Any]) -> Any:
    """Evaluate an aggregation expression against a document."""
    if isinstance(expr, str) and expr.startswith("$$"):
        raise QuerySyntaxError(f"system variables not supported: {expr!r}")
    if isinstance(expr, str) and expr.startswith("$"):
        value = get_path(doc, expr[1:])
        return None if value is MISSING else value
    if isinstance(expr, Mapping):
        op_keys = [k for k in expr if isinstance(k, str) and k.startswith("$")]
        if op_keys:
            if len(expr) != 1:
                raise QuerySyntaxError(f"expression {expr!r} must have one operator")
            op = op_keys[0]
            return _eval_operator(op, expr[op], doc)
        return {k: evaluate_expression(v, doc) for k, v in expr.items()}
    if isinstance(expr, list):
        return [evaluate_expression(e, doc) for e in expr]
    return expr


def _numeric_args(op: str, operand: Any, doc: Mapping[str, Any]) -> List[float]:
    if not isinstance(operand, list):
        operand = [operand]
    values = [evaluate_expression(e, doc) for e in operand]
    out = []
    for v in values:
        if v is None:
            out.append(0.0)
        elif isinstance(v, bool) or not isinstance(v, (int, float)):
            raise QuerySyntaxError(f"{op} requires numeric arguments, got {v!r}")
        else:
            out.append(v)
    return out


def _eval_operator(op: str, operand: Any, doc: Mapping[str, Any]) -> Any:
    if op == "$literal":
        return operand
    if op == "$add":
        return sum(_numeric_args(op, operand, doc))
    if op == "$subtract":
        args = _numeric_args(op, operand, doc)
        if len(args) != 2:
            raise QuerySyntaxError("$subtract requires two arguments")
        return args[0] - args[1]
    if op == "$multiply":
        out = 1.0
        for v in _numeric_args(op, operand, doc):
            out *= v
        return out
    if op == "$divide":
        args = _numeric_args(op, operand, doc)
        if len(args) != 2:
            raise QuerySyntaxError("$divide requires two arguments")
        if args[1] == 0:
            raise QuerySyntaxError("$divide by zero")
        return args[0] / args[1]
    if op == "$abs":
        return abs(_numeric_args(op, operand, doc)[0])
    if op == "$concat":
        parts = [evaluate_expression(e, doc) for e in operand]
        if any(p is None for p in parts):
            return None
        if not all(isinstance(p, str) for p in parts):
            raise QuerySyntaxError("$concat requires strings")
        return "".join(parts)
    if op == "$toLower":
        v = evaluate_expression(operand, doc)
        return "" if v is None else str(v).lower()
    if op == "$toUpper":
        v = evaluate_expression(operand, doc)
        return "" if v is None else str(v).upper()
    if op == "$size":
        v = evaluate_expression(operand, doc)
        if not isinstance(v, list):
            raise QuerySyntaxError("$size requires an array")
        return len(v)
    if op == "$cond":
        if isinstance(operand, Mapping):
            branches = [operand.get("if"), operand.get("then"), operand.get("else")]
        elif isinstance(operand, list) and len(operand) == 3:
            branches = operand
        else:
            raise QuerySyntaxError("$cond requires [if, then, else]")
        return (
            evaluate_expression(branches[1], doc)
            if evaluate_expression(branches[0], doc)
            else evaluate_expression(branches[2], doc)
        )
    if op == "$ifNull":
        if not isinstance(operand, list) or len(operand) != 2:
            raise QuerySyntaxError("$ifNull requires two arguments")
        v = evaluate_expression(operand[0], doc)
        return evaluate_expression(operand[1], doc) if v is None else v
    if op in ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte"):
        if not isinstance(operand, list) or len(operand) != 2:
            raise QuerySyntaxError(f"{op} requires two arguments")
        a = evaluate_expression(operand[0], doc)
        b = evaluate_expression(operand[1], doc)
        from .matching import compare_values

        c = compare_values(a, b)
        return {
            "$eq": c == 0,
            "$ne": c != 0,
            "$gt": c > 0,
            "$gte": c >= 0,
            "$lt": c < 0,
            "$lte": c <= 0,
        }[op]
    raise QuerySyntaxError(f"unknown aggregation operator {op!r}")


# --------------------------------------------------------------------------
# $group accumulators
# --------------------------------------------------------------------------


class _Accumulator:
    def __init__(self, op: str, expr: Any):
        self.op = op
        self.expr = expr
        self.values: List[Any] = []

    def feed(self, doc: Mapping[str, Any]) -> None:
        if self.op == "$count":
            self.values.append(1)
        else:
            self.values.append(evaluate_expression(self.expr, doc))

    def result(self) -> Any:
        vals = self.values
        if self.op in ("$sum", "$count"):
            return sum(v for v in vals if isinstance(v, (int, float)) and not isinstance(v, bool))
        if self.op == "$avg":
            nums = [v for v in vals if isinstance(v, (int, float)) and not isinstance(v, bool)]
            return sum(nums) / len(nums) if nums else None
        if self.op == "$min":
            present = [v for v in vals if v is not None]
            return min(present, key=ordering_key) if present else None
        if self.op == "$max":
            present = [v for v in vals if v is not None]
            return max(present, key=ordering_key) if present else None
        if self.op == "$first":
            return vals[0] if vals else None
        if self.op == "$last":
            return vals[-1] if vals else None
        if self.op == "$push":
            return list(vals)
        if self.op == "$addToSet":
            out: List[Any] = []
            for v in vals:
                if not any(_values_equal(v, e) for e in out):
                    out.append(v)
            return out
        raise QuerySyntaxError(f"unknown accumulator {self.op!r}")


_ACCUMULATORS = {"$sum", "$avg", "$min", "$max", "$first", "$last", "$push", "$addToSet", "$count"}


def _group_key(value: Any) -> Any:
    """Hashable form of a group key (dicts/lists become tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _group_key(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_group_key(v) for v in value)
    return value


# --------------------------------------------------------------------------
# Pipeline stages
# --------------------------------------------------------------------------


def _stage_match(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    matcher = compile_query(spec)
    return [d for d in docs if matcher.matches(d)]


def _stage_project(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    include = {k: v for k, v in spec.items() if v in (1, True)}
    exclude = {k for k, v in spec.items() if v in (0, False)}
    computed = {
        k: v for k, v in spec.items() if not isinstance(v, bool) and v not in (0, 1)
    }
    out = []
    for doc in docs:
        if include or computed:
            new: dict = {}
            if "_id" not in exclude and "_id" in doc:
                new["_id"] = doc["_id"]
            for path in include:
                if path == "_id":
                    continue
                value = get_path(doc, path)
                if value is not MISSING:
                    set_path(new, path, deep_copy_doc(value))
            for path, expr in computed.items():
                set_path(new, path, evaluate_expression(expr, doc))
        else:
            new = deep_copy_doc(doc)
            for path in exclude:
                from .documents import unset_path

                unset_path(new, path)
        out.append(new)
    return out


def _stage_add_fields(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    out = []
    for doc in docs:
        new = deep_copy_doc(doc)
        for path, expr in spec.items():
            set_path(new, path, evaluate_expression(expr, doc))
        out.append(new)
    return out


def _stage_group(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    if "_id" not in spec:
        raise QuerySyntaxError("$group requires an _id expression")
    id_expr = spec["_id"]
    acc_specs: Dict[str, tuple] = {}
    for field, acc in spec.items():
        if field == "_id":
            continue
        if not isinstance(acc, Mapping) or len(acc) != 1:
            raise QuerySyntaxError(f"accumulator for {field!r} must be a single-op doc")
        op, expr = next(iter(acc.items()))
        if op not in _ACCUMULATORS:
            raise QuerySyntaxError(f"unknown accumulator {op!r}")
        acc_specs[field] = (op, expr)
    groups: Dict[Any, tuple] = {}
    order: List[Any] = []
    for doc in docs:
        key_value = evaluate_expression(id_expr, doc) if id_expr is not None else None
        key = _group_key(key_value)
        if key not in groups:
            accs = {f: _Accumulator(op, expr) for f, (op, expr) in acc_specs.items()}
            groups[key] = (key_value, accs)
            order.append(key)
        _, accs = groups[key]
        for acc in accs.values():
            acc.feed(doc)
    out = []
    for key in order:
        key_value, accs = groups[key]
        row = {"_id": key_value}
        for field, acc in accs.items():
            row[field] = acc.result()
        out.append(row)
    return out


def _stage_sort(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    docs = list(docs)
    for field, direction in reversed(list(spec.items())):
        if direction not in (1, -1):
            raise QuerySyntaxError("$sort direction must be 1 or -1")
        docs.sort(
            key=lambda d, _f=field: ordering_key(get_path(d, _f)),
            reverse=direction == -1,
        )
    return docs


def _stage_skip(docs: List[dict], spec: Any, db: Any) -> List[dict]:
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 0:
        raise QuerySyntaxError("$skip requires a non-negative integer")
    return docs[spec:]


def _stage_limit(docs: List[dict], spec: Any, db: Any) -> List[dict]:
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 0:
        raise QuerySyntaxError("$limit requires a non-negative integer")
    return docs[:spec]


def _stage_unwind(docs: List[dict], spec: Any, db: Any) -> List[dict]:
    if isinstance(spec, str):
        path = spec
        keep_empty = False
    elif isinstance(spec, Mapping):
        path = spec.get("path", "")
        keep_empty = bool(spec.get("preserveNullAndEmptyArrays", False))
    else:
        raise QuerySyntaxError("$unwind requires a path")
    if not path.startswith("$"):
        raise QuerySyntaxError("$unwind path must start with '$'")
    field = path[1:]
    out = []
    for doc in docs:
        value = get_path(doc, field)
        if value is MISSING or value is None or (isinstance(value, list) and not value):
            if keep_empty:
                out.append(deep_copy_doc(doc))
            continue
        elements = value if isinstance(value, list) else [value]
        for element in elements:
            new = deep_copy_doc(doc)
            set_path(new, field, deep_copy_doc(element))
            out.append(new)
    return out


def _stage_count(docs: List[dict], spec: Any, db: Any) -> List[dict]:
    if not isinstance(spec, str) or not spec:
        raise QuerySyntaxError("$count requires a field name")
    return [{spec: len(docs)}]


def _stage_lookup(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    required = {"from", "localField", "foreignField", "as"}
    if not isinstance(spec, Mapping) or set(spec) != required:
        raise QuerySyntaxError(f"$lookup requires exactly {sorted(required)}")
    if db is None:
        raise QuerySyntaxError("$lookup requires a database-bound collection")
    foreign = db.get_collection(spec["from"])
    foreign_docs = foreign.all_documents()
    out = []
    for doc in docs:
        local = get_path(doc, spec["localField"])
        local = None if local is MISSING else local
        matches = []
        for fd in foreign_docs:
            fv = get_path(fd, spec["foreignField"])
            fv = None if fv is MISSING else fv
            if _values_equal(local, fv) or (
                isinstance(local, list) and any(_values_equal(e, fv) for e in local)
            ):
                matches.append(deep_copy_doc(fd))
        new = deep_copy_doc(doc)
        set_path(new, spec["as"], matches)
        out.append(new)
    return out


def _stage_sample(docs: List[dict], spec: Mapping[str, Any], db: Any) -> List[dict]:
    if not isinstance(spec, Mapping) or "size" not in spec:
        raise QuerySyntaxError("$sample requires {'size': n}")
    n = spec["size"]
    if isinstance(n, bool) or not isinstance(n, int) or n < 0:
        raise QuerySyntaxError("$sample size must be a non-negative integer")
    if n >= len(docs):
        return list(docs)
    seed = spec.get("seed")
    rng = _SAMPLE_RNG if seed is None else random.Random(seed)
    return rng.sample(docs, n)


_STAGES: Dict[str, Callable[[List[dict], Any, Any], List[dict]]] = {
    "$match": _stage_match,
    "$project": _stage_project,
    "$addFields": _stage_add_fields,
    "$group": _stage_group,
    "$sort": _stage_sort,
    "$skip": _stage_skip,
    "$limit": _stage_limit,
    "$unwind": _stage_unwind,
    "$count": _stage_count,
    "$lookup": _stage_lookup,
    "$sample": _stage_sample,
}


def pipeline_stage_names(pipeline: List[Mapping[str, Any]],
                         max_stages: int = MAX_SHAPE_STAGES) -> List[str]:
    """The pipeline's ordered stage names, truncated past ``max_stages``.

    This is the pipeline's *shape* — what the profiler, advisor, and
    access analytics record instead of raw specs (no user values, bounded
    length), and enough to tell a ``$match``-led pipeline from a
    ``$group``-led one.
    """
    names: List[str] = []
    for stage in pipeline:
        if isinstance(stage, Mapping) and len(stage) == 1:
            names.append(next(iter(stage)))
        else:
            names.append("<invalid>")
    if len(names) > max_stages:
        extra = len(names) - max_stages
        names = names[:max_stages] + [f"+{extra} more"]
    return names


def run_pipeline(
    docs: List[dict],
    pipeline: List[Mapping[str, Any]],
    database: Optional[Any] = None,
    stage_stats: Optional[List[dict]] = None,
) -> List[dict]:
    """Execute ``pipeline`` over ``docs`` and return the resulting documents.

    When ``stage_stats`` is a list, one ``executionStats``-style record is
    appended per stage: ``{"stage", "docs_in", "docs_out", "elapsed_ms"}``
    plus ``"state_size"`` for the stages that hold intermediate state —
    ``$group`` (number of distinct groups) and ``$sort`` (documents held
    for the blocking sort).  This is the data behind
    ``Collection.aggregate(..., explain=True)``.
    """
    if not isinstance(pipeline, list):
        raise QuerySyntaxError("pipeline must be a list of stages")
    current = docs
    for stage in pipeline:
        if not isinstance(stage, Mapping) or len(stage) != 1:
            raise QuerySyntaxError(f"each stage must be a single-key doc, got {stage!r}")
        name, spec = next(iter(stage.items()))
        handler = _STAGES.get(name)
        if handler is None:
            raise QuerySyntaxError(f"unknown pipeline stage {name!r}")
        if stage_stats is None:
            current = handler(current, spec, database)
            continue
        docs_in = len(current)
        t0 = time.perf_counter()
        current = handler(current, spec, database)
        record = {
            "stage": name,
            "docs_in": docs_in,
            "docs_out": len(current),
            "elapsed_ms": (time.perf_counter() - t0) * 1e3,
        }
        if name == "$group":
            record["state_size"] = len(current)
        elif name == "$sort":
            record["state_size"] = docs_in
        stage_stats.append(record)
    return current
