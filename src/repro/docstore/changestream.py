"""Change streams: buffered subscriptions to collection writes.

The paper's §IV-C1 asks for "a more automated, incremental loading
capability" between computation and dissemination.  Change streams are the
mechanism: a :class:`ChangeStream` subscribes to a collection's write events
(insert/update/delete) into a bounded buffer that a consumer drains at its
own pace — the same model as MongoDB change streams / oplog tailing, minus
the wire protocol.  :class:`repro.builders.incremental.
IncrementalMaterialsBuilder` consumes one to keep the materials collection
continuously fresh.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..errors import DocstoreError
from ..obs import active_span, get_registry
from .collection import Collection

__all__ = ["ChangeEvent", "ChangeStream"]


class ChangeEvent:
    """One observed write."""

    __slots__ = ("operation", "namespace", "document", "document_id", "seq")

    def __init__(self, operation: str, namespace: str,
                 document: Optional[dict], document_id: Any, seq: int):
        self.operation = operation  # insert | update | delete | drop
        self.namespace = namespace
        self.document = document
        self.document_id = document_id
        self.seq = seq

    def __repr__(self) -> str:
        return f"ChangeEvent({self.operation} on {self.namespace}, seq={self.seq})"


class ChangeStream:
    """A bounded buffer of a collection's change events.

    ``max_buffer`` bounds memory; when the consumer falls further behind
    than that, the stream records the overflow and raises on the next
    read — the same "resume token too old, resync required" contract real
    oplog tailing has.  Every dropped event bumps ``dropped`` and the
    ``repro_changestream_dropped_total`` counter, and the
    ``repro_changestream_backlog`` gauge tracks the pending depth — the
    numbers behind the health monitor's backlog alerting.
    """

    def __init__(self, collection: Collection, max_buffer: int = 10_000,
                 filter_fn: Optional[Callable[[ChangeEvent], bool]] = None):
        if max_buffer < 1:
            raise DocstoreError("max_buffer must be positive")
        self.collection = collection
        self.max_buffer = max_buffer
        self.dropped = 0
        #: Optional server-side filter: events for which ``filter_fn(event)``
        #: is falsy are never buffered.  Chunk migrations use this to tail
        #: only the deltas inside the migrating key range instead of paying
        #: buffer space for the whole collection's write traffic.
        self.filter_fn = filter_fn
        self._events: Deque[ChangeEvent] = deque()
        self._lock = threading.Lock()
        self._seq = 0
        self._overflowed = False
        self._closed = False
        collection.add_change_listener(self._on_change)

    def _on_change(self, op: str, payload: dict) -> None:
        if self._closed:
            return
        with self._lock:
            self._seq += 1
            event = ChangeEvent(
                operation=op,
                namespace=payload.get("ns", self.collection.name),
                document=payload.get("doc"),
                document_id=payload.get("_id",
                                        (payload.get("doc") or {}).get("_id")),
                seq=self._seq,
            )
            if self.filter_fn is not None and not self.filter_fn(event):
                return
            self._events.append(event)
            if len(self._events) > self.max_buffer:
                self._events.popleft()
                self._overflowed = True
                self.dropped += 1
                registry = get_registry()
                registry.counter(
                    "repro_changestream_dropped_total",
                    "change events dropped after buffer overflow",
                ).inc(1, ns=self.collection.name)
                registry.gauge(
                    "repro_changestream_backlog",
                    "pending change events per stream",
                ).set(len(self._events), ns=self.collection.name)

    # -- consumption --------------------------------------------------------

    def drain(self, max_events: Optional[int] = None) -> List[ChangeEvent]:
        """Remove and return pending events (oldest first).

        Inside an active trace the delivery is a ``changestream.drain``
        span carrying the event count, so incremental-builder traces show
        how much change volume each pass consumed.
        """
        with active_span("changestream.drain",
                         ns=self.collection.name) as s:
            with self._lock:
                if self._overflowed:
                    self._overflowed = False
                    self._events.clear()
                    raise DocstoreError(
                        "change stream overflowed; consumer must full-resync"
                    )
                out: List[ChangeEvent] = []
                while self._events and (max_events is None
                                        or len(out) < max_events):
                    out.append(self._events.popleft())
                get_registry().gauge(
                    "repro_changestream_backlog",
                    "pending change events per stream",
                ).set(len(self._events), ns=self.collection.name)
            if s is not None:
                s.set_attribute("events", len(out))
            return out

    def pending(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        self._closed = True
        with self._lock:
            self._events.clear()
