"""Built-in collection MapReduce — the MongoDB-analog (single-threaded).

The paper (§IV-C2) notes that "MongoDB's built-in MapReduce functionality is
severely limited by implementation within a single-threaded Javascript
engine"; the materials builder runs "a MapReduce operation on the tasks to
group them by the MPS identifier and pick a single best result" (§III-B3).

This module is the *built-in, deliberately single-threaded* executor bound
to collections.  The general framework with a parallel "Hadoop-like" engine
used for the §IV-B2 comparison lives in :mod:`repro.mapreduce`.

A mapper is a Python callable ``mapper(doc) -> iterable of (key, value)``;
a reducer is ``reducer(key, values) -> value``; optional ``finalize(key,
value) -> value``.  Keys must be hashable after canonicalization.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .aggregation import _group_key

__all__ = ["map_reduce", "collection_map_reduce", "MapReduceResult"]

Mapper = Callable[[dict], Iterable[Tuple[Any, Any]]]
Reducer = Callable[[Any, List[Any]], Any]
Finalizer = Callable[[Any, Any], Any]


class MapReduceResult:
    """Result rows plus execution counters (like Mongo's mapReduce output)."""

    def __init__(self, rows: List[dict], counts: dict, millis: float):
        self.rows = rows
        self.counts = counts
        self.millis = millis

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, i: int) -> dict:
        return self.rows[i]


def map_reduce(
    documents: Iterable[dict],
    mapper: Mapper,
    reducer: Reducer,
    finalize: Optional[Finalizer] = None,
    kill_check: Optional[Callable[[], None]] = None,
) -> MapReduceResult:
    """Run a single-threaded MapReduce over ``documents``.

    Mirrors Mongo's semantics: the reducer may be invoked repeatedly and
    must be associative/commutative over its value list; it is *only*
    invoked for keys with more than one value (single-value keys pass
    through), which is a classic Mongo gotcha we reproduce intentionally.

    ``kill_check`` is invoked once per input document; ``killOp`` hands in
    a callable that raises :class:`~repro.errors.OperationKilled`, so a
    runaway job dies between documents rather than holding the store.
    """
    t0 = time.perf_counter()
    emitted: Dict[Any, Tuple[Any, List[Any]]] = {}
    input_count = 0
    emit_count = 0
    for doc in documents:
        if kill_check is not None:
            kill_check()
        input_count += 1
        for key, value in mapper(doc):
            emit_count += 1
            ck = _group_key(key)
            if ck in emitted:
                emitted[ck][1].append(value)
            else:
                emitted[ck] = (key, [value])
    rows: List[dict] = []
    reduce_count = 0
    for ck, (key, values) in emitted.items():
        if len(values) == 1:
            out = values[0]
        else:
            reduce_count += 1
            out = reducer(key, values)
        if finalize is not None:
            out = finalize(key, out)
        rows.append({"_id": key, "value": out})
    millis = (time.perf_counter() - t0) * 1e3
    counts = {
        "input": input_count,
        "emit": emit_count,
        "reduce": reduce_count,
        "output": len(rows),
    }
    return MapReduceResult(rows, counts, millis)


def collection_map_reduce(
    collection: Any,
    mapper: Mapper,
    reducer: Reducer,
    query: Optional[Mapping[str, Any]] = None,
    finalize: Optional[Finalizer] = None,
) -> List[dict]:
    """MapReduce over a collection, optionally pre-filtered by ``query``.

    Registers in the owning store's active-ops table so ``currentOp()``
    lists the job and ``killOp`` can terminate it between documents.
    """
    docs = collection.find(query or {}).to_list()
    registry = getattr(collection, "_ops_registry", lambda: None)()
    if registry is None:
        return map_reduce(docs, mapper, reducer, finalize).rows
    active = registry.register("mapreduce", collection.namespace, query or {})
    try:
        return map_reduce(docs, mapper, reducer, finalize,
                          kill_check=active.check_killed).rows
    finally:
        registry.finish(active)
