"""Sharding: a router distributing one logical collection over N stores.

§IV-D2: "Future scalability can leverage the sharding and replication
capabilities built in to MongoDB ... as well as isolate the various roles of
the database to separate servers."  We implement the mongos-style router:
documents are placed on a shard by hashed or range partitioning of a shard
key; queries that constrain the shard key are routed to the owning shard(s),
everything else is scatter-gathered.

The sharding ablation bench uses this to show read throughput scaling as
shards are added (each shard is an independent :class:`Collection` which, in
a real deployment, would live on its own server).
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..errors import ShardingError
from ..obs import active_span
from .collection import Collection, DeleteResult, InsertResult, UpdateResult
from .documents import MISSING, document_to_json, get_path
from .matching import ordering_key

__all__ = ["ShardedCollection", "hash_shard_key"]


def hash_shard_key(value: Any) -> int:
    """Stable hash of a shard-key value (md5 of its canonical JSON)."""
    if type(value) is str:
        # json.dumps on a bare string is byte-identical to the canonical
        # encoding below; skipping the custom encoder halves routing cost
        # for the dominant string-key case.
        payload = json.dumps(value)
    else:
        payload = document_to_json(value, sort_keys=True, default=str)
    return int.from_bytes(hashlib.md5(payload.encode()).digest()[:8], "big")


class _Descending:
    """Inverts ``ordering_key`` comparison for descending sort components."""

    __slots__ = ("key",)

    def __init__(self, value: Any):
        self.key = ordering_key(value)

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.key == other.key


def _merge_key(sort: Sequence[tuple]):
    """Comparison key over a sort spec, usable with ``heapq.merge``."""

    def key(doc: Mapping[str, Any]) -> tuple:
        parts = []
        for field, direction in sort:
            value = get_path(doc, field)
            if value is MISSING:
                value = None
            parts.append(ordering_key(value) if direction >= 0
                         else _Descending(value))
        return tuple(parts)

    return key


class ShardedCollection:
    """One logical collection spread over multiple shard collections.

    Parameters
    ----------
    name:
        Logical collection name.
    shard_key:
        Dotted field path used for placement.  Documents missing the key are
        rejected (as mongos does once a collection is sharded).
    shards:
        The backing collections; in tests these are plain in-memory
        collections, in a deployment each would sit behind its own server.
    strategy:
        ``"hashed"`` (default) or ``"range"``.  Range mode splits the key
        space by the provided ``boundaries`` (len == len(shards) - 1).
    """

    def __init__(
        self,
        name: str,
        shard_key: str,
        shards: Sequence[Collection],
        strategy: str = "hashed",
        boundaries: Optional[Sequence[Any]] = None,
    ):
        if not shards:
            raise ShardingError("at least one shard required")
        if strategy not in ("hashed", "range"):
            raise ShardingError(f"unknown sharding strategy {strategy!r}")
        if strategy == "range":
            if boundaries is None or len(boundaries) != len(shards) - 1:
                raise ShardingError(
                    "range sharding requires len(shards)-1 boundaries"
                )
            self.boundaries = list(boundaries)
        else:
            self.boundaries = []
        self.name = name
        self.shard_key = shard_key
        self.shards: List[Collection] = list(shards)
        self.strategy = strategy

    # -- routing -----------------------------------------------------------

    def shard_for_value(self, value: Any) -> int:
        """Index of the shard owning ``value`` of the shard key."""
        if self.strategy == "hashed":
            return hash_shard_key(value) % len(self.shards)
        for i, bound in enumerate(self.boundaries):
            if ordering_key(value) < ordering_key(bound):
                return i
        return len(self.shards) - 1

    def _route_query(self, query: Mapping[str, Any]) -> List[int]:
        """Shards that must be consulted for ``query``."""
        condition = query.get(self.shard_key, MISSING)
        if condition is MISSING:
            return list(range(len(self.shards)))
        if isinstance(condition, Mapping) and any(
            str(k).startswith("$") for k in condition
        ):
            if "$eq" in condition:
                return [self.shard_for_value(condition["$eq"])]
            if "$in" in condition and isinstance(condition["$in"], list):
                return sorted({self.shard_for_value(v) for v in condition["$in"]})
            if self.strategy == "range":
                targets = self._route_range(condition)
                if targets is not None:
                    return targets
            return list(range(len(self.shards)))
        return [self.shard_for_value(condition)]

    def _route_range(self, condition: Mapping[str, Any]) -> Optional[List[int]]:
        lo_val = condition.get("$gte", condition.get("$gt", MISSING))
        hi_val = condition.get("$lte", condition.get("$lt", MISSING))
        if lo_val is MISSING and hi_val is MISSING:
            return None
        lo = self.shard_for_value(lo_val) if lo_val is not MISSING else 0
        hi = (
            self.shard_for_value(hi_val)
            if hi_val is not MISSING
            else len(self.shards) - 1
        )
        return list(range(lo, hi + 1))

    # -- CRUD ----------------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> InsertResult:
        value = get_path(document, self.shard_key)
        if value is MISSING:
            raise ShardingError(
                f"document missing shard key {self.shard_key!r}"
            )
        shard = self.shards[self.shard_for_value(value)]
        return shard.insert_one(document)

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> InsertResult:
        ids = []
        for d in documents:
            r = self.insert_one(d)
            # Remote shards answer with a plain wire dict, local shards
            # with an InsertResult.
            ids.append(r["inserted_id"] if isinstance(r, dict)
                       else r.inserted_id)
        return InsertResult(ids)

    def _shard_stream(
        self,
        index: int,
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
        sort: Optional[Sequence[tuple]],
        limit: int,
    ) -> Iterator[dict]:
        """Lazy per-shard result stream with sort+limit pushed down.

        Local :class:`Collection` shards yield through their cursor, so
        nothing materializes until the merge consumes it; remote shards
        (each behind its own server) apply sort+limit server-side and
        ship back at most ``limit`` documents instead of the full shard.
        """
        shard = self.shards[index]
        if isinstance(shard, Collection):
            cursor = shard.find(query, projection)
            if sort:
                cursor = cursor.sort(list(sort))
            if limit:
                cursor = cursor.limit(limit)
            return iter(cursor)
        result = shard.find(query, projection,
                            sort=list(sort) if sort else None,
                            limit=limit or 0)
        return iter(result.to_list() if hasattr(result, "to_list")
                    else result)

    def find(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        sort: Optional[Sequence[tuple]] = None,
        limit: int = 0,
    ) -> List[dict]:
        """Routed find with per-shard sort+limit pushdown and k-way merge.

        Each targeted shard is asked for *its* top-``limit`` documents in
        sort order; the router then streams a ``heapq.merge`` over the
        shard cursors and stops after the global limit — it never
        materializes a shard's full result set the way the old
        gather-then-concatenate path did.

        Inside an active trace the fan-out is recorded as a
        ``sharded.find`` span with one ``shard.find`` child per shard
        consulted, so the stitched trace shows which shards a routed
        query actually touched.
        """
        query = query or {}
        targets = self._route_query(query)
        self.last_targets = targets
        with active_span("sharded.find", coll=self.name,
                         targets=len(targets)) as fan:
            streams = []
            for i in targets:
                with active_span("shard.find", shard=i):
                    streams.append(self._shard_stream(
                        i, query, projection, sort, limit))
            if sort:
                merged: Iterator[dict] = heapq.merge(
                    *streams, key=_merge_key(sort))
            else:
                merged = itertools.chain.from_iterable(streams)
            if limit:
                merged = itertools.islice(merged, limit)
            out = list(merged)
            if fan is not None:
                fan.set_attribute("nreturned", len(out))
        return out

    def find_one(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
    ) -> Optional[dict]:
        query = query or {}
        with active_span("sharded.find_one", coll=self.name):
            for i in self._route_query(query):
                doc = self.shards[i].find_one(query, projection)
                if doc is not None:
                    return doc
        return None

    def count_documents(self, query: Optional[Mapping[str, Any]] = None) -> int:
        query = query or {}
        with active_span("sharded.count", coll=self.name):
            return sum(
                self.shards[i].count_documents(query)
                for i in self._route_query(query)
            )

    def _reject_shard_key_mutation(self, update: Mapping[str, Any]) -> None:
        """Refuse updates that would change a document's shard key.

        Once placed, a document's routing value is immutable (as in
        mongos): mutating it in place would leave the document on a shard
        that no longer owns it.  Rejected paths are the key itself, any
        subpath of it, and any prefix of it (rewriting the enclosing
        subdocument also rewrites the key).
        """
        key = self.shard_key
        for op, spec in update.items():
            if not str(op).startswith("$"):
                # Replacement-style update: the whole document is
                # rewritten, shard key included.
                raise ShardingError(
                    f"replacement update would modify the immutable "
                    f"shard key {key!r}"
                )
            if not isinstance(spec, Mapping):
                continue
            for field in spec:
                if field == key or field.startswith(key + ".") or (
                        key.startswith(field + ".")):
                    raise ShardingError(
                        f"update would modify the immutable shard key "
                        f"{key!r} (operator {op!r} on {field!r})"
                    )

    def update_many(
        self, query: Mapping[str, Any], update: Mapping[str, Any]
    ) -> UpdateResult:
        self._reject_shard_key_mutation(update)
        matched = modified = 0
        for i in self._route_query(query):
            r = self.shards[i].update_many(query, update)
            matched += r.matched_count
            modified += r.modified_count
        return UpdateResult(matched, modified)

    def delete_many(self, query: Optional[Mapping[str, Any]] = None) -> DeleteResult:
        query = query or {}
        deleted = 0
        for i in self._route_query(query):
            deleted += self.shards[i].delete_many(query).deleted_count
        return DeleteResult(deleted)

    def aggregate(self, pipeline: List[Mapping[str, Any]]) -> List[dict]:
        """Merge-then-aggregate (correct, if not shard-pushdown-optimized)."""
        from .aggregation import run_pipeline

        docs: List[dict] = []
        with active_span("sharded.aggregate", coll=self.name,
                         shards=len(self.shards)):
            for shard in self.shards:
                if hasattr(shard, "all_documents"):
                    docs.extend(shard.all_documents())
                else:
                    docs.extend(shard.find({}))
            return run_pipeline(docs, pipeline)

    # -- admin -----------------------------------------------------------------

    def shard_distribution(self) -> Dict[str, int]:
        """Document count per shard (balance diagnostics)."""
        return {f"shard{i}": len(s) for i, s in enumerate(self.shards)}

    def balance_factor(self) -> float:
        """max/mean shard size; 1.0 is perfectly balanced."""
        sizes = [len(s) for s in self.shards]
        mean = sum(sizes) / len(sizes)
        return (max(sizes) / mean) if mean else 1.0

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)
