"""Socket wire protocol: datastore server and client.

HPC worker nodes in the paper "are not allowed to communicate outside the
system. Thus, we had to use a proxy to have our tasks communicate with the
MongoDB Server" (§IV-A2).  To reproduce that topology we expose the document
store over a real TCP socket speaking newline-delimited extended JSON, with
a :class:`RemoteClient` mirroring the in-process API, and a forwarding
:class:`~repro.docstore.proxy.DatastoreProxy` that is the only route allowed
from simulated worker nodes.

The protocol is a JSON request/response pair per line::

    {"op": "find", "db": "mp", "coll": "tasks", "query": {...}, ...}
    {"ok": true, "result": [...]}

Distributed tracing rides the same line: a traced client attaches a
``"$trace"`` field (``{"trace_id": ..., "span_id": ...}``) to each request
and the server reconstructs the remote parent, so one trace stitches
client → proxy → server → per-shard fan-out across processes.
"""

from __future__ import annotations

import random
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from ..errors import (
    ClusterError,
    ConnectionLost,
    DeadlineExceeded,
    DocstoreError,
    NotPrimary,
    OperationKilled,
    ShardingError,
    StaleEpoch,
    WireProtocolError,
)
from ..obs import export_traces, get_registry, remote_span, span, trace_context
from .database import DocumentStore
from .documents import document_from_json, document_to_json
from .indexes import normalize_index_spec
from .ops import deadline_scope

__all__ = ["DatastoreServer", "RemoteClient", "RemoteCollection"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "DatastoreServer" = self.server.datastore_server  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                break
            t0 = time.perf_counter()
            error_type = None
            request: Optional[Mapping[str, Any]] = None
            try:
                request = document_from_json(line.decode("utf-8"))
                response = server.dispatch(request)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                error_type = type(exc).__name__
                response = {"ok": False, "error": error_type, "message": str(exc)}
            try:
                payload = document_to_json(response) + "\n"
            except Exception as exc:  # noqa: BLE001 - unserializable result
                error_type = type(exc).__name__
                payload = document_to_json(
                    {"ok": False, "error": error_type, "message": str(exc)}
                ) + "\n"
            encoded = payload.encode("utf-8")
            # Traffic is accounted whether or not dispatch raised: the bytes
            # crossed the wire either way, and error responses are traffic
            # too.  Failed exchanges carry the exception type as a label.
            registry = get_registry()
            labels = {"direction": "server"}
            if error_type is not None:
                registry.counter(
                    "repro_wire_errors_total", "wire-protocol failed exchanges"
                ).inc(1, error=error_type)
                labels["error"] = error_type
            registry.counter(
                "repro_wire_bytes_total", "wire-protocol traffic"
            ).inc(len(line) + len(encoded), **labels)
            # Access-log warehouse: recorded before the response write and
            # regardless of dispatch outcome, mirroring the byte accounting
            # above — a request that failed mid-dispatch (or never parsed)
            # still leaves an access record carrying its error status.
            server._record_access(
                request, error_type, t0, len(line), len(encoded)
            )
            try:
                fault = server._response_fault
                if fault is not None:
                    # Test hook: chaos tests inject mid-response failures
                    # here to prove the framing discipline below.
                    fault(self.wfile, encoded)
                else:
                    self.wfile.write(encoded)
                self.wfile.flush()
            except Exception:  # noqa: BLE001 - any mid-response failure
                # The stream may now hold a partial frame.  Writing another
                # response would desynchronize every subsequent exchange on
                # this connection (the client would parse the tail of this
                # frame as the head of the next), so the only safe move is
                # to drop the connection and let the client reconnect.
                registry.counter(
                    "repro_wire_desync_closes_total",
                    "connections closed after a mid-response write failure"
                ).inc(1)
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class DatastoreServer:
    """Serves a :class:`DocumentStore` over TCP (one JSON doc per line)."""

    def __init__(self, store: Optional[DocumentStore] = None, host: str = "127.0.0.1", port: int = 0,
                 access_log: Optional[Any] = None, cluster: Optional[Any] = None):
        self.store = store or DocumentStore()
        # Optional sharded-cluster facade behind the cluster wire ops
        # (``add_shard``/``move_chunk``/``shard_status``/``step_down``).
        # Falls back to a cluster attached to the store itself.
        self.cluster = cluster if cluster is not None else getattr(
            self.store, "cluster", None)
        self._tcp = _ThreadingTCPServer((host, port), _Handler)
        self._tcp.datastore_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0
        self._stats_lock = threading.Lock()
        # Optional access-log warehouse (``repro.api.querylog.QueryLog``):
        # when attached, every wire exchange — including ones that fail
        # during parse or dispatch — leaves a ``telemetry.access`` record.
        # Opt-in because recording writes through the same store and would
        # perturb opcounter-sensitive tests and benchmarks.
        self.access_log = access_log
        # Test hook: ``fn(wfile, encoded)`` replaces the response write so
        # chaos tests can fail mid-frame; None in production.
        self._response_fault = None
        # In-flight dispatch registry keyed by handler thread ident: the
        # flight watchdog's wire probe reads the oldest entry's age to spot
        # a dispatch wedged inside the engine.
        self._inflight: Dict[int, tuple] = {}
        self._inflight_lock = threading.Lock()

    def _record_access(self, request: Optional[Mapping[str, Any]],
                       error_type: Optional[str], t0: float,
                       request_bytes: int, response_bytes: int) -> None:
        log = self.access_log
        if log is None:
            return
        op = str(request.get("op")) if request else "invalid"
        try:
            log.record_access(
                endpoint=f"wire/{op}",
                method="WIRE",
                user=(request or {}).get("user"),
                status=500 if error_type else 200,
                error=error_type,
                duration_ms=(time.perf_counter() - t0) * 1e3,
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                collection=(request or {}).get("coll"),
            )
        except Exception:  # noqa: BLE001 - telemetry must never break serving
            pass

    @property
    def address(self) -> tuple:
        return self._tcp.server_address

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    def start(self) -> "DatastoreServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DatastoreServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- request dispatch -------------------------------------------------

    def dispatch(self, request: Mapping[str, Any]) -> dict:
        """Execute one wire request against the store.

        When the request carries a ``"$trace"`` context the whole dispatch
        runs under a server-side span whose trace id is the *client's*, so
        profiler entries and child spans recorded here join the caller's
        distributed trace.

        A ``"$deadline"`` field (epoch seconds) bounds the dispatch: an
        already-expired request fails without executing, and the deadline
        propagates to every operation the dispatch registers so the
        cooperative ``killOp`` check points abort it mid-scan.  Each
        dispatch also sweeps the active-ops table for other expired ops.
        """
        if not isinstance(request, Mapping) or "op" not in request:
            raise WireProtocolError("request must be a document with an 'op'")
        deadline = request.get("$deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise WireProtocolError("$deadline must be epoch seconds")
        self.store._ops.kill_expired()
        if deadline is not None and time.time() > deadline:
            raise DeadlineExceeded(
                f"request {request['op']!r} arrived past its deadline"
            )
        ctx = request.get("$trace")
        ident = threading.get_ident()
        with self._inflight_lock:
            self._inflight[ident] = (str(request["op"]), time.monotonic())
        try:
            with deadline_scope(deadline):
                if ctx is None:
                    return self._dispatch(request)
                with remote_span(f"wire.{request['op']}", ctx,
                                 db=request.get("db"),
                                 coll=request.get("coll")):
                    return self._dispatch(request)
        finally:
            with self._inflight_lock:
                self._inflight.pop(ident, None)

    def dispatch_inflight(self) -> List[dict]:
        """Currently dispatching wire ops with their ages (oldest first).

        The flight watchdog's wire-liveness probe: a dispatch older than
        the stall timeout means a handler thread is wedged inside the
        engine (the probe itself never enters the engine).
        """
        now = time.monotonic()
        with self._inflight_lock:
            rows = [{"op": op, "age_s": now - t0}
                    for op, t0 in self._inflight.values()]
        rows.sort(key=lambda r: -r["age_s"])
        return rows

    def _dispatch(self, request: Mapping[str, Any]) -> dict:
        with self._stats_lock:
            self.requests_served += 1
        op = request["op"]
        get_registry().counter(
            "repro_wire_requests_total", "wire-protocol requests dispatched"
        ).inc(1, op=str(op))
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "list_databases":
            return {"ok": True, "result": self.store.list_database_names()}
        if op == "current_op":
            return {"ok": True, "result": self.store.current_op()}
        if op == "kill_op":
            return {"ok": True, "result": self.store.kill_op(request["opid"])}
        if op == "export_traces":
            return {"ok": True,
                    "result": export_traces(request.get("trace_id"))}
        if op == "server_status":
            return {"ok": True, "result": self.store.server_status()}
        if op == "profile":
            return {"ok": True, "result": self._profile_op(request)}
        if op == "flight":
            return {"ok": True, "result": self._flight_op(request)}
        if op == "lock_report":
            return {"ok": True, "result": self.store.lock_report(
                limit=request.get("limit", 10))}
        if op in ("shard_status", "add_shard", "move_chunk", "step_down"):
            return {"ok": True, "result": self._cluster_op(op, request)}
        db_name = request.get("db")
        if not isinstance(db_name, str):
            raise WireProtocolError("request missing 'db'")
        db = self.store.get_database(db_name)
        if op == "list_collections":
            return {"ok": True, "result": db.list_collection_names()}
        if op == "db_status":
            return {"ok": True, "result": db.server_status()}
        if op == "top":
            return {"ok": True, "result": db.top()}
        coll_name = request.get("coll")
        if not isinstance(coll_name, str):
            raise WireProtocolError("request missing 'coll'")
        coll = db.get_collection(coll_name)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise WireProtocolError(f"unknown wire op {op!r}")
        return {"ok": True, "result": handler(coll, request)}

    def _cluster_op(self, op: str, request: Mapping[str, Any]) -> Any:
        """The sharded-cluster wire ops (mongos admin-command analogs).

        * ``shard_status`` — the full cluster topology/counters document;
        * ``add_shard``    — register a shard (idempotent);
        * ``move_chunk``   — run a chunk migration, returning docs moved;
        * ``step_down``    — demote a shard's primary, returning the new
          primary's member name.
        """
        cluster = self.cluster
        if cluster is None:
            raise ClusterError("server has no sharded cluster attached")
        if op == "shard_status":
            return cluster.status()
        if op == "add_shard":
            shard = cluster.add_shard(str(request["shard"]))
            return {"shard": shard.shard_id,
                    "shards": sorted(cluster.shards)}
        if op == "move_chunk":
            moved = cluster.move_chunk(str(request["ns"]),
                                       str(request["chunk"]),
                                       str(request["to"]))
            return {"chunk": request["chunk"], "to": request["to"],
                    "docs": moved}
        new_primary = cluster.step_down(str(request["shard"]))
        return {"shard": request["shard"], "primary": new_primary}

    @staticmethod
    def _profile_op(request: Mapping[str, Any]) -> Any:
        """The ``profile`` wire op: drive the server's sampling profiler.

        Actions: ``start`` (optional ``hz``), ``stop``, ``reset``,
        ``snapshot`` (the default; optional ``limit`` bounds the stack
        list), and ``flame`` (folded ``stack count`` lines ready for a
        flamegraph renderer).  The profiler is the process-global one, so
        a profile started over the wire is visible on ``/debug/profile``
        and persisted by the telemetry warehouse.
        """
        from ..obs.profiler import get_profiler, start_profiler, stop_profiler

        action = request.get("action", "snapshot")
        if action == "start":
            existing = get_profiler()
            already = existing is not None and existing.running
            profiler = start_profiler(hz=request.get("hz") or 100.0)
            return {"running": True, "hz": profiler.hz,
                    "already_running": already}
        if action == "stop":
            snapshot = stop_profiler()
            return snapshot if snapshot is not None else {"running": False}
        profiler = get_profiler()
        if profiler is None:
            if action in ("snapshot", "reset"):
                return {"running": False, "samples": 0, "stacks": []}
            return []
        if action == "reset":
            profiler.reset()
            return {"running": profiler.running, "samples": 0, "stacks": []}
        if action == "flame":
            return profiler.folded(limit=request.get("limit", 0))
        if action == "snapshot":
            return profiler.snapshot(limit=request.get("limit", 0))
        raise WireProtocolError(f"unknown profile action {action!r}")

    @staticmethod
    def _flight_op(request: Mapping[str, Any]) -> Any:
        """The ``flight`` wire op: read the server's flight recorder.

        Actions: ``status`` (the default), ``window`` (the last ``limit``
        in-memory snapshots), ``events`` (recent stall/shutdown events),
        ``anomalies`` (MAD-z-score scan over the in-memory window), and
        ``crash`` (the persisted ``crash_report.json``, if any).  The
        recorder is the process-global one ``repro serve`` starts, so the
        same data is live on ``GET /debug/flight``.
        """
        from ..obs.flight import (
            get_flight_recorder,
            read_crash_report,
            scan_anomalies,
        )

        action = request.get("action", "status")
        recorder = get_flight_recorder()
        if recorder is None:
            if action == "status":
                return {"attached": False, "running": False}
            raise DocstoreError("no flight recorder is running on the server")
        if action == "status":
            return {"attached": True, **recorder.status()}
        if action == "window":
            return {"snapshots":
                    recorder.recent(int(request.get("limit") or 60))}
        if action == "events":
            return {"events":
                    recorder.recent_events(int(request.get("limit") or 50))}
        if action == "anomalies":
            return {"anomalies": scan_anomalies(
                recorder.recent(),
                threshold=float(request.get("threshold") or 6.0))}
        if action == "crash":
            report = read_crash_report(recorder.directory)
            return report if report is not None else {"crash_report": None}
        raise WireProtocolError(f"unknown flight action {action!r}")

    @staticmethod
    def _op_insert_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"inserted_id": coll.insert_one(req["document"]).inserted_id}

    @staticmethod
    def _op_insert_many(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"inserted_ids": coll.insert_many(req["documents"]).inserted_ids}

    @staticmethod
    def _op_find(coll: Any, req: Mapping[str, Any]) -> Any:
        cursor = coll.find(
            req.get("query") or {}, req.get("projection"),
            hint=req.get("$hint"),
        )
        if req.get("sort"):
            cursor = cursor.sort([(f, d) for f, d in req["sort"]])
        if req.get("skip"):
            cursor = cursor.skip(req["skip"])
        if req.get("limit"):
            cursor = cursor.limit(req["limit"])
        return cursor.to_list()

    @staticmethod
    def _op_find_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.find_one(req.get("query") or {}, req.get("projection"))

    @staticmethod
    def _op_count(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.count_documents(req.get("query") or {})

    @staticmethod
    def _op_distinct(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.distinct(req["field"], req.get("query"))

    @staticmethod
    def _op_update_one(coll: Any, req: Mapping[str, Any]) -> Any:
        r = coll.update_one(req["query"], req["update"], upsert=req.get("upsert", False))
        return {
            "matched_count": r.matched_count,
            "modified_count": r.modified_count,
            "upserted_id": r.upserted_id,
        }

    @staticmethod
    def _op_update_many(coll: Any, req: Mapping[str, Any]) -> Any:
        r = coll.update_many(req["query"], req["update"], upsert=req.get("upsert", False))
        return {"matched_count": r.matched_count, "modified_count": r.modified_count}

    @staticmethod
    def _op_find_one_and_update(coll: Any, req: Mapping[str, Any]) -> Any:
        sort = [(f, d) for f, d in req["sort"]] if req.get("sort") else None
        return coll.find_one_and_update(
            req["query"],
            req["update"],
            sort=sort,
            return_document=req.get("return_document", "before"),
            upsert=req.get("upsert", False),
        )

    @staticmethod
    def _op_delete_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"deleted_count": coll.delete_one(req["query"]).deleted_count}

    @staticmethod
    def _op_delete_many(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"deleted_count": coll.delete_many(req.get("query") or {}).deleted_count}

    @staticmethod
    def _op_aggregate(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.aggregate(req["pipeline"],
                              explain=req.get("explain", False))

    @staticmethod
    def _op_create_index(coll: Any, req: Mapping[str, Any]) -> Any:
        # Compound clients send ``keys`` ([[field, dir], ...]); legacy ones
        # send the single ``field`` string.  Either is a valid index spec.
        keys = req.get("keys")
        if keys is None:
            keys = req["field"]
        else:
            keys = [(f, d) for f, d in keys]
        return coll.create_index(
            keys, unique=req.get("unique", False), name=req.get("name"),
            expire_after_seconds=req.get("expire_after_seconds"),
        )

    @staticmethod
    def _op_stats(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.stats()

    @staticmethod
    def _op_index_stats(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.index_stats()

    @staticmethod
    def _op_explain(coll: Any, req: Mapping[str, Any]) -> Any:
        if req.get("pipeline") is not None:
            return coll.explain(pipeline=req["pipeline"])
        sort = [(f, d) for f, d in req["sort"]] if req.get("sort") else None
        return coll.explain(
            req.get("query") or {},
            sort=sort,
            projection=req.get("projection"),
            hint=req.get("$hint"),
            verbosity=req.get("verbosity", "executionStats"),
        )

    @staticmethod
    def _op_plan_cache(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.plan_cache_stats()


class RemoteCollection:
    """Client-side handle mirroring the in-process Collection API subset."""

    def __init__(self, client: "RemoteClient", db: str, name: str):
        self._client = client
        self._db = db
        self.name = name

    def _call(self, op: str, **kwargs: Any) -> Any:
        return self._client.request({"op": op, "db": self._db, "coll": self.name, **kwargs})

    def insert_one(self, document: Mapping[str, Any]) -> Any:
        return self._call("insert_one", document=dict(document))

    def insert_many(self, documents: List[Mapping[str, Any]]) -> Any:
        return self._call("insert_many", documents=[dict(d) for d in documents])

    def find(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        sort: Optional[List[tuple]] = None,
        skip: int = 0,
        limit: int = 0,
        hint: Optional[str] = None,
    ) -> List[dict]:
        request: Dict[str, Any] = {
            "query": query or {},
            "projection": projection,
            "sort": [list(p) for p in sort] if sort else None,
            "skip": skip,
            "limit": limit,
        }
        if hint is not None:
            request["$hint"] = hint
        return self._call("find", **request)

    def find_one(self, query=None, projection=None) -> Optional[dict]:
        return self._call("find_one", query=query or {}, projection=projection)

    def count_documents(self, query=None) -> int:
        return self._call("count", query=query or {})

    def distinct(self, field: str, query=None) -> List[Any]:
        return self._call("distinct", field=field, query=query)

    def update_one(self, query, update, upsert=False) -> dict:
        return self._call("update_one", query=query, update=update, upsert=upsert)

    def update_many(self, query, update, upsert=False) -> dict:
        return self._call("update_many", query=query, update=update, upsert=upsert)

    def find_one_and_update(
        self, query, update, sort=None, return_document="before", upsert=False
    ) -> Optional[dict]:
        return self._call(
            "find_one_and_update",
            query=query,
            update=update,
            sort=[list(p) for p in sort] if sort else None,
            return_document=return_document,
            upsert=upsert,
        )

    def delete_one(self, query) -> dict:
        return self._call("delete_one", query=query)

    def delete_many(self, query=None) -> dict:
        return self._call("delete_many", query=query or {})

    def aggregate(self, pipeline: List[Mapping[str, Any]],
                  explain: bool = False) -> Any:
        """Run a pipeline server-side; ``explain=True`` returns per-stage
        executionStats instead of result documents."""
        if explain:
            return self._call("aggregate", pipeline=pipeline, explain=True)
        return self._call("aggregate", pipeline=pipeline)

    def create_index(self, keys: Any, unique: bool = False,
                     name: Optional[str] = None,
                     expire_after_seconds: Optional[float] = None) -> str:
        """Create a single-field or compound index on the remote collection.

        ``keys`` takes anything the in-process API takes: a field name or a
        ``[("formula", 1), ("e_above_hull", -1)]`` key list;
        ``expire_after_seconds`` makes it a TTL index, as in-process.
        """
        if isinstance(keys, str):
            return self._call("create_index", field=keys, unique=unique,
                              name=name,
                              expire_after_seconds=expire_after_seconds)
        return self._call(
            "create_index",
            keys=[list(p) for p in normalize_index_spec(keys)],
            unique=unique,
            name=name,
            expire_after_seconds=expire_after_seconds,
        )

    def stats(self) -> dict:
        return self._call("stats")

    def index_stats(self) -> List[dict]:
        """``$indexStats``-style per-index usage accounting."""
        return self._call("index_stats")

    def explain(
        self,
        query: Optional[Mapping[str, Any]] = None,
        sort: Optional[List[tuple]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        hint: Optional[str] = None,
        verbosity: str = "executionStats",
        pipeline: Optional[List[Mapping[str, Any]]] = None,
    ) -> dict:
        """Run the remote planner for ``query`` (advisor replay support).

        With ``pipeline=[...]`` explains an aggregation instead — same
        per-stage executionStats as the in-process API.
        """
        if pipeline is not None:
            return self._call("explain", pipeline=pipeline)
        request: Dict[str, Any] = {
            "query": query or {},
            "sort": [list(p) for p in sort] if sort else None,
            "projection": projection,
            "verbosity": verbosity,
        }
        if hint is not None:
            request["$hint"] = hint
        return self._call("explain", **request)

    def plan_cache_stats(self) -> dict:
        """The remote collection's plan-cache counters and size."""
        return self._call("plan_cache")


class _RemoteDatabase:
    def __init__(self, client: "RemoteClient", name: str):
        self._client = client
        self.name = name

    def __getitem__(self, coll: str) -> RemoteCollection:
        return RemoteCollection(self._client, self.name, coll)

    def get_collection(self, coll: str) -> RemoteCollection:
        return self[coll]

    def list_collection_names(self) -> List[str]:
        return self._client.request({"op": "list_collections", "db": self.name})

    def server_status(self) -> dict:
        """The remote database's ``serverStatus`` (mongostat source)."""
        return self._client.request({"op": "db_status", "db": self.name})

    def top(self) -> dict:
        """Per-collection read/write time on the server (mongotop source)."""
        return self._client.request({"op": "top", "db": self.name})


#: Wire ops safe to retry after a connection failure: re-executing them
#: cannot duplicate a write.  Everything else fails fast unless the client
#: was built with ``retry_non_idempotent=True``.
_IDEMPOTENT_OPS = frozenset({
    "ping", "find", "find_one", "count", "distinct", "aggregate",
    "list_databases", "list_collections", "server_status", "db_status",
    "top", "stats", "index_stats", "explain", "plan_cache", "current_op",
    "export_traces", "lock_report", "profile", "flight", "shard_status",
    "add_shard",
})

#: Server error types re-raised as their specific client-side exception
#: (all DocstoreError subclasses, so existing handlers keep working).
_REMOTE_ERROR_TYPES = {
    "DeadlineExceeded": DeadlineExceeded,
    "OperationKilled": OperationKilled,
    "ClusterError": ClusterError,
    "NotPrimary": NotPrimary,
    "StaleEpoch": StaleEpoch,
    "ShardingError": ShardingError,
}


class _WireConnection:
    """One pooled socket + buffered reader to the server (or proxy)."""

    __slots__ = ("sock", "rfile")

    def __init__(self, host: str, port: int, timeout: float):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")

    def roundtrip(self, payload: bytes, timeout: Optional[float]) -> bytes:
        self.sock.settimeout(timeout)
        self.sock.sendall(payload)
        line = self.rfile.readline()
        if not line:
            raise ConnectionLost("connection closed by server")
        if not line.endswith(b"\n"):
            # EOF mid-frame: the server died (or closed on a write fault)
            # partway through a response.  Surface it as a connection loss
            # so the retry machinery — not the JSON parser — handles it.
            raise ConnectionLost("truncated response frame")
        return line

    def close(self) -> None:
        try:
            self.rfile.close()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass


class RemoteClient:
    """TCP client for :class:`DatastoreServer` (or the proxy).

    Hardened for real concurrency:

    * a **connection pool** (``pool_size`` sockets, created lazily) lets
      many threads issue requests in parallel instead of serializing on
      one socket;
    * **per-op timeouts**: every request carries a ``"$deadline"`` (epoch
      seconds) so the server refuses to start — and cooperatively aborts —
      work the client has already given up on;
    * **retry with exponential backoff + jitter** on connection errors,
      for idempotent ops only by default (``retry_non_idempotent=True``
      opts writes in, for callers whose writes carry natural idempotency
      keys).  Server-side errors (``ok: false``) are never retried — the
      connection is healthy and the answer is the answer.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 pool_size: int = 4, max_retries: int = 3,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 2.0,
                 retry_non_idempotent: bool = False):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.pool_size = max(1, int(pool_size))
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.retry_non_idempotent = retry_non_idempotent
        self._idle: Deque[_WireConnection] = deque()
        self._pool_lock = threading.Lock()
        self._pool_sema = threading.BoundedSemaphore(self.pool_size)
        self._created = 0
        self._retries = 0
        self._closed = False
        self._rng = random.Random()

    def __getitem__(self, db: str) -> _RemoteDatabase:
        return _RemoteDatabase(self, db)

    def get_database(self, db: str) -> _RemoteDatabase:
        return _RemoteDatabase(self, db)

    # -- pool -------------------------------------------------------------

    def _checkout(self) -> _WireConnection:
        self._pool_sema.acquire()
        try:
            with self._pool_lock:
                if self._closed:
                    raise DocstoreError("client is closed")
                if self._idle:
                    return self._idle.popleft()
            conn = _WireConnection(self.host, self.port, self.timeout)
            with self._pool_lock:
                self._created += 1
            return conn
        except BaseException:
            self._pool_sema.release()
            raise

    def _checkin(self, conn: _WireConnection) -> None:
        with self._pool_lock:
            if self._closed:
                conn.close()
            else:
                self._idle.append(conn)
        self._pool_sema.release()

    def _discard(self, conn: _WireConnection) -> None:
        conn.close()
        with self._pool_lock:
            self._created -= 1
        self._pool_sema.release()

    def pool_stats(self) -> dict:
        with self._pool_lock:
            return {
                "pool_size": self.pool_size,
                "connections": self._created,
                "idle": len(self._idle),
                "retries": self._retries,
            }

    # -- request path -----------------------------------------------------

    def request(self, request: Mapping[str, Any],
                timeout: Optional[float] = None) -> Any:
        """Send one request document, return the unwrapped result.

        Inside an active trace, the roundtrip runs under a ``client.<op>``
        span and the request carries its ``"$trace"`` context, so the
        server (and any proxy in between) joins the same trace.  Untraced
        callers pay nothing: no span, no extra wire field.
        """
        ctx = trace_context()
        if ctx is None:
            return self._roundtrip(request, timeout)
        with span(f"client.{request.get('op')}", host=self.host,
                  port=self.port):
            traced = dict(request)
            traced["$trace"] = trace_context()
            return self._roundtrip(traced, timeout)

    def _roundtrip(self, request: Mapping[str, Any],
                   timeout: Optional[float] = None) -> Any:
        op = request.get("op")
        op_timeout = self.timeout if timeout is None else timeout
        deadline = (time.time() + op_timeout) if op_timeout else None
        wire_request = dict(request)
        if deadline is not None and "$deadline" not in wire_request:
            wire_request["$deadline"] = deadline
        payload = (document_to_json(wire_request) + "\n").encode("utf-8")
        retryable = self.retry_non_idempotent or op in _IDEMPOTENT_OPS
        attempt = 0
        while True:
            try:
                line = self._exchange(payload, op_timeout)
                break
            except (ConnectionLost, OSError) as exc:
                out_of_time = deadline is not None and time.time() >= deadline
                if not retryable or attempt >= self.max_retries or out_of_time:
                    raise
                delay = min(self.backoff_max_s,
                            self.backoff_base_s * (2 ** attempt))
                # Full-jitter-ish: half deterministic, half random, so a
                # thundering herd of reconnecting clients spreads out.
                delay *= 0.5 + self._rng.random() * 0.5
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.time()))
                attempt += 1
                with self._pool_lock:
                    self._retries += 1
                get_registry().counter(
                    "repro_client_retries_total",
                    "wire requests retried after connection errors"
                ).inc(1, op=str(op), error=type(exc).__name__)
                time.sleep(delay)
        response = document_from_json(line.decode("utf-8"))
        if not response.get("ok"):
            error = response.get("error")
            exc_type = _REMOTE_ERROR_TYPES.get(error, DocstoreError)
            raise exc_type(
                f"remote error {error}: {response.get('message')}"
            )
        return response.get("result")

    def _exchange(self, payload: bytes, op_timeout: Optional[float]) -> bytes:
        conn = self._checkout()
        try:
            line = conn.roundtrip(payload, op_timeout)
        except BaseException:
            # The connection is in an unknown framing state; never reuse it.
            self._discard(conn)
            raise
        self._checkin(conn)
        return line

    def ping(self) -> bool:
        return self.request({"op": "ping"}) == "pong"

    def server_status(self) -> dict:
        """Aggregate ``serverStatus`` across the remote store's databases."""
        return self.request({"op": "server_status"})

    def current_op(self) -> List[dict]:
        """``db.currentOp()`` against the remote store."""
        return self.request({"op": "current_op"})

    def kill_op(self, opid: int) -> bool:
        """``db.killOp(opid)`` against the remote store."""
        return self.request({"op": "kill_op", "opid": opid})

    def export_traces(self, trace_id: Optional[str] = None) -> List[dict]:
        """Finished span dicts buffered in the *server* process."""
        return self.request({"op": "export_traces", "trace_id": trace_id})

    def profile(self, action: str = "snapshot", hz: Optional[float] = None,
                limit: int = 0) -> Any:
        """Drive the *server's* sampling profiler over the wire.

        ``action`` is ``start``/``stop``/``reset``/``snapshot``/``flame``;
        ``flame`` returns folded ``stack count`` lines of the server
        process, ready for a flamegraph renderer.
        """
        request: Dict[str, Any] = {"op": "profile", "action": action}
        if hz is not None:
            request["hz"] = hz
        if limit:
            request["limit"] = limit
        return self.request(request)

    def lock_report(self, limit: int = 10) -> dict:
        """Store-wide lock totals + top contended (waiter, holder) sites."""
        return self.request({"op": "lock_report", "limit": limit})

    def shard_status(self) -> dict:
        """The remote cluster's topology/counters (``sh.status()`` analog)."""
        return self.request({"op": "shard_status"})

    def add_shard(self, shard_id: str) -> dict:
        """Register a shard on the remote cluster (idempotent)."""
        return self.request({"op": "add_shard", "shard": shard_id})

    def move_chunk(self, ns: str, chunk_id: str, to: str) -> dict:
        """Migrate one chunk on the remote cluster; returns docs moved."""
        return self.request({"op": "move_chunk", "ns": ns,
                             "chunk": chunk_id, "to": to})

    def step_down(self, shard_id: str) -> dict:
        """Demote a remote shard's primary; returns the new primary."""
        return self.request({"op": "step_down", "shard": shard_id})

    def flight(self, action: str = "status", limit: int = 0,
               threshold: Optional[float] = None) -> Any:
        """Read the *server's* flight recorder over the wire.

        ``action`` is ``status``/``window``/``events``/``anomalies``/
        ``crash``; ``limit`` bounds ``window``/``events``; ``threshold``
        tunes the ``anomalies`` MAD-z-score cutoff.
        """
        request: Dict[str, Any] = {"op": "flight", "action": action}
        if limit:
            request["limit"] = limit
        if threshold is not None:
            request["threshold"] = threshold
        return self.request(request)

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            idle, self._idle = list(self._idle), deque()
        for conn in idle:
            conn.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
