"""Socket wire protocol: datastore server and client.

HPC worker nodes in the paper "are not allowed to communicate outside the
system. Thus, we had to use a proxy to have our tasks communicate with the
MongoDB Server" (§IV-A2).  To reproduce that topology we expose the document
store over a real TCP socket speaking newline-delimited extended JSON, with
a :class:`RemoteClient` mirroring the in-process API, and a forwarding
:class:`~repro.docstore.proxy.DatastoreProxy` that is the only route allowed
from simulated worker nodes.

The protocol is a JSON request/response pair per line::

    {"op": "find", "db": "mp", "coll": "tasks", "query": {...}, ...}
    {"ok": true, "result": [...]}

Distributed tracing rides the same line: a traced client attaches a
``"$trace"`` field (``{"trace_id": ..., "span_id": ...}``) to each request
and the server reconstructs the remote parent, so one trace stitches
client → proxy → server → per-shard fan-out across processes.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, List, Mapping, Optional

from ..errors import DocstoreError, WireProtocolError
from ..obs import export_traces, get_registry, remote_span, span, trace_context
from .database import DocumentStore
from .documents import document_from_json, document_to_json

__all__ = ["DatastoreServer", "RemoteClient", "RemoteCollection"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "DatastoreServer" = self.server.datastore_server  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                break
            error_type = None
            try:
                request = document_from_json(line.decode("utf-8"))
                response = server.dispatch(request)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                error_type = type(exc).__name__
                response = {"ok": False, "error": error_type, "message": str(exc)}
            try:
                payload = document_to_json(response) + "\n"
            except Exception as exc:  # noqa: BLE001 - unserializable result
                error_type = type(exc).__name__
                payload = document_to_json(
                    {"ok": False, "error": error_type, "message": str(exc)}
                ) + "\n"
            encoded = payload.encode("utf-8")
            # Traffic is accounted whether or not dispatch raised: the bytes
            # crossed the wire either way, and error responses are traffic
            # too.  Failed exchanges carry the exception type as a label.
            registry = get_registry()
            labels = {"direction": "server"}
            if error_type is not None:
                registry.counter(
                    "repro_wire_errors_total", "wire-protocol failed exchanges"
                ).inc(1, error=error_type)
                labels["error"] = error_type
            registry.counter(
                "repro_wire_bytes_total", "wire-protocol traffic"
            ).inc(len(line) + len(encoded), **labels)
            try:
                self.wfile.write(encoded)
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class DatastoreServer:
    """Serves a :class:`DocumentStore` over TCP (one JSON doc per line)."""

    def __init__(self, store: Optional[DocumentStore] = None, host: str = "127.0.0.1", port: int = 0):
        self.store = store or DocumentStore()
        self._tcp = _ThreadingTCPServer((host, port), _Handler)
        self._tcp.datastore_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0
        self._stats_lock = threading.Lock()

    @property
    def address(self) -> tuple:
        return self._tcp.server_address

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    def start(self) -> "DatastoreServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DatastoreServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- request dispatch -------------------------------------------------

    def dispatch(self, request: Mapping[str, Any]) -> dict:
        """Execute one wire request against the store.

        When the request carries a ``"$trace"`` context the whole dispatch
        runs under a server-side span whose trace id is the *client's*, so
        profiler entries and child spans recorded here join the caller's
        distributed trace.
        """
        if not isinstance(request, Mapping) or "op" not in request:
            raise WireProtocolError("request must be a document with an 'op'")
        ctx = request.get("$trace")
        if ctx is None:
            return self._dispatch(request)
        with remote_span(f"wire.{request['op']}", ctx,
                         db=request.get("db"), coll=request.get("coll")):
            return self._dispatch(request)

    def _dispatch(self, request: Mapping[str, Any]) -> dict:
        with self._stats_lock:
            self.requests_served += 1
        op = request["op"]
        get_registry().counter(
            "repro_wire_requests_total", "wire-protocol requests dispatched"
        ).inc(1, op=str(op))
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "list_databases":
            return {"ok": True, "result": self.store.list_database_names()}
        if op == "current_op":
            return {"ok": True, "result": self.store.current_op()}
        if op == "kill_op":
            return {"ok": True, "result": self.store.kill_op(request["opid"])}
        if op == "export_traces":
            return {"ok": True,
                    "result": export_traces(request.get("trace_id"))}
        if op == "server_status":
            return {"ok": True, "result": self.store.server_status()}
        db_name = request.get("db")
        if not isinstance(db_name, str):
            raise WireProtocolError("request missing 'db'")
        db = self.store.get_database(db_name)
        if op == "list_collections":
            return {"ok": True, "result": db.list_collection_names()}
        if op == "db_status":
            return {"ok": True, "result": db.server_status()}
        if op == "top":
            return {"ok": True, "result": db.top()}
        coll_name = request.get("coll")
        if not isinstance(coll_name, str):
            raise WireProtocolError("request missing 'coll'")
        coll = db.get_collection(coll_name)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise WireProtocolError(f"unknown wire op {op!r}")
        return {"ok": True, "result": handler(coll, request)}

    @staticmethod
    def _op_insert_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"inserted_id": coll.insert_one(req["document"]).inserted_id}

    @staticmethod
    def _op_insert_many(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"inserted_ids": coll.insert_many(req["documents"]).inserted_ids}

    @staticmethod
    def _op_find(coll: Any, req: Mapping[str, Any]) -> Any:
        cursor = coll.find(req.get("query") or {}, req.get("projection"))
        if req.get("sort"):
            cursor = cursor.sort([(f, d) for f, d in req["sort"]])
        if req.get("skip"):
            cursor = cursor.skip(req["skip"])
        if req.get("limit"):
            cursor = cursor.limit(req["limit"])
        return cursor.to_list()

    @staticmethod
    def _op_find_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.find_one(req.get("query") or {}, req.get("projection"))

    @staticmethod
    def _op_count(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.count_documents(req.get("query") or {})

    @staticmethod
    def _op_distinct(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.distinct(req["field"], req.get("query"))

    @staticmethod
    def _op_update_one(coll: Any, req: Mapping[str, Any]) -> Any:
        r = coll.update_one(req["query"], req["update"], upsert=req.get("upsert", False))
        return {
            "matched_count": r.matched_count,
            "modified_count": r.modified_count,
            "upserted_id": r.upserted_id,
        }

    @staticmethod
    def _op_update_many(coll: Any, req: Mapping[str, Any]) -> Any:
        r = coll.update_many(req["query"], req["update"], upsert=req.get("upsert", False))
        return {"matched_count": r.matched_count, "modified_count": r.modified_count}

    @staticmethod
    def _op_find_one_and_update(coll: Any, req: Mapping[str, Any]) -> Any:
        sort = [(f, d) for f, d in req["sort"]] if req.get("sort") else None
        return coll.find_one_and_update(
            req["query"],
            req["update"],
            sort=sort,
            return_document=req.get("return_document", "before"),
            upsert=req.get("upsert", False),
        )

    @staticmethod
    def _op_delete_one(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"deleted_count": coll.delete_one(req["query"]).deleted_count}

    @staticmethod
    def _op_delete_many(coll: Any, req: Mapping[str, Any]) -> Any:
        return {"deleted_count": coll.delete_many(req.get("query") or {}).deleted_count}

    @staticmethod
    def _op_aggregate(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.aggregate(req["pipeline"])

    @staticmethod
    def _op_create_index(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.create_index(req["field"], unique=req.get("unique", False))

    @staticmethod
    def _op_stats(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.stats()

    @staticmethod
    def _op_index_stats(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.index_stats()

    @staticmethod
    def _op_explain(coll: Any, req: Mapping[str, Any]) -> Any:
        return coll.explain(req.get("query") or {})


class RemoteCollection:
    """Client-side handle mirroring the in-process Collection API subset."""

    def __init__(self, client: "RemoteClient", db: str, name: str):
        self._client = client
        self._db = db
        self.name = name

    def _call(self, op: str, **kwargs: Any) -> Any:
        return self._client.request({"op": op, "db": self._db, "coll": self.name, **kwargs})

    def insert_one(self, document: Mapping[str, Any]) -> Any:
        return self._call("insert_one", document=dict(document))

    def insert_many(self, documents: List[Mapping[str, Any]]) -> Any:
        return self._call("insert_many", documents=[dict(d) for d in documents])

    def find(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        sort: Optional[List[tuple]] = None,
        skip: int = 0,
        limit: int = 0,
    ) -> List[dict]:
        return self._call(
            "find",
            query=query or {},
            projection=projection,
            sort=[list(p) for p in sort] if sort else None,
            skip=skip,
            limit=limit,
        )

    def find_one(self, query=None, projection=None) -> Optional[dict]:
        return self._call("find_one", query=query or {}, projection=projection)

    def count_documents(self, query=None) -> int:
        return self._call("count", query=query or {})

    def distinct(self, field: str, query=None) -> List[Any]:
        return self._call("distinct", field=field, query=query)

    def update_one(self, query, update, upsert=False) -> dict:
        return self._call("update_one", query=query, update=update, upsert=upsert)

    def update_many(self, query, update, upsert=False) -> dict:
        return self._call("update_many", query=query, update=update, upsert=upsert)

    def find_one_and_update(
        self, query, update, sort=None, return_document="before", upsert=False
    ) -> Optional[dict]:
        return self._call(
            "find_one_and_update",
            query=query,
            update=update,
            sort=[list(p) for p in sort] if sort else None,
            return_document=return_document,
            upsert=upsert,
        )

    def delete_one(self, query) -> dict:
        return self._call("delete_one", query=query)

    def delete_many(self, query=None) -> dict:
        return self._call("delete_many", query=query or {})

    def aggregate(self, pipeline: List[Mapping[str, Any]]) -> List[dict]:
        return self._call("aggregate", pipeline=pipeline)

    def create_index(self, field: str, unique: bool = False) -> str:
        return self._call("create_index", field=field, unique=unique)

    def stats(self) -> dict:
        return self._call("stats")

    def index_stats(self) -> List[dict]:
        """``$indexStats``-style per-index usage accounting."""
        return self._call("index_stats")

    def explain(self, query: Optional[Mapping[str, Any]] = None) -> dict:
        """Run the remote planner for ``query`` (advisor replay support)."""
        return self._call("explain", query=query or {})


class _RemoteDatabase:
    def __init__(self, client: "RemoteClient", name: str):
        self._client = client
        self.name = name

    def __getitem__(self, coll: str) -> RemoteCollection:
        return RemoteCollection(self._client, self.name, coll)

    def get_collection(self, coll: str) -> RemoteCollection:
        return self[coll]

    def list_collection_names(self) -> List[str]:
        return self._client.request({"op": "list_collections", "db": self.name})

    def server_status(self) -> dict:
        """The remote database's ``serverStatus`` (mongostat source)."""
        return self._client.request({"op": "db_status", "db": self.name})

    def top(self) -> dict:
        """Per-collection read/write time on the server (mongotop source)."""
        return self._client.request({"op": "top", "db": self.name})


class RemoteClient:
    """TCP client for :class:`DatastoreServer` (or the proxy)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()

    def __getitem__(self, db: str) -> _RemoteDatabase:
        return _RemoteDatabase(self, db)

    def get_database(self, db: str) -> _RemoteDatabase:
        return _RemoteDatabase(self, db)

    def request(self, request: Mapping[str, Any]) -> Any:
        """Send one request document, return the unwrapped result.

        Inside an active trace, the roundtrip runs under a ``client.<op>``
        span and the request carries its ``"$trace"`` context, so the
        server (and any proxy in between) joins the same trace.  Untraced
        callers pay nothing: no span, no extra wire field.
        """
        ctx = trace_context()
        if ctx is None:
            return self._roundtrip(request)
        with span(f"client.{request.get('op')}", host=self.host,
                  port=self.port):
            traced = dict(request)
            traced["$trace"] = trace_context()
            return self._roundtrip(traced)

    def _roundtrip(self, request: Mapping[str, Any]) -> Any:
        payload = (document_to_json(request) + "\n").encode("utf-8")
        with self._lock:
            self._sock.sendall(payload)
            line = self._rfile.readline()
        if not line:
            raise WireProtocolError("connection closed by server")
        response = document_from_json(line.decode("utf-8"))
        if not response.get("ok"):
            raise DocstoreError(
                f"remote error {response.get('error')}: {response.get('message')}"
            )
        return response.get("result")

    def ping(self) -> bool:
        return self.request({"op": "ping"}) == "pong"

    def server_status(self) -> dict:
        """Aggregate ``serverStatus`` across the remote store's databases."""
        return self.request({"op": "server_status"})

    def current_op(self) -> List[dict]:
        """``db.currentOp()`` against the remote store."""
        return self.request({"op": "current_op"})

    def kill_op(self, opid: int) -> bool:
        """``db.killOp(opid)`` against the remote store."""
        return self.request({"op": "kill_op", "opid": opid})

    def export_traces(self, trace_id: Optional[str] = None) -> List[dict]:
        """Finished span dicts buffered in the *server* process."""
        return self.request({"op": "export_traces", "trace_id": trace_id})

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
