"""Cost-based query planning: candidate enumeration, ranking, plan cache.

The paper's interactive workloads — arbitrary property-range queries like
``{"nelements": 2, "e_above_hull": {"$lte": 0.05}}`` from the Materials API
and web UI — are only feasible because MongoDB picks good index plans and
reuses them.  This module reproduces that architecture:

1. **Enumeration** — for each index, the usable *prefix* of the query is
   computed from :func:`~repro.docstore.matching.index_predicates`:
   equality/``$in`` point probes extend the prefix, the first range
   predicate closes it with bounds, and indexes that merely provide the
   requested sort order are enumerated too.  A COLLSCAN candidate always
   competes.
2. **Ranking** — candidates race over a bounded trial (MongoDB's ``works``
   budget): each plan executes until it produces 101 results or exhausts
   the budget, and is scored by productivity (results per unit of work)
   plus bonuses for finishing outright, avoiding a blocking sort, and
   covering the query from index keys alone.  Ties break deterministically
   (index plans over COLLSCAN, more key components, then index name).
3. **Plan cache** — winners are cached under a canonical *query shape*
   (field names + operator types + sort + projection, values elided) in an
   LRU; create/drop index invalidates the cache, and a cached plan whose
   runtime productivity collapses relative to its trial is evicted and
   replanned.  ``hits``/``misses``/``evictions``/``replans`` surface via
   :meth:`PlanCache.stats` and ``repro_docstore_plan_cache_total`` metrics.
4. **Execution** — :func:`iter_plan` drives the winning plan: IDHACK for
   ``{"_id": value}`` point reads, bounded index scans (forward or reverse
   so ``sort`` consumes index order without a blocking sort), covered
   plans that rebuild result documents from index keys without touching
   the collection, and the COLLSCAN fallback.  Every candidate document is
   re-verified by the compiled matcher, so plans only ever narrow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import DocstoreError
from ..obs import get_registry
from .documents import MISSING, set_path
from .indexes import Index
from .matching import Matcher, index_predicates
from .objectid import ObjectId

__all__ = [
    "CandidatePlan",
    "PlanCache",
    "PlanResult",
    "QueryPlanner",
    "canonical_shape",
    "iter_plan",
    "shard_key_predicate",
]

#: A plan trial ends after this many results (MongoDB's numResults limit).
TRIAL_MAX_RESULTS = 101
#: Fan-out cap: a candidate may split into at most this many point scans.
MAX_SCANS = 64
#: Cached plans re-enter planning once runtime productivity falls below
#: trial productivity divided by this factor (with enough work observed).
REPLAN_DEGRADATION_FACTOR = 10.0
#: Minimum work observed before a cached plan may be declared degraded.
REPLAN_MIN_WORKS = 100


def _plan_cache_event(event: str) -> None:
    get_registry().counter(
        "repro_docstore_plan_cache_total",
        "plan cache lookups and lifecycle events by type",
    ).inc(1, event=event)


def canonical_shape(
    query: Mapping[str, Any],
    sort_spec: Optional[Sequence[Tuple[str, int]]] = None,
    projection: Optional[Mapping[str, Any]] = None,
) -> tuple:
    """Hashable canonical query shape: structure kept, constants elided.

    ``{"f": "Fe2O3", "e": {"$lte": 0.05}}`` and ``{"e": {"$lte": 1.0},
    "f": "NaCl"}`` share a shape; a different operator, sort, or projection
    does not.
    """

    def shape_value(value: Any) -> Any:
        if isinstance(value, Mapping) and any(
            str(k).startswith("$") for k in value
        ):
            return tuple(sorted(
                ((str(k), shape_value(v)) for k, v in value.items()),
                key=lambda kv: kv[0],
            ))
        return "?"

    query_part = tuple(sorted(
        ((str(f), shape_value(c)) for f, c in query.items()),
        key=lambda kv: kv[0],
    ))
    sort_part = tuple((f, d) for f, d in sort_spec) if sort_spec else ()
    proj_part = tuple(sorted(
        (str(f), 1 if v in (1, True) else 0)
        for f, v in (projection or {}).items()
    )) if projection else ()
    return (query_part, sort_part, proj_part)


def shard_key_predicate(query: Mapping[str, Any], shard_key: str):
    """The index-usable constraint ``query`` places on the shard key.

    This is the planner's candidate-enumeration machinery reused for shard
    *targeting*: the same per-field predicate decomposition that decides
    whether an index prefix can serve a query decides whether the chunk map
    can prune shards.  Returns the shard key's
    :class:`~repro.docstore.matching.FieldPredicate` when its ``kind`` is
    usable for routing (``eq``, ``in``, or ``range``), else ``None`` — the
    router scatter-gathers exactly when the planner would refuse the same
    predicate as an index prefix.
    """
    predicate = index_predicates(query).get(shard_key)
    if predicate is None or predicate.kind not in ("eq", "in", "range"):
        return None
    return predicate


class ScanSpec:
    """Arguments for one contiguous :meth:`Index.scan` segment."""

    __slots__ = ("prefix", "bounds")

    def __init__(self, prefix: Tuple[Any, ...],
                 bounds: Optional[Dict[str, Any]] = None):
        self.prefix = prefix
        self.bounds = bounds


class CandidatePlan:
    """One way to answer a query, with trial statistics once raced."""

    __slots__ = (
        "kind", "index", "scans", "direction", "n_components",
        "provides_sort", "needs_blocking_sort", "covered", "id_value",
        "trial_works", "trial_advanced", "trial_finished", "score",
    )

    def __init__(
        self,
        kind: str,
        index: Optional[Index] = None,
        scans: Optional[List[ScanSpec]] = None,
        direction: int = 1,
        n_components: int = 0,
        provides_sort: bool = False,
        needs_blocking_sort: bool = False,
        covered: bool = False,
        id_value: Any = None,
    ):
        self.kind = kind  # "COLLSCAN" | "IXSCAN" | "IDHACK"
        self.index = index
        self.scans = scans or []
        self.direction = direction
        self.n_components = n_components
        self.provides_sort = provides_sort
        self.needs_blocking_sort = needs_blocking_sort
        self.covered = covered
        self.id_value = id_value
        self.trial_works = 0
        self.trial_advanced = 0
        self.trial_finished = False
        self.score = 0.0

    @property
    def index_name(self) -> Optional[str]:
        return self.index.name if self.index is not None else None

    @property
    def key_pattern(self) -> Optional[List[Tuple[str, int]]]:
        return list(self.index.keys) if self.index is not None else None

    @property
    def summary(self) -> str:
        if self.kind == "IXSCAN" and self.index is not None:
            pattern = ", ".join(f"{f}: {d}" for f, d in self.index.keys)
            return f"IXSCAN {{ {pattern} }}"
        return self.kind

    def describe(self) -> dict:
        """Explain-style record (used for ``rejectedPlans``)."""
        return {
            "stage": self.kind,
            "index": self.index_name,
            "planSummary": self.summary,
            "providesSort": self.provides_sort,
            "covered": self.covered,
            "score": self.score,
            "trial": {
                "works": self.trial_works,
                "advanced": self.trial_advanced,
                "finished": self.trial_finished,
            },
        }


class PlanResult:
    """Outcome of one planning pass."""

    __slots__ = ("winner", "rejected", "cache_status", "shape")

    def __init__(self, winner: CandidatePlan,
                 rejected: Optional[List[CandidatePlan]] = None,
                 cache_status: str = "none",
                 shape: Optional[tuple] = None):
        self.winner = winner
        self.rejected = rejected or []
        self.cache_status = cache_status  # "none" | "hit" | "miss"
        self.shape = shape


class _CacheEntry:
    __slots__ = ("index_name", "trial_productivity", "trial_works")

    def __init__(self, index_name: Optional[str], trial_productivity: float,
                 trial_works: int):
        self.index_name = index_name  # None → cached COLLSCAN decision
        self.trial_productivity = trial_productivity
        self.trial_works = trial_works


class PlanCache:
    """LRU of winning plans keyed by canonical query shape."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.replans = 0

    def lookup(self, shape: tuple) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(shape)
            if entry is not None:
                self._entries.move_to_end(shape)
                self.hits += 1
            else:
                self.misses += 1
        _plan_cache_event("hit" if entry is not None else "miss")
        return entry

    def store(self, shape: tuple, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[shape] = entry
            self._entries.move_to_end(shape)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        for _ in range(evicted):
            _plan_cache_event("evict")

    def remove(self, shape: tuple) -> None:
        with self._lock:
            self._entries.pop(shape, None)

    def peek(self, shape: tuple) -> Optional[_CacheEntry]:
        """Read an entry without touching LRU order or hit/miss counts."""
        with self._lock:
            return self._entries.get(shape)

    def invalidate_all(self) -> int:
        """Drop every cached plan (index catalog changed)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
        _plan_cache_event("invalidate")
        return dropped

    def note_replan(self, shape: tuple) -> None:
        with self._lock:
            self._entries.pop(shape, None)
            self.replans += 1
        _plan_cache_event("replan")

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "replans": self.replans,
            }


def _pseudo_doc(index: Index, values: Tuple[Any, ...]) -> dict:
    """Rebuild a (partial) document from one index entry's key values."""
    out: dict = {}
    for field, value in zip(index.fields, values):
        if value is not MISSING:
            set_path(out, field, value)
    return out


def iter_plan(
    collection: Any,
    candidate: CandidatePlan,
    matcher: Matcher,
    stats: Dict[str, int],
    max_works: Optional[int] = None,
) -> Iterator[Tuple[dict, int]]:
    """Execute ``candidate`` against ``collection``, yielding matches.

    Yields ``(document, position)`` pairs; for covered plans the document
    is a pseudo-document rebuilt from index keys (the collection's
    document table is never consulted).  ``stats`` accumulates ``keys``
    (index entries visited) and ``docs`` (documents fetched); when the
    combined work exceeds ``max_works`` the generator stops and sets
    ``stats["capped"] = 1`` — the trial-run budget.

    The caller must hold the collection lock.
    """
    if candidate.kind == "IDHACK":
        stats["keys"] += 1
        pos = collection._id_to_pos.get(collection._id_key(candidate.id_value))
        if pos is not None:
            doc = collection._docs.get(pos)
            if doc is not None:
                stats["docs"] += 1
                if matcher.matches(doc):
                    yield doc, pos
        return
    if candidate.kind == "COLLSCAN":
        docs = collection._docs
        for pos in sorted(docs):
            if max_works is not None and stats["docs"] >= max_works:
                stats["capped"] = 1
                return
            doc = docs[pos]
            stats["docs"] += 1
            if matcher.matches(doc):
                yield doc, pos
        return
    index = candidate.index
    reverse = candidate.direction == -1
    # A document can surface from several scans ($in fan-out) or several
    # entries of one scan (multikey); deduplicate by position then.
    seen: Optional[set] = (
        set() if (index.multikey or len(candidate.scans) > 1) else None
    )
    for spec in candidate.scans:
        for values, pos in index.scan(spec.prefix, spec.bounds, reverse=reverse):
            if max_works is not None and stats["keys"] >= max_works:
                stats["capped"] = 1
                return
            stats["keys"] += 1
            if seen is not None:
                if pos in seen:
                    continue
                seen.add(pos)
            if candidate.covered:
                pseudo = _pseudo_doc(index, values)
                if matcher.matches(pseudo):
                    yield pseudo, pos
            else:
                doc = collection._docs.get(pos)
                if doc is None:
                    continue
                stats["docs"] += 1
                if matcher.matches(doc):
                    yield doc, pos


_IDHACK_TYPES = (str, int, float, bool, bytes, ObjectId, type(None))


class QueryPlanner:
    """Per-collection cost-based planner with a shape-keyed plan cache."""

    def __init__(self, collection: Any):
        self._coll = collection
        self.cache = PlanCache()

    # -- public API --------------------------------------------------------

    def invalidate(self) -> None:
        """Forget every cached plan (called on index create/drop)."""
        self.cache.invalidate_all()

    def plan(
        self,
        query: Mapping[str, Any],
        matcher: Matcher,
        sort_spec: Optional[Sequence[Tuple[str, int]]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        hint: Optional[str] = None,
        use_cache: bool = True,
    ) -> PlanResult:
        """Choose an execution plan.  Caller holds the collection lock."""
        sort_spec = list(sort_spec) if sort_spec else None
        predicates = index_predicates(query)

        # IDHACK: the {"_id": value} point read skips planning and cache.
        if (
            hint is None
            and set(query) == {"_id"}
            and "_id" in predicates
            and predicates["_id"].kind == "eq"
            and isinstance(predicates["_id"].value, _IDHACK_TYPES)
        ):
            return PlanResult(CandidatePlan("IDHACK",
                                            id_value=predicates["_id"].value))

        if hint is not None:
            return PlanResult(self._hinted(hint, predicates, sort_spec,
                                           query, projection))

        shape = canonical_shape(query, sort_spec, projection)
        if use_cache:
            entry = self.cache.lookup(shape)
            if entry is not None:
                candidate = self._rebuild(entry, predicates, sort_spec,
                                          query, projection)
                if candidate is not None:
                    return PlanResult(candidate, cache_status="hit",
                                      shape=shape)
                self.cache.remove(shape)

        candidates = self._enumerate(predicates, sort_spec, query, projection)
        if len(candidates) == 1:
            winner, rejected = candidates[0], []
        else:
            winner, rejected = self._race(candidates, matcher)
        if use_cache:
            productivity = (
                winner.trial_advanced / winner.trial_works
                if winner.trial_works else 1.0
            )
            self.cache.store(shape, _CacheEntry(winner.index_name,
                                                productivity,
                                                winner.trial_works))
        return PlanResult(winner, rejected,
                          cache_status="miss" if use_cache else "none",
                          shape=shape)

    def note_execution(self, result: PlanResult, stats: Mapping[str, int],
                       n_returned: int) -> None:
        """Post-execution feedback: evict cached plans that degraded.

        A cached plan whose runtime cost blows past its trial — works
        grown by more than :data:`REPLAN_DEGRADATION_FACTOR`, or observed
        productivity collapsed by the same factor (data distribution
        shifted since the trial) — is removed, so the next query of this
        shape re-races candidates.  This is MongoDB's replanning trigger.
        """
        if result.cache_status != "hit" or result.shape is None:
            return
        works = max(stats.get("keys", 0), stats.get("docs", 0))
        if works < REPLAN_MIN_WORKS:
            return
        cached = self.cache.peek(result.shape)
        if cached is None:
            return
        degraded = works > max(cached.trial_works, 1) * \
            REPLAN_DEGRADATION_FACTOR
        if not degraded:
            runtime_productivity = n_returned / works
            threshold = (cached.trial_productivity
                         / REPLAN_DEGRADATION_FACTOR)
            degraded = runtime_productivity < threshold
        if degraded:
            self.cache.note_replan(result.shape)

    # -- enumeration -------------------------------------------------------

    def _eq_points(self, value: Any) -> List[Any]:
        # Equality with None also matches documents missing the field
        # entirely (stored as MISSING), so the probe fans out.
        if value is None:
            return [None, MISSING]
        return [value]

    def _build_candidate(
        self,
        index: Index,
        predicates: Mapping[str, Any],
        sort_spec: Optional[List[Tuple[str, int]]],
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
    ) -> Optional[CandidatePlan]:
        """The best use of ``index`` for this query, or None if unusable."""
        prefixes: List[Tuple[Any, ...]] = [()]
        n_points = 0
        bounds: Optional[Dict[str, Any]] = None
        for field, _direction in index.keys:
            pred = predicates.get(field)
            if pred is None or pred.kind == "opaque":
                break
            if pred.kind == "range":
                bounds = dict(pred.bounds)
                break
            if pred.kind == "eq":
                points = self._eq_points(pred.value)
            elif pred.kind == "in":
                points = []
                for v in pred.values:
                    points.extend(self._eq_points(v))
            else:  # "all": any one member is a superset point probe
                points = [pred.values[0]]
            if len(prefixes) * len(points) > MAX_SCANS:
                break
            prefixes = [p + (v,) for p in prefixes for v in points]
            n_points += 1
            if pred.kind == "all":
                break
        usable = n_points > 0 or bounds is not None
        scans = [ScanSpec(p, dict(bounds) if bounds else None)
                 for p in prefixes]
        sort_direction = self._provides_sort(index, n_points, len(scans),
                                             sort_spec)
        if not usable:
            if not sort_direction:
                return None
            # Sort-only plan: walk the whole index in order.
            scans = [ScanSpec(())]
            n_points = 0
        covered = self._is_covered(index, query, projection, sort_spec)
        provides = bool(sort_direction)
        return CandidatePlan(
            "IXSCAN",
            index=index,
            scans=scans,
            direction=sort_direction if provides else 1,
            n_components=n_points + (1 if bounds is not None else 0),
            provides_sort=provides,
            needs_blocking_sort=bool(sort_spec) and not provides,
            covered=covered,
        )

    @staticmethod
    def _provides_sort(
        index: Index,
        n_points: int,
        n_scans: int,
        sort_spec: Optional[List[Tuple[str, int]]],
    ):
        """Scan direction (1/-1) if the index yields ``sort_spec`` order."""
        if not sort_spec or index.multikey or n_scans > 1:
            return False
        keys = index.keys
        for start in range(n_points + 1):
            if start + len(sort_spec) > len(keys):
                continue
            factors = set()
            matched = True
            for (s_field, s_dir), (k_field, k_dir) in zip(
                sort_spec, keys[start:]
            ):
                if s_field != k_field:
                    matched = False
                    break
                factors.add(s_dir * k_dir)
            if matched and len(factors) == 1:
                return factors.pop()
        return False

    @staticmethod
    def _is_covered(
        index: Index,
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
        sort_spec: Optional[List[Tuple[str, int]]],
    ) -> bool:
        """True when the projection can be answered from index keys alone."""
        if not projection or index.multikey:
            return False
        fields = set(index.fields)
        include: List[str] = []
        for field, flag in projection.items():
            if field == "_id":
                if flag in (0, False):
                    continue
                if "_id" not in fields:
                    return False
                continue
            if flag not in (1, True):
                return False  # exclusion projections are never covered
            include.append(field)
        if not include or not set(include) <= fields:
            return False
        # _id rides along unless suppressed; it must come from the keys.
        if projection.get("_id", 1) in (1, True) and "_id" not in fields:
            return False
        # Every query clause must be verifiable against the pseudo-document
        # rebuilt from key values: only top-level clauses on indexed fields.
        for field in query:
            if str(field).startswith("$") or field not in fields:
                return False
        if sort_spec and any(f not in fields for f, _ in sort_spec):
            return False
        return True

    def _enumerate(
        self,
        predicates: Mapping[str, Any],
        sort_spec: Optional[List[Tuple[str, int]]],
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
    ) -> List[CandidatePlan]:
        candidates: List[CandidatePlan] = []
        for index in self._coll._indexes.all():
            candidate = self._build_candidate(index, predicates, sort_spec,
                                              query, projection)
            if candidate is not None:
                candidates.append(candidate)
        candidates.append(CandidatePlan(
            "COLLSCAN",
            needs_blocking_sort=bool(sort_spec),
        ))
        return candidates

    def _rebuild(
        self,
        entry: _CacheEntry,
        predicates: Mapping[str, Any],
        sort_spec: Optional[List[Tuple[str, int]]],
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
    ) -> Optional[CandidatePlan]:
        """Re-bind a cached plan skeleton to this query's constants."""
        if entry.index_name is None:
            return CandidatePlan("COLLSCAN",
                                 needs_blocking_sort=bool(sort_spec))
        index = self._coll._indexes.get(entry.index_name)
        if index is None:
            return None
        return self._build_candidate(index, predicates, sort_spec, query,
                                     projection)

    def _hinted(
        self,
        hint: str,
        predicates: Mapping[str, Any],
        sort_spec: Optional[List[Tuple[str, int]]],
        query: Mapping[str, Any],
        projection: Optional[Mapping[str, Any]],
    ) -> CandidatePlan:
        """Force the hinted index (or ``$natural`` for a COLLSCAN)."""
        if hint == "$natural":
            return CandidatePlan("COLLSCAN",
                                 needs_blocking_sort=bool(sort_spec))
        index = self._coll._indexes.get(hint)
        if index is None:
            raise DocstoreError(
                f"hint: no index named {hint!r} on "
                f"collection {self._coll.name!r}"
            )
        candidate = self._build_candidate(index, predicates, sort_spec,
                                          query, projection)
        if candidate is None:
            # Unusable for the predicates: hint still forces a full scan
            # of this index, exactly like MongoDB.
            candidate = CandidatePlan(
                "IXSCAN",
                index=index,
                scans=[ScanSpec(())],
                provides_sort=bool(self._provides_sort(index, 0, 1,
                                                       sort_spec)),
                needs_blocking_sort=bool(sort_spec),
                covered=self._is_covered(index, query, projection, sort_spec),
            )
            direction = self._provides_sort(index, 0, 1, sort_spec)
            if direction:
                candidate.direction = direction
                candidate.needs_blocking_sort = False
        return candidate

    # -- ranking -----------------------------------------------------------

    def _works_budget(self) -> int:
        n_docs = len(self._coll._docs)
        return min(max(100, n_docs // 10), 2000)

    def _race(
        self,
        candidates: List[CandidatePlan],
        matcher: Matcher,
    ) -> Tuple[CandidatePlan, List[CandidatePlan]]:
        """Trial-run every candidate under the works budget; rank them."""
        budget = self._works_budget()
        registry = get_registry()
        for candidate in candidates:
            stats = {"keys": 0, "docs": 0, "capped": 0}
            advanced = 0
            for _ in iter_plan(self._coll, candidate, matcher, stats,
                               max_works=budget):
                advanced += 1
                if advanced >= TRIAL_MAX_RESULTS:
                    break
            # One unit of work = one storage advance: an index entry visited
            # (its doc fetch rides along) or one collection-scan step.
            candidate.trial_works = max(1, stats["keys"], stats["docs"])
            candidate.trial_advanced = advanced
            candidate.trial_finished = (
                not stats["capped"] and advanced < TRIAL_MAX_RESULTS
            )
            productivity = candidate.trial_advanced / candidate.trial_works
            score = productivity
            if candidate.trial_finished:
                score += 1.0
            if not candidate.needs_blocking_sort:
                score += 0.5
            if candidate.covered:
                score += 0.2
            candidate.score = score
        registry.counter(
            "repro_docstore_plans_trialed_total",
            "candidate plans raced during query planning",
        ).inc(len(candidates))
        ranked = sorted(
            candidates,
            key=lambda c: (
                -c.score,
                c.kind != "IXSCAN",
                -c.n_components,
                c.index_name or "~",
            ),
        )
        return ranked[0], ranked[1:]
