"""Secondary indexes and index selection.

MongoDB's good read performance "where most of the data fits into memory"
(§III-B) comes from B-tree indexes.  We implement an in-memory analog: each
index keeps a sorted list of ``(key, doc_position)`` pairs maintained with
``bisect``, giving O(log n) equality and range probes, plus a hash map for
O(1) equality when the indexed value is hashable.  The planner inspects a
query document and picks the most selective usable index; everything else
falls back to a collection scan with the compiled matcher.

Unique indexes enforce :class:`~repro.errors.DuplicateKeyError`, which the
workflow engine relies on for Binder-based duplicate job detection.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import DuplicateKeyError
from .documents import MISSING, get_path_multi
from .matching import ordering_key, type_rank
from .objectid import ObjectId

__all__ = ["Index", "IndexManager", "QueryPlan"]


def _hashable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, bytes, ObjectId, type(None)))


class _Key:
    """Sort key wrapper so heterogeneous index keys order deterministically."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Key") -> bool:
        return ordering_key(self.value) < ordering_key(other.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Key) and ordering_key(self.value) == ordering_key(
            other.value
        )


class Index:
    """A single-field secondary index over a collection's documents.

    Positions are opaque integer slots assigned by the collection; the index
    maps indexed values to sets of positions.  A document whose field is an
    array gets one entry per element ("multikey" index), matching Mongo.
    """

    def __init__(self, field: str, unique: bool = False, name: Optional[str] = None):
        self.field = field
        self.unique = unique
        self.name = name or f"{field}_1"
        # Sorted parallel arrays for range scans.
        self._keys: List[_Key] = []
        self._positions: List[int] = []
        # Hash lookup for equality; only hashable keys participate.
        self._hash: Dict[Any, Set[int]] = {}
        self._entry_count = 0

    def __len__(self) -> int:
        return self._entry_count

    def _index_values(self, doc: Mapping[str, Any]) -> List[Any]:
        values = get_path_multi(doc, self.field)
        out: List[Any] = []
        for v in values:
            if isinstance(v, list):
                out.extend(v)
            else:
                out.append(v)
        if not out:
            out.append(MISSING)
        return out

    def add(self, position: int, doc: Mapping[str, Any]) -> None:
        values = self._index_values(doc)
        if self.unique:
            for v in values:
                if v is MISSING:
                    continue
                existing = self._hash.get(self._hash_key(v))
                if existing:
                    raise DuplicateKeyError(
                        f"duplicate key {v!r} for unique index {self.name!r}"
                    )
        for v in values:
            key = _Key(v)
            idx = bisect.bisect_right(self._keys, key)
            self._keys.insert(idx, key)
            self._positions.insert(idx, position)
            self._hash.setdefault(self._hash_key(v), set()).add(position)
            self._entry_count += 1

    def remove(self, position: int, doc: Mapping[str, Any]) -> None:
        for v in self._index_values(doc):
            hk = self._hash_key(v)
            bucket = self._hash.get(hk)
            if bucket is not None:
                bucket.discard(position)
                if not bucket:
                    del self._hash[hk]
            key = _Key(v)
            lo = bisect.bisect_left(self._keys, key)
            hi = bisect.bisect_right(self._keys, key, lo=lo)
            for i in range(lo, hi):
                if self._positions[i] == position:
                    del self._keys[i]
                    del self._positions[i]
                    self._entry_count -= 1
                    break

    @staticmethod
    def _hash_key(value: Any) -> Any:
        if _hashable(value):
            return (type_rank(value), value)
        if value is MISSING:
            return ("__missing__",)
        # Unhashable (dict/list) keys hash by their repr bucket; equality
        # still verified by the matcher afterwards.
        return ("__repr__", repr(value))

    def lookup_eq(self, value: Any) -> Set[int]:
        """Positions whose indexed value equals ``value``.

        A ``None`` probe also returns documents missing the field entirely,
        matching the query language's null semantics.
        """
        out = set(self._hash.get(self._hash_key(value), set()))
        if value is None:
            out |= self._hash.get(self._hash_key(MISSING), set())
        return out

    def lookup_in(self, values: Iterable[Any]) -> Set[int]:
        out: Set[int] = set()
        for v in values:
            out |= self.lookup_eq(v)
        return out

    def lookup_range(
        self,
        gt: Any = MISSING,
        gte: Any = MISSING,
        lt: Any = MISSING,
        lte: Any = MISSING,
    ) -> Set[int]:
        """Positions within a (type-bracketed) range."""
        lo = 0
        hi = len(self._keys)
        if gte is not MISSING:
            lo = bisect.bisect_left(self._keys, _Key(gte))
        elif gt is not MISSING:
            lo = bisect.bisect_right(self._keys, _Key(gt))
        if lte is not MISSING:
            hi = bisect.bisect_right(self._keys, _Key(lte))
        elif lt is not MISSING:
            hi = bisect.bisect_left(self._keys, _Key(lt))
        if lo >= hi:
            return set()
        # Type bracketing: exclude entries of a different type class than
        # the bound(s) supplied.
        bound = next(v for v in (gte, gt, lte, lt) if v is not MISSING)
        want_rank = type_rank(bound)
        return {
            self._positions[i]
            for i in range(lo, hi)
            if type_rank(self._keys[i].value) == want_rank
        }

    def scan_sorted(self, reverse: bool = False) -> List[int]:
        """All positions in index-key order (for index-assisted sorts)."""
        return list(reversed(self._positions)) if reverse else list(self._positions)


class QueryPlan:
    """Explain-style record of how a query was (or would be) executed."""

    __slots__ = ("kind", "index_name", "candidates_examined")

    def __init__(self, kind: str, index_name: Optional[str], candidates: int):
        self.kind = kind  # "COLLSCAN" | "IXSCAN"
        self.index_name = index_name
        self.candidates_examined = candidates

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.kind,
            "index": self.index_name,
            "docsExamined": self.candidates_examined,
        }

    def __repr__(self) -> str:
        return f"QueryPlan({self.kind}, index={self.index_name}, examined={self.candidates_examined})"


_RANGE_OPS = {"$gt", "$gte", "$lt", "$lte"}


class IndexManager:
    """Owns a collection's indexes and plans index-assisted queries."""

    def __init__(self) -> None:
        self._indexes: Dict[str, Index] = {}

    def create(self, field: str, unique: bool = False, name: Optional[str] = None) -> Index:
        index = Index(field, unique=unique, name=name)
        self._indexes[index.name] = index
        return index

    def drop(self, name: str) -> None:
        self._indexes.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._indexes)

    def all(self) -> List[Index]:
        return list(self._indexes.values())

    def for_field(self, field: str) -> Optional[Index]:
        for index in self._indexes.values():
            if index.field == field:
                return index
        return None

    def add_document(self, position: int, doc: Mapping[str, Any]) -> None:
        added: List[Index] = []
        try:
            for index in self._indexes.values():
                index.add(position, doc)
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(position, doc)
            raise

    def remove_document(self, position: int, doc: Mapping[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(position, doc)

    def plan(self, query: Mapping[str, Any]) -> Optional[Tuple[Index, Set[int]]]:
        """Pick a usable index for ``query``; return candidate positions.

        Strategy: among top-level field clauses with an index, prefer
        equality probes, then ``$in``, then ranges; pick the one returning
        the fewest candidates.  Logical operators and $where force a scan.
        """
        best: Optional[Tuple[Index, Set[int]]] = None
        for field, condition in query.items():
            if field.startswith("$"):
                continue
            index = self.for_field(field)
            if index is None:
                continue
            candidates = self._probe(index, condition)
            if candidates is None:
                continue
            if best is None or len(candidates) < len(best[1]):
                best = (index, candidates)
        return best

    @staticmethod
    def _probe(index: Index, condition: Any) -> Optional[Set[int]]:
        if isinstance(condition, Mapping) and any(
            str(k).startswith("$") for k in condition
        ):
            ops = set(condition)
            if "$eq" in ops:
                return index.lookup_eq(condition["$eq"])
            if "$in" in ops and isinstance(condition["$in"], list):
                return index.lookup_in(condition["$in"])
            if ops & _RANGE_OPS and not (ops - _RANGE_OPS - {"$ne", "$exists"}):
                bounds = {
                    op.lstrip("$"): condition[op] for op in ops & _RANGE_OPS
                }
                return index.lookup_range(
                    gt=bounds.get("gt", MISSING),
                    gte=bounds.get("gte", MISSING),
                    lt=bounds.get("lt", MISSING),
                    lte=bounds.get("lte", MISSING),
                )
            if "$all" in ops and isinstance(condition["$all"], list) and condition["$all"]:
                members = condition["$all"]
                if all(not isinstance(m, Mapping) for m in members):
                    sets = [index.lookup_eq(m) for m in members]
                    out = sets[0]
                    for s in sets[1:]:
                        out &= s
                    return out
            return None
        if isinstance(condition, Mapping):
            return index.lookup_eq(condition)
        if hasattr(condition, "search"):  # regex — not index-assisted
            return None
        return index.lookup_eq(condition)
