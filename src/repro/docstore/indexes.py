"""Secondary indexes: compound, ordered, direction-aware B-tree analogs.

MongoDB's good read performance "where most of the data fits into memory"
(§III-B) comes from B-tree indexes.  We implement an in-memory analog: each
index keeps a sorted list of ``(key_tuple, doc_position)`` entries maintained
with ``bisect``, giving O(log n) equality and range probes over any *prefix*
of the key — exactly the prefix-matching contract MongoDB compound indexes
offer.  Keys are ordered per-component: ``[("formula", 1),
("e_above_hull", -1)]`` stores entries ascending by formula and, within one
formula, descending by energy, so an index scan yields documents already in
that sort order (forward or reversed).

Plan *selection* lives in :mod:`repro.docstore.planner` — this module only
stores entries and answers bounded scans.  :class:`QueryPlan` (the
explain-style execution record) is defined here because both the planner
and the collection's read path share it.

Unique indexes enforce :class:`~repro.errors.DuplicateKeyError`, which the
workflow engine relies on for Binder-based duplicate job detection.
"""

from __future__ import annotations

import bisect
import itertools
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import DocstoreError, DuplicateKeyError
from .documents import MISSING, get_path_multi
from .matching import compare_values, type_rank
from .objectid import ObjectId

__all__ = [
    "Index",
    "IndexManager",
    "QueryPlan",
    "normalize_index_spec",
    "default_index_name",
]


def normalize_index_spec(spec: Any) -> List[Tuple[str, int]]:
    """Canonicalize an index key spec to ``[(field, direction), ...]``.

    Accepts everything ``create_index`` does in pymongo: a bare field name,
    a ``(field, direction)`` pair, a list mixing both forms, or a mapping
    ``{field: direction}``.  Directions must be ``1`` or ``-1``.
    """
    if isinstance(spec, str):
        items: List[Any] = [(spec, 1)]
    elif isinstance(spec, Mapping):
        items = list(spec.items())
    elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str) \
            and spec[1] in (1, -1):
        items = [spec]
    elif isinstance(spec, Iterable):
        items = list(spec)
    else:
        raise DocstoreError(f"invalid index spec {spec!r}")
    keys: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, str):
            field, direction = item, 1
        else:
            try:
                field, direction = item
            except (TypeError, ValueError):
                raise DocstoreError(f"invalid index key {item!r}") from None
        if not isinstance(field, str) or not field:
            raise DocstoreError(f"index field must be a non-empty string: {field!r}")
        if direction not in (1, -1):
            raise DocstoreError(f"index direction must be 1 or -1: {direction!r}")
        keys.append((field, int(direction)))
    if not keys:
        raise DocstoreError("index spec must name at least one field")
    if len({f for f, _ in keys}) != len(keys):
        raise DocstoreError(f"duplicate field in index spec {spec!r}")
    return keys


def default_index_name(keys: Sequence[Tuple[str, int]]) -> str:
    """MongoDB-style default name: ``formula_1_e_above_hull_-1``."""
    return "_".join(f"{field}_{direction}" for field, direction in keys)


def _hashable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, bytes, ObjectId, type(None)))


#: Type ranks whose values compare correctly with native operators — the
#: scalar fast path that keeps bisect comparisons off ``compare_values``.
_NATIVE_RANKS = frozenset({10, 20, 50, 70})


class _AscKey:
    """One ascending key component, ordered by BSON ``compare_values``.

    The type rank is computed once at construction; same-rank scalar
    comparisons then run natively, which is what makes bisect probes over
    large indexes cheap (``compare_values`` re-ranks both sides per call).
    """

    __slots__ = ("value", "rank", "fast")

    def __init__(self, value: Any):
        self.value = value
        self.rank = type_rank(value)
        self.fast = self.rank in _NATIVE_RANKS

    def __lt__(self, other: Any) -> bool:
        if other is _MAX_KEY:
            return True
        if self.rank != other.rank:
            return self.rank < other.rank
        if self.fast:
            return self.value < other.value
        return compare_values(self.value, other.value) < 0

    def __eq__(self, other: Any) -> bool:
        if other is _MAX_KEY:
            return False
        if self.rank != other.rank:
            return False
        if self.fast:
            return self.value == other.value
        return compare_values(self.value, other.value) == 0


class _DescKey:
    """One descending key component: inverts the component order."""

    __slots__ = ("value", "rank", "fast")

    def __init__(self, value: Any):
        self.value = value
        self.rank = type_rank(value)
        self.fast = self.rank in _NATIVE_RANKS

    def __lt__(self, other: Any) -> bool:
        if other is _MAX_KEY:
            return True
        if self.rank != other.rank:
            return self.rank > other.rank
        if self.fast:
            return self.value > other.value
        return compare_values(self.value, other.value) > 0

    def __eq__(self, other: Any) -> bool:
        if other is _MAX_KEY:
            return False
        if self.rank != other.rank:
            return False
        if self.fast:
            return self.value == other.value
        return compare_values(self.value, other.value) == 0


class _MaxKey:
    """Probe sentinel greater than every stored component.

    Appending it to a probe tuple turns ``bisect_left`` into "first entry
    *after* everything sharing this prefix" — the closed upper end of a
    prefix block or inclusive range.
    """

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __eq__(self, other: Any) -> bool:
        return other is self


_MAX_KEY = _MaxKey()
#: "No bound supplied" marker distinct from MISSING (a legal bound value).
_ABSENT = object()


class Index:
    """A compound secondary index over a collection's documents.

    Positions are opaque integer slots assigned by the collection; the
    index maps ordered key tuples to positions.  A document whose indexed
    field is an array gets one entry per element ("multikey", matching
    Mongo); compound indexes reject documents with arrays on two or more
    components (MongoDB's parallel-array restriction).
    """

    def __init__(self, keys: Any, unique: bool = False,
                 name: Optional[str] = None,
                 expire_after_seconds: Optional[float] = None):
        self.keys: List[Tuple[str, int]] = normalize_index_spec(keys)
        self.fields: List[str] = [f for f, _ in self.keys]
        self.directions: List[int] = [d for _, d in self.keys]
        self.unique = unique
        if expire_after_seconds is not None:
            expire_after_seconds = float(expire_after_seconds)
            if expire_after_seconds < 0:
                raise DocstoreError(
                    "expire_after_seconds must be non-negative"
                )
        #: TTL retention: documents whose first indexed field holds an
        #: epoch-seconds number older than ``now - expire_after_seconds``
        #: are eligible for the reaper (None = no expiry).
        self.expire_after_seconds = expire_after_seconds
        self.name = name or default_index_name(self.keys)
        #: Sticky flag: True once any document contributed an array value.
        self.multikey = False
        # Sorted parallel arrays: wrapped sort keys, raw value tuples,
        # document positions.  Equal keys keep insertion order (bisect_right)
        # so unsorted index scans preserve FIFO claim semantics.
        self._entry_keys: List[Tuple[Any, ...]] = []
        self._entry_vals: List[Tuple[Any, ...]] = []
        self._positions: List[int] = []
        # Full-key-tuple hash buckets, insertion-ordered ``(values,
        # position)`` pairs: unique enforcement plus O(1) equality probes
        # (exact-key scans skip the bisect entirely).
        self._hash: Dict[Any, List[Tuple[Tuple[Any, ...], int]]] = {}
        self._entry_count = 0

    # -- compat -----------------------------------------------------------

    @property
    def field(self) -> str:
        """First key field (legacy single-field accessor)."""
        return self.fields[0]

    def __len__(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:
        pattern = ", ".join(f"{f}: {d}" for f, d in self.keys)
        return f"Index({self.name!r}, {{ {pattern} }}, entries={len(self)})"

    # -- key extraction ----------------------------------------------------

    def _component_values(self, doc: Mapping[str, Any], field: str) -> Tuple[List[Any], bool]:
        raw = get_path_multi(doc, field)
        out: List[Any] = []
        saw_list = False
        for v in raw:
            if isinstance(v, list):
                saw_list = True
                out.extend(v)
            else:
                out.append(v)
        if not out:
            if saw_list:
                # An empty array still marks the index multikey but indexes
                # as "no value" — MongoDB stores undefined; MISSING is ours.
                out.append(MISSING)
            else:
                out.append(MISSING)
        return out, saw_list or len(raw) > 1

    def _index_tuples(self, doc: Mapping[str, Any]) -> List[Tuple[Any, ...]]:
        per_component: List[List[Any]] = []
        n_multi = 0
        for f in self.fields:
            values, is_multi = self._component_values(doc, f)
            if is_multi:
                self.multikey = True
            if len(values) > 1:
                n_multi += 1
            per_component.append(values)
        if n_multi > 1 and len(self.fields) > 1:
            raise DocstoreError(
                f"cannot index parallel arrays in compound index {self.name!r}"
            )
        return list(itertools.product(*per_component))

    def _make_key(self, values: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            _AscKey(v) if d == 1 else _DescKey(v)
            for v, d in zip(values, self.directions)
        )

    @staticmethod
    def _hash_key(value: Any) -> Any:
        if _hashable(value):
            return (type_rank(value), value)
        if value is MISSING:
            return ("__missing__",)
        # Unhashable (dict/list) keys hash by their repr bucket; equality
        # still verified by the matcher afterwards.
        return ("__repr__", repr(value))

    def _hash_key_tuple(self, values: Tuple[Any, ...]) -> Any:
        return tuple(self._hash_key(v) for v in values)

    # -- maintenance -------------------------------------------------------

    def add(self, position: int, doc: Mapping[str, Any]) -> None:
        tuples = self._index_tuples(doc)
        if self.unique:
            for t in tuples:
                if all(v is MISSING for v in t):
                    continue
                existing = self._hash.get(self._hash_key_tuple(t))
                if existing:
                    raise DuplicateKeyError(
                        f"duplicate key {t!r} for unique index {self.name!r}"
                    )
        for t in tuples:
            key = self._make_key(t)
            idx = bisect.bisect_right(self._entry_keys, key)
            self._entry_keys.insert(idx, key)
            self._entry_vals.insert(idx, t)
            self._positions.insert(idx, position)
            self._hash.setdefault(self._hash_key_tuple(t), []).append(
                (t, position)
            )
            self._entry_count += 1

    def remove(self, position: int, doc: Mapping[str, Any]) -> None:
        for t in self._index_tuples(doc):
            hk = self._hash_key_tuple(t)
            bucket = self._hash.get(hk)
            if bucket is not None:
                for i, (_vals, pos) in enumerate(bucket):
                    if pos == position:
                        del bucket[i]
                        break
                if not bucket:
                    del self._hash[hk]
            key = self._make_key(t)
            lo = bisect.bisect_left(self._entry_keys, key)
            hi = bisect.bisect_right(self._entry_keys, key, lo=lo)
            for i in range(lo, hi):
                if self._positions[i] == position:
                    del self._entry_keys[i]
                    del self._entry_vals[i]
                    del self._positions[i]
                    self._entry_count -= 1
                    break

    def build(self, items: Iterable[Tuple[int, Mapping[str, Any]]]) -> None:
        """Bulk-load an *empty* index: extract, uniqueness-check, sort once.

        O(n log n) instead of the O(n²) of repeated sorted inserts — this is
        what makes ``create_index`` on a 50k-document collection tractable.
        """
        staged: List[Tuple[Tuple[Any, ...], Tuple[Any, ...], int]] = []
        seen: Dict[Any, int] = {}
        for position, doc in items:
            tuples = self._index_tuples(doc)
            if self.unique:
                for t in tuples:
                    if all(v is MISSING for v in t):
                        continue
                    hk = self._hash_key_tuple(t)
                    prev = seen.get(hk)
                    if prev is not None and prev != position:
                        raise DuplicateKeyError(
                            f"duplicate key {t!r} for unique index {self.name!r}"
                        )
                    seen[hk] = position
            for t in tuples:
                staged.append((self._make_key(t), t, position))
        staged.sort(key=lambda entry: entry[0])
        self._entry_keys = [e[0] for e in staged]
        self._entry_vals = [e[1] for e in staged]
        self._positions = [e[2] for e in staged]
        self._hash = {}
        for _, t, position in staged:
            self._hash.setdefault(self._hash_key_tuple(t), []).append(
                (t, position)
            )
        self._entry_count = len(staged)

    # -- scans -------------------------------------------------------------

    def _point_bucket(
        self, prefix: Sequence[Any]
    ) -> Optional[List[Tuple[Tuple[Any, ...], int]]]:
        """The hash bucket for a full-key exact probe, or None when the
        probe must go through the bisect path.

        Only trustworthy for hashable scalar probes: unhashable values
        bucket by ``repr`` (which can split ``compare_values``-equal keys)
        and NaN never equals itself as a dict key.
        """
        if len(prefix) != len(self.fields):
            return None
        for v in prefix:
            if v is MISSING:
                continue
            if not _hashable(v):
                return None
            if isinstance(v, float) and v != v:  # NaN
                return None
        return self._hash.get(self._hash_key_tuple(tuple(prefix)), [])

    def _probe_range(
        self,
        prefix: Sequence[Any],
        bounds: Optional[Mapping[str, Any]],
    ) -> Tuple[int, int, int, Optional[int]]:
        """Resolve probes to entry offsets ``(lo, hi, n_prefix, want_rank)``."""
        n = len(prefix)
        lo_probe: List[Any] = [
            _AscKey(v) if self.directions[i] == 1 else _DescKey(v)
            for i, v in enumerate(prefix)
        ]
        hi_probe: List[Any] = list(lo_probe)
        want_rank: Optional[int] = None
        if bounds:
            direction = self.directions[n]
            low = bounds.get("gte", bounds.get("gt", _ABSENT))
            low_incl = "gte" in bounds
            high = bounds.get("lte", bounds.get("lt", _ABSENT))
            high_incl = "lte" in bounds
            for b in (low, high):
                if b is not _ABSENT:
                    want_rank = type_rank(b)
                    break
            # Map the value-space interval into stored space: a descending
            # component stores keys inverted, so the interval's ends swap.
            if direction == 1:
                start, start_incl, end, end_incl = low, low_incl, high, high_incl
            else:
                start, start_incl, end, end_incl = high, high_incl, low, low_incl
            wrap = _AscKey if direction == 1 else _DescKey
            if start is not _ABSENT:
                lo_probe.append(wrap(start))
                if not start_incl:
                    lo_probe.append(_MAX_KEY)
            if end is not _ABSENT:
                hi_probe.append(wrap(end))
                if end_incl:
                    hi_probe.append(_MAX_KEY)
            else:
                hi_probe.append(_MAX_KEY)
        else:
            hi_probe.append(_MAX_KEY)
        keys = self._entry_keys
        lo = bisect.bisect_left(keys, tuple(lo_probe))
        hi = bisect.bisect_left(keys, tuple(hi_probe), lo=lo)
        return lo, hi, n, want_rank

    def scan(
        self,
        prefix: Sequence[Any] = (),
        bounds: Optional[Mapping[str, Any]] = None,
        reverse: bool = False,
    ) -> Iterator[Tuple[Tuple[Any, ...], int]]:
        """Bounded scan yielding ``(raw_values, position)`` in key order.

        ``prefix`` pins leading components to exact values (``MISSING`` is a
        legal probe — the planner fans ``None`` out into ``None``/``MISSING``
        probes).  ``bounds`` optionally constrains the *next* component with
        ``gt/gte/lt/lte`` value-space limits; bounds are type-bracketed like
        MongoDB, so a numeric range never yields strings even when one side
        is open.  ``reverse=True`` walks the same entries backwards.

        A full-key exact probe short-circuits to the hash bucket — O(1)
        instead of two bisects — which is the hot path for point lookups
        like ``{"material_id": "mp-1234"}`` on its index.
        """
        if not bounds:
            bucket = self._point_bucket(prefix)
            if bucket is not None:
                yield from reversed(bucket) if reverse else bucket
                return
        lo, hi, n, want_rank = self._probe_range(prefix, bounds)
        indices = range(hi - 1, lo - 1, -1) if reverse else range(lo, hi)
        vals = self._entry_vals
        positions = self._positions
        for i in indices:
            row = vals[i]
            if want_rank is not None and type_rank(row[n]) != want_rank:
                continue
            yield row, positions[i]

    def entry_count_in(
        self,
        prefix: Sequence[Any] = (),
        bounds: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Entries a :meth:`scan` with these probes would visit (before
        type-bracket filtering) — an O(log n) selectivity estimate."""
        if not bounds:
            bucket = self._point_bucket(prefix)
            if bucket is not None:
                return len(bucket)
        lo, hi, _, _ = self._probe_range(prefix, bounds)
        return hi - lo


class QueryPlan:
    """Explain-style record of how a query was (or would be) executed."""

    __slots__ = (
        "kind",
        "index_name",
        "candidates_examined",
        "keys_examined",
        "n_returned",
        "provides_sort",
        "covered",
        "key_pattern",
        "rejected",
        "cache",
    )

    def __init__(
        self,
        kind: str,
        index_name: Optional[str],
        candidates: int,
        keys_examined: int = 0,
        n_returned: int = 0,
        provides_sort: bool = False,
        covered: bool = False,
        key_pattern: Optional[List[Tuple[str, int]]] = None,
        rejected: Optional[List[dict]] = None,
        cache: str = "none",
    ):
        self.kind = kind  # "COLLSCAN" | "IXSCAN" | "IDHACK"
        self.index_name = index_name
        self.candidates_examined = candidates  # documents fetched & tested
        self.keys_examined = keys_examined
        self.n_returned = n_returned
        self.provides_sort = provides_sort
        self.covered = covered
        self.key_pattern = key_pattern
        self.rejected = rejected or []
        self.cache = cache  # "none" | "hit" | "miss"

    @property
    def summary(self) -> str:
        """MongoDB-style planSummary string (``IXSCAN { a: 1, b: -1 }``)."""
        if self.kind == "IXSCAN" and self.key_pattern:
            pattern = ", ".join(f"{f}: {d}" for f, d in self.key_pattern)
            return f"IXSCAN {{ {pattern} }}"
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.kind,
            "index": self.index_name,
            "docsExamined": self.candidates_examined,
            "keysExamined": self.keys_examined,
            "planSummary": self.summary,
            "providesSort": self.provides_sort,
            "covered": self.covered,
            "keyPattern": [list(k) for k in self.key_pattern] if self.key_pattern else None,
        }

    def __repr__(self) -> str:
        return (
            f"QueryPlan({self.kind}, index={self.index_name}, "
            f"examined={self.candidates_examined})"
        )


class IndexManager:
    """Owns a collection's indexes; plan selection lives in the planner."""

    def __init__(self) -> None:
        self._indexes: Dict[str, Index] = {}

    def create(self, keys: Any, unique: bool = False,
               name: Optional[str] = None,
               expire_after_seconds: Optional[float] = None) -> Index:
        index = Index(keys, unique=unique, name=name,
                      expire_after_seconds=expire_after_seconds)
        self._indexes[index.name] = index
        return index

    def ttl_indexes(self) -> List[Index]:
        """Indexes carrying an ``expire_after_seconds`` retention policy."""
        return [
            ix for ix in self._indexes.values()
            if ix.expire_after_seconds is not None
        ]

    def drop(self, name: str) -> None:
        self._indexes.pop(name, None)

    def get(self, name: str) -> Optional[Index]:
        return self._indexes.get(name)

    def names(self) -> List[str]:
        return sorted(self._indexes)

    def all(self) -> List[Index]:
        return list(self._indexes.values())

    def add_document(self, position: int, doc: Mapping[str, Any]) -> None:
        added: List[Index] = []
        try:
            for index in self._indexes.values():
                index.add(position, doc)
                added.append(index)
        except DocstoreError:
            # DuplicateKeyError or the compound parallel-array restriction:
            # undo the partial adds so no index holds a phantom entry.
            for index in added:
                index.remove(position, doc)
            raise

    def remove_document(self, position: int, doc: Mapping[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(position, doc)
