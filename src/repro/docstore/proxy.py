"""Forwarding proxy between HPC worker nodes and the datastore server.

Reproduces §IV-A2: "most HPC systems are configured such that the internal
worker nodes are not allowed to communicate outside the system. Thus, we had
to use a proxy to have our tasks communicate with the MongoDB Server."

The proxy listens on its own TCP port, forwards each JSON-line request to
the upstream :class:`~repro.docstore.server.DatastoreServer`, and relays the
response.  It counts traffic and adds a configurable forwarding latency so
the proxy-overhead benchmark (bench_proxy_numa) can quantify the cost of the
extra hop.  Combined with :mod:`repro.hpc.network`, worker-node clients are
*only* permitted to open connections to the proxy.

Traced requests (a ``"$trace"`` field on the wire) are joined rather than
passed through blindly: the proxy opens its own ``proxy.forward`` span as a
remote child of the caller and rewrites the context so the upstream server
parents under the *proxy* span — the stitched trace then shows the extra
hop the paper had to pay.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from typing import Any, Deque, List, Optional

from ..obs import get_registry, remote_span, trace_context
from .documents import document_from_json, document_to_json
from .server import RemoteClient

__all__ = ["DatastoreProxy"]


def _retrace(line: bytes) -> tuple:
    """Split one wire line into its ``$trace`` context and re-sender.

    Returns ``(ctx, resend)`` where ``resend(new_ctx)`` yields the line
    with the context replaced.  Unparseable or untraced lines forward
    verbatim (``ctx is None``): the proxy must never break the protocol
    it is relaying.
    """
    try:
        request = document_from_json(line.decode("utf-8"))
        ctx = request.get("$trace") if isinstance(request, dict) else None
    except Exception:  # noqa: BLE001 - relay anything, valid or not
        return None, None
    if ctx is None:
        return None, None

    def resend(new_ctx: dict) -> bytes:
        request["$trace"] = new_ctx
        return (document_to_json(request) + "\n").encode("utf-8")

    return ctx, resend


class _ProxyHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        proxy: "DatastoreProxy" = self.server.proxy  # type: ignore[attr-defined]
        try:
            upstream, upstream_file = proxy._connect()
        except OSError:
            return
        try:
            while True:
                line = self.rfile.readline()
                if not line:
                    break
                t0 = time.perf_counter()
                if proxy.forward_latency_s > 0:
                    time.sleep(proxy.forward_latency_s)
                ctx, resend = _retrace(line)
                if ctx is not None:
                    with remote_span("proxy.forward", ctx,
                                     upstream=proxy.upstream_port):
                        wire = resend(trace_context())
                        upstream, upstream_file, response = proxy._roundtrip(
                            upstream, upstream_file, wire)
                else:
                    upstream, upstream_file, response = proxy._roundtrip(
                        upstream, upstream_file, line)
                if not response:
                    break
                proxy._count(len(line), len(response),
                             elapsed_ms=(time.perf_counter() - t0) * 1e3)
                self.wfile.write(response)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            if upstream_file is not None:
                upstream_file.close()
            if upstream is not None:
                try:
                    upstream.close()
                except OSError:
                    pass


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class DatastoreProxy:
    """TCP proxy relaying the JSON-line wire protocol to an upstream server.

    Parameters
    ----------
    upstream_host, upstream_port:
        Address of the real :class:`DatastoreServer`.
    forward_latency_s:
        Artificial one-way forwarding delay, modelling the extra network hop
        between the compute-node network and the database host.
    fallbacks:
        Optional further ``(host, port)`` upstreams.  When the active
        upstream refuses connections or drops mid-exchange, the proxy
        rotates to the next one and re-sends the in-flight request once —
        the re-routing half of the cluster failover story (the surviving
        server answers ``NotPrimary``/``StaleEpoch`` and the *client*
        retry logic does the rest).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        forward_latency_s: float = 0.0,
        fallbacks: Optional[List[tuple]] = None,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.upstreams: List[tuple] = [(upstream_host, upstream_port)]
        self.upstreams.extend(tuple(f) for f in (fallbacks or []))
        self._active = 0
        self.failovers = 0
        self.forward_latency_s = forward_latency_s
        self._tcp = _ThreadingTCPServer((host, port), _ProxyHandler)
        self._tcp.proxy = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.requests_forwarded = 0
        self.bytes_up = 0
        self.bytes_down = 0
        # (wall ts, forward millis) per relayed request, injected latency
        # included — the wire-level SLI the SLO engine can window over.
        self._latency_log: Deque[tuple] = deque(maxlen=4096)

    # -- upstream failover -------------------------------------------------

    def _connect(self) -> tuple:
        """Open ``(socket, reader)`` to the first reachable upstream.

        Starts at the active upstream and rotates through the fallbacks;
        a rotation that lands somewhere new counts as a failover.
        """
        with self._lock:
            start = self._active
        last_exc: Optional[OSError] = None
        for offset in range(len(self.upstreams)):
            idx = (start + offset) % len(self.upstreams)
            host, port = self.upstreams[idx]
            try:
                sock = socket.create_connection((host, port), timeout=30.0)
            except OSError as exc:
                last_exc = exc
                continue
            with self._lock:
                if idx != self._active:
                    self._active = idx
                    self.failovers += 1
                    get_registry().counter(
                        "repro_proxy_failovers_total",
                        "proxy upstream failovers",
                    ).inc(1)
            return sock, sock.makefile("rb")
        raise last_exc if last_exc is not None else OSError(
            "proxy has no upstreams")

    def _roundtrip(self, sock: Any, rfile: Any, wire: bytes) -> tuple:
        """Send one frame, reading one response; fail over once if needed.

        Returns ``(sock, rfile, response)`` — possibly a *new* connection
        to a fallback upstream when the active one died mid-exchange.  An
        empty response means every upstream is gone.
        """
        for attempt in range(2):
            try:
                sock.sendall(wire)
                response = rfile.readline()
            except OSError:
                response = b""
            if response:
                return sock, rfile, response
            try:
                rfile.close()
                sock.close()
            except OSError:
                pass
            if attempt == 0:
                with self._lock:
                    self._active = (self._active + 1) % len(self.upstreams)
                    self.failovers += 1
                    get_registry().counter(
                        "repro_proxy_failovers_total",
                        "proxy upstream failovers",
                    ).inc(1)
                try:
                    sock, rfile = self._connect()
                except OSError:
                    return None, None, b""
        return sock, rfile, b""

    def _count(self, up: int, down: int,
               elapsed_ms: Optional[float] = None) -> None:
        with self._lock:
            self.requests_forwarded += 1
            self.bytes_up += up
            self.bytes_down += down
            if elapsed_ms is not None:
                self._latency_log.append((time.time(), elapsed_ms))
        registry = get_registry()
        registry.counter(
            "repro_proxy_requests_total", "requests relayed by the proxy"
        ).inc(1)
        registry.counter(
            "repro_wire_bytes_total", "wire-protocol traffic"
        ).inc(up + down, direction="proxy")
        if elapsed_ms is not None:
            registry.histogram(
                "repro_proxy_forward_millis", "proxy forwarding latency"
            ).observe(elapsed_ms)

    def latency_events(self) -> List[tuple]:
        """Recent ``(wall_ts, millis)`` forward timings (oldest first)."""
        with self._lock:
            return list(self._latency_log)

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def address(self) -> tuple:
        return self._tcp.server_address

    def start(self) -> "DatastoreProxy":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DatastoreProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def client(self) -> RemoteClient:
        """Open a client connection through this proxy."""
        return RemoteClient("127.0.0.1", self.port)

    def stats(self) -> dict:
        with self._lock:
            return {
                "requests_forwarded": self.requests_forwarded,
                "bytes_up": self.bytes_up,
                "bytes_down": self.bytes_down,
                "upstreams": list(self.upstreams),
                "active_upstream": self._active,
                "failovers": self.failovers,
            }
