"""``repro.docstore`` — a from-scratch MongoDB-style document store.

This is the central substrate of the reproduction: the paper's single
datastore that simultaneously serves as workflow task queue, analytics
engine, and web back-end (§III-A).  Public surface:

* :class:`DocumentStore` / :class:`Database` / :class:`Collection` — the
  in-process CRUD API (MongoClient analog) with Mongo query & update
  languages, secondary indexes, cursors, aggregation, and MapReduce.
* :class:`ObjectId` — 12-byte time-sortable document ids.
* :class:`DatastoreServer` / :class:`RemoteClient` — TCP wire protocol.
* :class:`DatastoreProxy` — the HPC worker-node proxy hop (§IV-A2).
* :class:`ShardedCollection`, :class:`ReplicaSet` — scale-out paths the
  paper identifies for future growth (§IV-D2).
* :class:`ShardedCluster` (:mod:`.cluster`) — the self-managing sharded
  cluster: chunk map + balancer + replica-set elections + shard-targeted
  routing.
* :class:`OperationRegistry` / :func:`query_shape` — the live-ops table
  behind ``currentOp()``/``killOp()`` (MongoDB-style op introspection).
"""

from .objectid import ObjectId
from .documents import (
    MISSING,
    document_from_json,
    document_to_json,
    get_path,
    set_path,
    walk,
)
from .matching import Matcher, compile_query, index_predicates
from .updates import apply_update
from .cursor import Cursor
from .indexes import Index, IndexManager, QueryPlan, normalize_index_spec
from .planner import PlanCache, QueryPlanner, canonical_shape
from .locks import RWLock
from .collection import Collection
from .database import Database, DocumentStore
from .aggregation import run_pipeline
from .mapreduce import map_reduce, MapReduceResult
from .ops import ActiveOp, OperationRegistry, query_shape
from .server import DatastoreServer, RemoteClient, RemoteCollection
from .proxy import DatastoreProxy
from .sharding import ShardedCollection, hash_shard_key
from .replication import ReplicaSet, ReplicaNode, Oplog
from .changestream import ChangeEvent, ChangeStream
from .filestore import FileStore
from .cluster import (
    Balancer,
    ClusterCollection,
    HeartbeatMonitor,
    ShardedCluster,
    ShardReplicaSet,
)

__all__ = [
    "ObjectId",
    "MISSING",
    "document_from_json",
    "document_to_json",
    "get_path",
    "set_path",
    "walk",
    "Matcher",
    "compile_query",
    "index_predicates",
    "apply_update",
    "Cursor",
    "Index",
    "IndexManager",
    "QueryPlan",
    "normalize_index_spec",
    "PlanCache",
    "QueryPlanner",
    "canonical_shape",
    "RWLock",
    "Collection",
    "Database",
    "DocumentStore",
    "run_pipeline",
    "map_reduce",
    "MapReduceResult",
    "ActiveOp",
    "OperationRegistry",
    "query_shape",
    "DatastoreServer",
    "RemoteClient",
    "RemoteCollection",
    "DatastoreProxy",
    "ShardedCollection",
    "hash_shard_key",
    "ReplicaSet",
    "ReplicaNode",
    "Oplog",
    "ChangeEvent",
    "ChangeStream",
    "FileStore",
    "Balancer",
    "ClusterCollection",
    "HeartbeatMonitor",
    "ShardedCluster",
    "ShardReplicaSet",
]
