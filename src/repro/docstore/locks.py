"""Reader-writer locks for the storage engine.

The paper's single MongoDB deployment served the FireWorks queue, the
builders, and the public API *at the same time* (§IV-A); MongoDB's engine
survives that because reads share access while writes are exclusive.  The
reproduction's wire server is a ``ThreadingTCPServer``, so concurrent
clients genuinely race — this module supplies the same many-readers /
one-writer discipline for :class:`~repro.docstore.collection.Collection`
(and a database-level lock guarding collection create/drop).

Semantics:

* many concurrent readers, one exclusive writer;
* writer preference — arriving readers queue behind a waiting writer so a
  stream of cheap reads cannot starve updates (the task-queue claim path);
* reentrant: a thread may re-enter a mode it already holds, and may take
  the *read* side while holding the *write* side (``find_one_and_update``
  reads under its own write lock).  Upgrading read → write is refused
  rather than deadlocking;
* instrumented: cumulative acquire counts and wait time per mode, the
  data behind ``server_status()["locks"]`` and the
  ``repro_docstore_lock_wait_millis`` histogram;
* attributed: a wait above the noise floor records *who waited on whom* —
  the waiter's call site plus the current holder's live stack frame (via
  ``sys._current_frames``), rolled up per (mode, waiter, holder) into the
  bounded :meth:`RWLock.contention_report` behind
  ``server_status()["locks"]["top_contended"]``.  Attribution costs
  nothing on the uncontended fast path: sites are only captured when a
  thread is already about to block.

``with lock:`` takes the exclusive (write) side, so legacy call sites that
treated the collection lock as a mutex remain correct.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import DocstoreError

__all__ = ["RWLock"]

#: Waits shorter than this are not reported to the metrics registry: an
#: uncontended acquire always "waits" a few hundred nanoseconds, and the
#: histogram should show contention, not scheduler noise.
_CONTENTION_FLOOR_S = 1e-4

#: Distinct (mode, waiter, holder) attribution rows kept per lock before
#: novel pairings collapse into the overflow site — same bounded-memory
#: discipline as the metrics cardinality cap.
MAX_CONTENTION_SITES = 64

#: Site label absorbing attribution rows past :data:`MAX_CONTENTION_SITES`.
OVERFLOW_SITE = "__other__"


def _describe_frame(frame: Any) -> str:
    """``file:function:line`` for the first frame outside this module.

    Frames from :mod:`threading` are skipped too: a holder parked in
    ``Condition.wait`` / ``Event.wait`` should be attributed to the
    application code that parked it, not to the stdlib wait machinery.
    """
    own = os.path.abspath(__file__)
    skipped = (own, os.path.abspath(threading.__file__))
    while (frame is not None
           and os.path.abspath(frame.f_code.co_filename) in skipped):
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    code = frame.f_code
    return (f"{os.path.basename(code.co_filename)}:"
            f"{code.co_name}:{frame.f_lineno}")


class _ReadGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock"):
        self._lock = lock

    def __enter__(self) -> "RWLock":
        self._lock.acquire_read()
        return self._lock

    def __exit__(self, *exc: Any) -> None:
        self._lock.release_read()


class _WriteGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock"):
        self._lock = lock

    def __enter__(self) -> "RWLock":
        self._lock.acquire_write()
        return self._lock

    def __exit__(self, *exc: Any) -> None:
        self._lock.release_write()


class RWLock:
    """Writer-preferring, reentrant reader-writer lock with wait accounting."""

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self._cond = threading.Condition(threading.Lock())
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._readers: Dict[int, int] = {}
        self._waiting_writers = 0
        # Cumulative accounting, guarded by the condition's mutex.
        self._acquires = {"read": 0, "write": 0}
        self._wait_s = {"read": 0.0, "write": 0.0}
        self._contended = {"read": 0, "write": 0}
        # (mode, waiter_site, holder_site) -> rollup; bounded, see
        # MAX_CONTENTION_SITES.
        self._contention: Dict[Tuple[str, str, str], Dict[str, Any]] = {}

    # -- acquisition -----------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        t0 = time.perf_counter()
        with self._cond:
            if self._writer == me:
                # Read under our own write lock: ride the write depth.
                self._writer_depth += 1
                self._acquires["read"] += 1
                return
            depth = self._readers.get(me)
            if depth is not None:
                self._readers[me] = depth + 1
                self._acquires["read"] += 1
                return
            sites = None
            while self._writer is not None or self._waiting_writers:
                if sites is None:
                    sites = self._capture_sites()
                self._cond.wait()
            self._readers[me] = 1
            self._acquires["read"] += 1
            if sites is not None:
                self._record_wait("read", time.perf_counter() - t0, sites)

    def try_acquire_read(self, timeout: float = 0.0) -> bool:
        """Non-blocking (or bounded-wait) read acquisition.

        Returns ``True`` with the read lock held, or ``False`` if it
        could not be acquired within ``timeout`` seconds.  Honors the
        same reentrancy rules as :meth:`acquire_read` but never records
        contention — this is the flight watchdog's liveness probe, and a
        probe must not pollute the attribution tables it reports on.
        """
        me = threading.get_ident()
        deadline = time.perf_counter() + timeout
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self._acquires["read"] += 1
                return True
            depth = self._readers.get(me)
            if depth is not None:
                self._readers[me] = depth + 1
                self._acquires["read"] += 1
                return True
            while self._writer is not None or self._waiting_writers:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._writer is not None or self._waiting_writers:
                        return False
            self._readers[me] = 1
            self._acquires["read"] += 1
            return True

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            depth = self._readers.get(me)
            if depth is None:
                raise DocstoreError("release_read without matching acquire")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self) -> None:
        me = threading.get_ident()
        t0 = time.perf_counter()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self._acquires["write"] += 1
                return
            if me in self._readers:
                raise DocstoreError(
                    f"cannot upgrade read lock to write lock on "
                    f"{self.name or 'collection'!r} (deadlock hazard)"
                )
            self._waiting_writers += 1
            try:
                sites = None
                while self._writer is not None or self._readers:
                    if sites is None:
                        sites = self._capture_sites()
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
                self._acquires["write"] += 1
                if sites is not None:
                    self._record_wait("write", time.perf_counter() - t0, sites)
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise DocstoreError("release_write by non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def _capture_sites(self) -> Tuple[str, str]:
        """(waiter_site, holder_site) for a thread about to block.

        Called with the condition mutex held, once per wait, *before* the
        first ``cond.wait()`` — the only moment both sides exist: the
        waiter is this thread's own stack, the holder is whichever thread
        currently owns the lock, read live out of
        ``sys._current_frames()``.  Uncontended acquires never get here,
        so attribution adds zero cost to the fast path.
        """
        waiter = _describe_frame(sys._getframe(1))
        holder_idents = ([self._writer] if self._writer is not None
                         else list(self._readers))
        holder = None
        if holder_idents:
            frames = sys._current_frames()
            for ident in holder_idents:
                frame = frames.get(ident)
                if frame is not None:
                    holder = _describe_frame(frame)
                    break
            if (holder is not None and self._writer is None
                    and len(self._readers) > 1):
                holder += f" (+{len(self._readers) - 1} readers)"
        if holder is None:
            # Queued behind a writer that is itself still waiting
            # (writer preference), or the holder released mid-capture.
            holder = ("<waiting-writer>" if self._waiting_writers
                      else "<released>")
        return waiter, holder

    def _record_wait(self, mode: str, waited_s: float,
                     sites: Optional[Tuple[str, str]] = None) -> None:
        # Called with the condition mutex held.
        self._wait_s[mode] += waited_s
        if waited_s < _CONTENTION_FLOOR_S:
            return
        self._contended[mode] += 1
        if sites is not None:
            self._note_contention(mode, sites[0], sites[1], waited_s)
        from ..obs import get_registry  # local: keep import cost off hot path

        get_registry().histogram(
            "repro_docstore_lock_wait_millis", "lock wait time by mode"
        ).observe(waited_s * 1e3, mode=mode,
                  **({"coll": self.name} if self.name else {}))

    def _note_contention(self, mode: str, waiter: str, holder: str,
                         waited_s: float) -> None:
        # Called with the condition mutex held.
        key = (mode, waiter, holder)
        entry = self._contention.get(key)
        if entry is None:
            if len(self._contention) >= MAX_CONTENTION_SITES:
                key = (mode, OVERFLOW_SITE, OVERFLOW_SITE)
                entry = self._contention.get(key)
            if entry is None:
                entry = self._contention[key] = {
                    "count": 0, "wait_ms": 0.0, "max_wait_ms": 0.0,
                    "last_ts": 0.0,
                }
        entry["count"] += 1
        entry["wait_ms"] += waited_s * 1e3
        entry["max_wait_ms"] = max(entry["max_wait_ms"], waited_s * 1e3)
        entry["last_ts"] = time.time()

    # -- context-manager faces -------------------------------------------

    def read(self) -> _ReadGuard:
        """Shared-mode guard: ``with lock.read(): ...``"""
        return _ReadGuard(self)

    def write(self) -> _WriteGuard:
        """Exclusive-mode guard: ``with lock.write(): ...``"""
        return _WriteGuard(self)

    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release_write()

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        """Cumulative acquire/wait accounting plus a live snapshot."""
        with self._cond:
            return {
                "read_acquires": self._acquires["read"],
                "write_acquires": self._acquires["write"],
                "read_wait_ms": self._wait_s["read"] * 1e3,
                "write_wait_ms": self._wait_s["write"] * 1e3,
                "read_contended": self._contended["read"],
                "write_contended": self._contended["write"],
                "active_readers": len(self._readers),
                "writer_held": self._writer is not None,
                "waiting_writers": self._waiting_writers,
                "contention_sites": len(self._contention),
            }

    def contention_report(self, limit: int = 10) -> list:
        """Top contended (mode, waiter, holder) pairings by total wait.

        Each row carries the waiting call site, the holder's site at the
        moment the wait began, the number of waits above the noise floor,
        and cumulative/max wait milliseconds — the "who is blocking whom"
        view behind ``server_status()["locks"]["top_contended"]``.
        """
        with self._cond:
            rows = [
                {"mode": mode, "waiter": waiter, "holder": holder,
                 **entry}
                for (mode, waiter, holder), entry in self._contention.items()
            ]
        rows.sort(key=lambda r: (-r["wait_ms"], r["waiter"], r["holder"]))
        return rows[:limit]
