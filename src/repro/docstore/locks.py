"""Reader-writer locks for the storage engine.

The paper's single MongoDB deployment served the FireWorks queue, the
builders, and the public API *at the same time* (§IV-A); MongoDB's engine
survives that because reads share access while writes are exclusive.  The
reproduction's wire server is a ``ThreadingTCPServer``, so concurrent
clients genuinely race — this module supplies the same many-readers /
one-writer discipline for :class:`~repro.docstore.collection.Collection`
(and a database-level lock guarding collection create/drop).

Semantics:

* many concurrent readers, one exclusive writer;
* writer preference — arriving readers queue behind a waiting writer so a
  stream of cheap reads cannot starve updates (the task-queue claim path);
* reentrant: a thread may re-enter a mode it already holds, and may take
  the *read* side while holding the *write* side (``find_one_and_update``
  reads under its own write lock).  Upgrading read → write is refused
  rather than deadlocking;
* instrumented: cumulative acquire counts and wait time per mode, the
  data behind ``server_status()["locks"]`` and the
  ``repro_docstore_lock_wait_millis`` histogram.

``with lock:`` takes the exclusive (write) side, so legacy call sites that
treated the collection lock as a mutex remain correct.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..errors import DocstoreError

__all__ = ["RWLock"]

#: Waits shorter than this are not reported to the metrics registry: an
#: uncontended acquire always "waits" a few hundred nanoseconds, and the
#: histogram should show contention, not scheduler noise.
_CONTENTION_FLOOR_S = 1e-4


class _ReadGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock"):
        self._lock = lock

    def __enter__(self) -> "RWLock":
        self._lock.acquire_read()
        return self._lock

    def __exit__(self, *exc: Any) -> None:
        self._lock.release_read()


class _WriteGuard:
    __slots__ = ("_lock",)

    def __init__(self, lock: "RWLock"):
        self._lock = lock

    def __enter__(self) -> "RWLock":
        self._lock.acquire_write()
        return self._lock

    def __exit__(self, *exc: Any) -> None:
        self._lock.release_write()


class RWLock:
    """Writer-preferring, reentrant reader-writer lock with wait accounting."""

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self._cond = threading.Condition(threading.Lock())
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._readers: Dict[int, int] = {}
        self._waiting_writers = 0
        # Cumulative accounting, guarded by the condition's mutex.
        self._acquires = {"read": 0, "write": 0}
        self._wait_s = {"read": 0.0, "write": 0.0}
        self._contended = {"read": 0, "write": 0}

    # -- acquisition -----------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        t0 = time.perf_counter()
        with self._cond:
            if self._writer == me:
                # Read under our own write lock: ride the write depth.
                self._writer_depth += 1
                self._acquires["read"] += 1
                return
            depth = self._readers.get(me)
            if depth is not None:
                self._readers[me] = depth + 1
                self._acquires["read"] += 1
                return
            waited = False
            while self._writer is not None or self._waiting_writers:
                waited = True
                self._cond.wait()
            self._readers[me] = 1
            self._acquires["read"] += 1
            if waited:
                self._record_wait("read", time.perf_counter() - t0)

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            depth = self._readers.get(me)
            if depth is None:
                raise DocstoreError("release_read without matching acquire")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self) -> None:
        me = threading.get_ident()
        t0 = time.perf_counter()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self._acquires["write"] += 1
                return
            if me in self._readers:
                raise DocstoreError(
                    f"cannot upgrade read lock to write lock on "
                    f"{self.name or 'collection'!r} (deadlock hazard)"
                )
            self._waiting_writers += 1
            try:
                waited = False
                while self._writer is not None or self._readers:
                    waited = True
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
                self._acquires["write"] += 1
                if waited:
                    self._record_wait("write", time.perf_counter() - t0)
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise DocstoreError("release_write by non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def _record_wait(self, mode: str, waited_s: float) -> None:
        # Called with the condition mutex held.
        self._wait_s[mode] += waited_s
        if waited_s < _CONTENTION_FLOOR_S:
            return
        self._contended[mode] += 1
        from ..obs import get_registry  # local: keep import cost off hot path

        get_registry().histogram(
            "repro_docstore_lock_wait_millis", "lock wait time by mode"
        ).observe(waited_s * 1e3, mode=mode,
                  **({"coll": self.name} if self.name else {}))

    # -- context-manager faces -------------------------------------------

    def read(self) -> _ReadGuard:
        """Shared-mode guard: ``with lock.read(): ...``"""
        return _ReadGuard(self)

    def write(self) -> _WriteGuard:
        """Exclusive-mode guard: ``with lock.write(): ...``"""
        return _WriteGuard(self)

    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release_write()

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        """Cumulative acquire/wait accounting plus a live snapshot."""
        with self._cond:
            return {
                "read_acquires": self._acquires["read"],
                "write_acquires": self._acquires["write"],
                "read_wait_ms": self._wait_s["read"] * 1e3,
                "write_wait_ms": self._wait_s["write"] * 1e3,
                "read_contended": self._contended["read"],
                "write_contended": self._contended["write"],
                "active_readers": len(self._readers),
                "writer_held": self._writer is not None,
                "waiting_writers": self._waiting_writers,
            }
