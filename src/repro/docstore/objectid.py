"""MongoDB-style ObjectIds.

An ObjectId is a 12-byte identifier: a 4-byte timestamp, a 5-byte random
machine/process token, and a 3-byte monotonically increasing counter. The
layout matters for the reproduction because the paper's task collections rely
on insertion-ordered ids (``_id`` sorts roughly by creation time), and the
workflow engine uses ids as stable references between the ``engines`` and
``tasks`` collections.
"""

from __future__ import annotations

import binascii
import os
import struct
import threading
import time

__all__ = ["ObjectId"]

# Module-level counter shared by all ObjectIds in this process, like the
# mongo drivers do.  Seeded randomly so two processes do not collide.
_COUNTER_LOCK = threading.Lock()
_COUNTER = int.from_bytes(os.urandom(3), "big")
_MACHINE_TOKEN = os.urandom(5)


def _next_counter() -> int:
    global _COUNTER
    with _COUNTER_LOCK:
        _COUNTER = (_COUNTER + 1) % 0xFFFFFF
        return _COUNTER


class ObjectId:
    """A 12-byte, sortable-by-time unique document identifier.

    Instances are immutable, hashable, and totally ordered by their byte
    representation (hence roughly by generation time).

    Parameters
    ----------
    oid:
        Optional existing id: another ``ObjectId``, a 24-character hex
        string, or 12 raw bytes.  When omitted a fresh id is generated.
    """

    __slots__ = ("_bytes",)

    def __init__(self, oid: "ObjectId | str | bytes | None" = None):
        if oid is None:
            self._bytes = self._generate()
        elif isinstance(oid, ObjectId):
            self._bytes = oid._bytes
        elif isinstance(oid, bytes):
            if len(oid) != 12:
                raise ValueError(f"ObjectId bytes must have length 12, got {len(oid)}")
            self._bytes = oid
        elif isinstance(oid, str):
            if len(oid) != 24:
                raise ValueError(f"ObjectId hex string must have length 24, got {len(oid)!r}")
            try:
                self._bytes = binascii.unhexlify(oid)
            except (binascii.Error, ValueError) as exc:
                raise ValueError(f"invalid ObjectId hex: {oid!r}") from exc
        else:
            raise TypeError(f"cannot construct ObjectId from {type(oid).__name__}")

    @staticmethod
    def _generate() -> bytes:
        ts = struct.pack(">I", int(time.time()) & 0xFFFFFFFF)
        counter = struct.pack(">I", _next_counter())[1:]  # low 3 bytes
        return ts + _MACHINE_TOKEN + counter

    @classmethod
    def from_timestamp(cls, timestamp: float) -> "ObjectId":
        """Create an id whose embedded time is ``timestamp`` (for range scans)."""
        ts = struct.pack(">I", int(timestamp) & 0xFFFFFFFF)
        return cls(ts + b"\x00" * 8)

    @classmethod
    def is_valid(cls, value: object) -> bool:
        """Return True if ``value`` could be converted into an ObjectId."""
        try:
            cls(value)  # type: ignore[arg-type]
            return True
        except (TypeError, ValueError):
            return False

    @property
    def binary(self) -> bytes:
        return self._bytes

    @property
    def generation_time(self) -> float:
        """Unix timestamp embedded in the id (second resolution)."""
        return float(struct.unpack(">I", self._bytes[:4])[0])

    def hex(self) -> str:
        return binascii.hexlify(self._bytes).decode("ascii")

    def __str__(self) -> str:
        return self.hex()

    def __repr__(self) -> str:
        return f"ObjectId('{self.hex()}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectId):
            return self._bytes == other._bytes
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, ObjectId):
            return self._bytes != other._bytes
        return NotImplemented

    def __lt__(self, other: "ObjectId") -> bool:
        if isinstance(other, ObjectId):
            return self._bytes < other._bytes
        return NotImplemented

    def __le__(self, other: "ObjectId") -> bool:
        if isinstance(other, ObjectId):
            return self._bytes <= other._bytes
        return NotImplemented

    def __gt__(self, other: "ObjectId") -> bool:
        if isinstance(other, ObjectId):
            return self._bytes > other._bytes
        return NotImplemented

    def __ge__(self, other: "ObjectId") -> bool:
        if isinstance(other, ObjectId):
            return self._bytes >= other._bytes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bytes)
